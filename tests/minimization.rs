//! Bisimulation minimization must never change a verification verdict.

use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{
    LEFT_TURN_AFTER, LEFT_TURN_BEFORE, RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE,
};
use dpo_af::feedback::{fsa_options, justice_for, scenario_model};
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action};
use ltlcheck::specs::driving_specs;
use ltlcheck::verify_all_fair;

#[test]
fn quotient_preserves_all_fifteen_verdicts() {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let specs = driving_specs(d);
    let cases: [(&[&str], ScenarioKind); 4] = [
        (&RIGHT_TURN_BEFORE, ScenarioKind::TrafficLight),
        (&RIGHT_TURN_AFTER, ScenarioKind::TrafficLight),
        (&LEFT_TURN_BEFORE, ScenarioKind::LeftTurnSignal),
        (&LEFT_TURN_AFTER, ScenarioKind::LeftTurnSignal),
    ];
    for (steps, kind) in cases {
        let ctrl = synthesize("demo", steps, &bundle.lexicon, fsa_options(d))
            .expect("paper demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        let min = ctrl.bisimulation_quotient();
        assert!(min.num_states() <= ctrl.num_states());

        let model = scenario_model(d, kind);
        let justice = justice_for(d, kind);
        let full = verify_all_fair(
            &model,
            &ctrl,
            specs.iter().map(|s| (s.name.as_str(), &s.formula)),
            &justice,
        );
        let reduced = verify_all_fair(
            &model,
            &min,
            specs.iter().map(|s| (s.name.as_str(), &s.formula)),
            &justice,
        );
        for (a, b) in full.results.iter().zip(&reduced.results) {
            assert_eq!(
                a.verdict.holds(),
                b.verdict.holds(),
                "{kind:?} / {}: verdict changed by minimization",
                a.name
            );
        }
    }
}

#[test]
fn quotient_shrinks_repeated_step_controllers() {
    // A language model sometimes emits the same instruction twice; the
    // two states are bisimilar (each turns under the same guard and
    // otherwise waits), so the quotient merges them — pure verification
    // speedup with identical behaviour.
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let steps = [
        "if no car from the left, turn right",
        "if no car from the left, turn right",
    ];
    let ctrl =
        synthesize("stuttered", &steps, &bundle.lexicon, fsa_options(d)).expect("steps align");
    let ctrl = with_default_action(&ctrl, d.stop);
    let min = ctrl.bisimulation_quotient();
    assert_eq!(ctrl.num_states(), 2);
    assert_eq!(min.num_states(), 1, "duplicated steps should merge");
}
