//! Cross-crate consistency: Theorem 1 of the paper states that when the
//! world model captures the system, formal verification implies empirical
//! satisfaction (`M ⊗ C ⊨ Φ ⟹ G(C, S) ⊨ Φ`). The simulator's dynamics
//! are a subset of the scenario models' (single-change arrivals, phased
//! lights), so a formally verified safety property must never be violated
//! by any simulated trace.

use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE};
use dpo_af::feedback::{justice_for, scenario_model};
use drivesim::{ground_many, Scenario, ScenarioConfig, ScenarioKind};
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::specs::driving_specs;
use ltlcheck::{verify_all_fair, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Safety specifications (pure invariants): formal pass ⟹ no finite
/// trace can violate them. Liveness specs are excluded because a finite
/// trace can end mid-wait without witnessing the eventuality.
const SAFETY_SPECS: [&str; 7] = [
    "phi_2", "phi_3", "phi_5", "phi_9", "phi_11", "phi_14", "phi_15",
];

#[test]
fn formally_verified_safety_holds_on_every_simulated_trace() {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let specs = driving_specs(d);
    let model = scenario_model(d, ScenarioKind::TrafficLight);
    let justice = justice_for(d, ScenarioKind::TrafficLight);
    let mut rng = StdRng::seed_from_u64(99);

    for steps in [&RIGHT_TURN_BEFORE[..], &RIGHT_TURN_AFTER[..]] {
        let ctrl = synthesize("turn right", steps, &bundle.lexicon, FsaOptions::default())
            .expect("demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        let report = verify_all_fair(
            &model,
            &ctrl,
            specs.iter().map(|s| (s.name.as_str(), &s.formula)),
            &justice,
        );
        let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let traces = ground_many(&ctrl, &mut scenario, d, &mut rng, 50, 40);

        for result in &report.results {
            if !SAFETY_SPECS.contains(&result.name.as_str()) {
                continue;
            }
            if matches!(result.verdict, Verdict::Holds) {
                let spec = specs
                    .iter()
                    .find(|s| s.name == result.name)
                    .expect("same suite");
                let rate = ltlcheck::finite::satisfaction_rate(traces.iter(), &spec.formula);
                assert_eq!(
                    rate, 1.0,
                    "{}: formally verified but empirically violated (rate {rate})",
                    result.name
                );
            }
        }
    }
}

#[test]
fn counterexamples_describe_realizable_environment_behaviour() {
    // Every counterexample's observation sequence must be a path of the
    // scenario world model — the checker cannot invent dynamics.
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let model = scenario_model(d, ScenarioKind::TrafficLight);
    let specs = driving_specs(d);
    let ctrl = synthesize(
        "turn right",
        &RIGHT_TURN_BEFORE,
        &bundle.lexicon,
        FsaOptions::default(),
    )
    .expect("demo aligns");
    let ctrl = with_default_action(&ctrl, d.stop);
    let report = verify_all_fair(
        &model,
        &ctrl,
        specs.iter().map(|s| (s.name.as_str(), &s.formula)),
        &justice_for(d, ScenarioKind::TrafficLight),
    );
    let mut found_cex = false;
    for result in &report.results {
        let Verdict::Fails(cex) = &result.verdict else {
            continue;
        };
        found_cex = true;
        let all_steps: Vec<_> = cex.stem.iter().chain(&cex.cycle).collect();
        for pair in all_steps.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                model.has_transition(a.state.model, b.state.model),
                "{}: counterexample uses impossible transition p{} → p{}",
                result.name,
                a.state.model,
                b.state.model
            );
        }
    }
    assert!(found_cex, "the before-FT controller should fail something");
}
