//! Integration tests pinning the paper's Section 5.1 / Appendix C
//! demonstrations: the exact step lists from the paper must synthesize,
//! and the verification verdicts must match the paper's findings.

use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo;

fn verdict(report: &ltlcheck::VerificationReport, name: &str) -> bool {
    report
        .results
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.verdict.holds())
        .unwrap_or_else(|| panic!("spec {name} missing from report"))
}

#[test]
fn right_turn_demo_matches_paper() {
    let bundle = DomainBundle::new();
    let cmp = demo::right_turn(&bundle);

    // §5.1: "the model checker finds that the controller obtained before
    // fine-tuning fails the specification Φ5".
    assert!(!verdict(&cmp.before, "phi_5"));

    // "the controller obtained after fine-tuning satisfies all the
    // specifications".
    assert_eq!(
        cmp.after.num_satisfied(),
        15,
        "failed: {:?}",
        cmp.after.failed()
    );

    // The counterexample captures the paper's edge case: a right turn
    // while a car approaches from the left (or a pedestrian is on the
    // right) — after the initial checks already passed.
    assert!(cmp.counterexample.contains("turn right"));
    assert!(
        cmp.counterexample.contains("car from left")
            || cmp.counterexample.contains("pedestrian at right")
    );
}

#[test]
fn left_turn_demo_matches_paper() {
    let bundle = DomainBundle::new();
    let cmp = demo::left_turn(&bundle);

    // Appendix C: "The controller obtained before fine-tuning fails
    // specification Φ12, while the one after fine-tuning passes all the
    // specifications."
    assert!(!verdict(&cmp.before, "phi_12"));
    assert_eq!(
        cmp.after.num_satisfied(),
        15,
        "failed: {:?}",
        cmp.after.failed()
    );
}

#[test]
fn before_controllers_are_strictly_worse() {
    let bundle = DomainBundle::new();
    for cmp in [demo::right_turn(&bundle), demo::left_turn(&bundle)] {
        assert!(
            cmp.before.num_satisfied() < cmp.after.num_satisfied(),
            "{}: before {} !< after {}",
            cmp.task,
            cmp.before.num_satisfied(),
            cmp.after.num_satisfied()
        );
    }
}

#[test]
fn smv_export_round_trips_the_controllers() {
    let bundle = DomainBundle::new();
    let cmp = demo::right_turn(&bundle);
    // Appendix D structure: both modules, variable declarations for every
    // proposition and action, LTLSPEC names.
    for needle in [
        "MODULE turn_right_before_finetune",
        "MODULE turn_right_after_finetune",
        "green_traffic_light : boolean;",
        "car_from_left : boolean;",
        "turn_right : boolean;",
        "init(q) := 0;",
        "LTLSPEC NAME phi_1",
        "LTLSPEC NAME phi_15",
    ] {
        assert!(cmp.smv_module.contains(needle), "missing `{needle}`");
    }
}
