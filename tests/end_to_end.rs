//! End-to-end pipeline integration tests (smoke scale — the paper-scale
//! run lives in the `bench` crate's binaries).

use dpo_af::experiments::headline;
use dpo_af::pipeline::{DpoAf, PipelineConfig};

#[test]
fn pipeline_produces_consistent_artifacts() {
    let pipeline = DpoAf::new(PipelineConfig::smoke());
    let artifacts = pipeline.run();

    // DPO actually trained: loss decreased from its ln 2 start.
    let first = artifacts.epoch_stats.first().expect("epochs ran");
    let last = artifacts.epoch_stats.last().expect("epochs ran");
    assert!(last.loss <= first.loss + 1e-3);

    // Checkpoints are ordered and bounded.
    let mut prev_epoch = None;
    for e in &artifacts.checkpoint_evals {
        if let Some(p) = prev_epoch {
            assert!(e.epoch > p);
        }
        prev_epoch = Some(e.epoch);
        assert!((0.0..=15.0).contains(&e.train_score));
        assert!((0.0..=15.0).contains(&e.val_score));
    }

    // Headline extraction works on the artifacts.
    let headline = headline::from_artifacts(&artifacts);
    assert!(headline.before_pct >= 0.0 && headline.after_pct <= 100.0);
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut cfg = PipelineConfig::smoke();
        cfg.seed = seed;
        let artifacts = DpoAf::new(cfg).run();
        (
            artifacts.dataset_size,
            artifacts.policy.params().to_vec(),
            artifacts.checkpoint_evals.clone(),
        )
    };
    let (n1, p1, e1) = run(123);
    let (n2, p2, e2) = run(123);
    assert_eq!(n1, n2);
    assert_eq!(p1, p2);
    assert_eq!(format!("{e1:?}"), format!("{e2:?}"));
}

#[test]
fn preference_collection_orders_by_verification_score() {
    use dpo_af::feedback::score_tokens;
    let pipeline = DpoAf::new(PipelineConfig::smoke());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let lm = pipeline.pretrained_lm(&mut rng);
    let dataset = pipeline.collect_dataset(&lm, &mut rng);
    // Every pair's winner genuinely outscores its loser under re-scoring.
    for pair in &dataset.pairs {
        let task = &pipeline.bundle.tasks[pair.task];
        let w = score_tokens(&pipeline.bundle, task, &pair.winner).num_satisfied;
        let l = score_tokens(&pipeline.bundle, task, &pair.loser).num_satisfied;
        assert!(w > l, "task {}: winner {w} !> loser {l}", pair.task);
    }
}
