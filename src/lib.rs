//! # formal-feedback
//!
//! Umbrella crate for the reproduction of *"Fine-Tuning Language Models
//! Using Formal Methods Feedback"* (MLSys 2024). It re-exports the
//! workspace crates so examples and integration tests can use a single
//! dependency:
//!
//! * [`autokit`] — world models, FSA controllers, product automata.
//! * [`ltlcheck`] — LTL parsing, Büchi construction, model checking,
//!   finite-trace monitoring, the 15 driving specifications.
//! * [`glm2fsa`] — natural-language step lists → FSA controllers.
//! * [`tinylm`] — the trainable language-model substrate (autodiff, LoRA).
//! * [`dpo`] — direct preference optimization.
//! * [`drivesim`] — the driving simulator (Carla stand-in).
//! * [`vision`] — the sim-vs-real detection consistency study.
//! * [`dpo_af`] — the end-to-end DPO-AF pipeline.

pub use autokit;
pub use dpo;
pub use dpo_af;
pub use drivesim;
pub use glm2fsa;
pub use ltlcheck;
pub use tinylm;
pub use vision;
