use crate::{Atom, Ltl};
use autokit::Vocab;
use std::fmt;

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLtlError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseLtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseLtlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Atom(String),
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Next,
    Until,
    Release,
    Finally,
    Globally,
    LParen,
    RParen,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseLtlError {
        ParseLtlError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseLtlError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let rest = &self.src[self.pos..];
            let Some(c) = rest.chars().next() else { break };
            let tok = match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                    continue;
                }
                '(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                ')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                '!' | '¬' => {
                    self.pos += c.len_utf8();
                    Tok::Not
                }
                '&' | '∧' => {
                    self.pos += c.len_utf8();
                    if self.bytes.get(self.pos) == Some(&b'&') {
                        self.pos += 1;
                    }
                    Tok::And
                }
                '|' | '∨' => {
                    self.pos += c.len_utf8();
                    if self.bytes.get(self.pos) == Some(&b'|') {
                        self.pos += 1;
                    }
                    Tok::Or
                }
                '-' => {
                    if rest.starts_with("->") {
                        self.pos += 2;
                        Tok::Implies
                    } else {
                        return Err(self.error("expected `->`"));
                    }
                }
                '→' => {
                    self.pos += c.len_utf8();
                    Tok::Implies
                }
                '<' => {
                    if rest.starts_with("<->") {
                        self.pos += 3;
                        Tok::Iff
                    } else if rest.starts_with("<>") {
                        self.pos += 2;
                        Tok::Finally
                    } else {
                        return Err(self.error("expected `<->` or `<>`"));
                    }
                }
                '↔' => {
                    self.pos += c.len_utf8();
                    Tok::Iff
                }
                '[' => {
                    if rest.starts_with("[]") {
                        self.pos += 2;
                        Tok::Globally
                    } else {
                        return Err(self.error("expected `[]`"));
                    }
                }
                '□' => {
                    self.pos += c.len_utf8();
                    Tok::Globally
                }
                '◇' | '♦' => {
                    self.pos += c.len_utf8();
                    Tok::Finally
                }
                '○' => {
                    self.pos += c.len_utf8();
                    Tok::Next
                }
                '"' => {
                    let inner = &rest[1..];
                    match inner.find('"') {
                        Some(end) => {
                            let name = &inner[..end];
                            self.pos += end + 2;
                            Tok::Atom(name.to_owned())
                        }
                        None => return Err(self.error("unterminated quoted atom")),
                    }
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let end = rest
                        .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                        .unwrap_or(rest.len());
                    let word = &rest[..end];
                    self.pos += end;
                    match word {
                        "true" | "TRUE" => Tok::True,
                        "false" | "FALSE" => Tok::False,
                        "X" => Tok::Next,
                        "U" => Tok::Until,
                        "R" | "V" => Tok::Release,
                        "F" => Tok::Finally,
                        "G" => Tok::Globally,
                        _ => Tok::Atom(word.to_owned()),
                    }
                }
                _ => return Err(self.error(format!("unexpected character `{c}`"))),
            };
            out.push((tok, start));
        }
        Ok(out)
    }
}

struct Parser<'v> {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    vocab: &'v Vocab,
    input_len: usize,
}

impl<'v> Parser<'v> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseLtlError {
        ParseLtlError {
            message: message.into(),
            position: self.here(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseLtlError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    // Grammar (loosest binding first):
    //   iff     := implies (`<->` implies)*
    //   implies := or (`->` implies)?          (right-assoc)
    //   or      := and (`|` and)*
    //   and     := until (`&` until)*
    //   until   := unary ((`U`|`R`) until)?    (right-assoc)
    //   unary   := (`!`|`X`|`F`|`G`)* primary
    //   primary := atom | true | false | `(` iff `)`
    fn parse_iff(&mut self) -> Result<Ltl, ParseLtlError> {
        let mut lhs = self.parse_implies()?;
        while self.peek() == Some(&Tok::Iff) {
            self.pos += 1;
            let rhs = self.parse_implies()?;
            lhs = Ltl::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Ltl, ParseLtlError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            let rhs = self.parse_implies()?;
            Ok(Ltl::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Ltl, ParseLtlError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Ltl::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Ltl, ParseLtlError> {
        let mut lhs = self.parse_until()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            let rhs = self.parse_until()?;
            lhs = Ltl::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_until(&mut self) -> Result<Ltl, ParseLtlError> {
        let lhs = self.parse_unary()?;
        match self.peek() {
            Some(Tok::Until) => {
                self.pos += 1;
                let rhs = self.parse_until()?;
                Ok(Ltl::until(lhs, rhs))
            }
            Some(Tok::Release) => {
                self.pos += 1;
                let rhs = self.parse_until()?;
                Ok(Ltl::release(lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn parse_unary(&mut self) -> Result<Ltl, ParseLtlError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(Ltl::not(self.parse_unary()?))
            }
            Some(Tok::Next) => {
                self.pos += 1;
                Ok(Ltl::next(self.parse_unary()?))
            }
            Some(Tok::Finally) => {
                self.pos += 1;
                Ok(Ltl::eventually(self.parse_unary()?))
            }
            Some(Tok::Globally) => {
                self.pos += 1;
                Ok(Ltl::always(self.parse_unary()?))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Ltl, ParseLtlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::True) => Ok(Ltl::True),
            Some(Tok::False) => Ok(Ltl::False),
            Some(Tok::Atom(name)) => self.resolve_atom(&name, pos),
            Some(Tok::LParen) => {
                let inner = self.parse_iff()?;
                self.expect(Tok::RParen, "closing `)`")?;
                Ok(inner)
            }
            Some(other) => Err(ParseLtlError {
                message: format!("unexpected token {other:?}"),
                position: pos,
            }),
            None => Err(ParseLtlError {
                message: "unexpected end of input".to_owned(),
                position: pos,
            }),
        }
    }

    fn resolve_atom(&self, name: &str, pos: usize) -> Result<Ltl, ParseLtlError> {
        // Underscores are accepted as word separators for unquoted names,
        // so `car_from_left` resolves to the proposition `car from left`.
        let canonical = name.replace('_', " ");
        if let Ok(p) = self.vocab.prop(&canonical) {
            return Ok(Ltl::Atom(Atom::Prop(p)));
        }
        if let Ok(a) = self.vocab.act(&canonical) {
            return Ok(Ltl::Atom(Atom::Act(a)));
        }
        Err(ParseLtlError {
            message: format!("`{canonical}` is not a proposition or action in the vocabulary"),
            position: pos,
        })
    }
}

/// Parses an LTL formula against a vocabulary.
///
/// Syntax: atoms are quoted strings (`"green traffic light"`) or bare
/// identifiers with `_` as a space substitute (`green_traffic_light`);
/// operators are `! & | -> <-> X U R F G` with the Unicode aliases
/// `¬ ∧ ∨ → ↔ ○ □ ◇` and the SPIN-style `[] <>`. `F`/`G` desugar to
/// `true U φ` / `false R φ`.
///
/// # Errors
///
/// Returns [`ParseLtlError`] on malformed syntax or when an atom is not
/// found in `vocab`.
///
/// # Example
///
/// ```
/// use autokit::Vocab;
/// use ltlcheck::parse;
///
/// let mut v = Vocab::new();
/// v.add_prop("stop sign")?;
/// v.add_act("stop")?;
/// let phi = parse("G(\"stop sign\" -> F stop)", &v)?;
/// // G desugars to `false R ·` and `->` to `¬· ∨ ·`, hence 8 AST nodes.
/// assert_eq!(phi.size(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(input: &str, vocab: &Vocab) -> Result<Ltl, ParseLtlError> {
    let tokens = Lexer::new(input).tokens()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        vocab,
        input_len: input.len(),
    };
    let formula = parser.parse_iff()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("trailing input after formula"));
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_prop("car from left").unwrap();
        v.add_act("stop").unwrap();
        v
    }

    #[test]
    fn parses_atoms_and_constants() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        assert_eq!(parse("a", &v).unwrap(), Ltl::prop(a));
        assert_eq!(parse("true", &v).unwrap(), Ltl::True);
        assert_eq!(parse("false", &v).unwrap(), Ltl::False);
        assert_eq!(
            parse("\"car from left\"", &v).unwrap(),
            Ltl::prop(v.prop("car from left").unwrap())
        );
        assert_eq!(
            parse("car_from_left", &v).unwrap(),
            Ltl::prop(v.prop("car from left").unwrap())
        );
        assert_eq!(parse("stop", &v).unwrap(), Ltl::act(v.act("stop").unwrap()));
    }

    #[test]
    fn precedence_and_over_or() {
        let v = vocab();
        let (a, b) = (v.prop("a").unwrap(), v.prop("b").unwrap());
        let got = parse("a | b & a", &v).unwrap();
        assert_eq!(
            got,
            Ltl::or(Ltl::prop(a), Ltl::and(Ltl::prop(b), Ltl::prop(a)))
        );
    }

    #[test]
    fn implication_is_right_associative() {
        let v = vocab();
        let (a, b) = (v.prop("a").unwrap(), v.prop("b").unwrap());
        let got = parse("a -> b -> a", &v).unwrap();
        assert_eq!(
            got,
            Ltl::implies(Ltl::prop(a), Ltl::implies(Ltl::prop(b), Ltl::prop(a)))
        );
    }

    #[test]
    fn temporal_operators_bind_tightly() {
        let v = vocab();
        let (a, b) = (v.prop("a").unwrap(), v.prop("b").unwrap());
        assert_eq!(
            parse("G a -> F b", &v).unwrap(),
            Ltl::implies(Ltl::always(Ltl::prop(a)), Ltl::eventually(Ltl::prop(b)))
        );
        assert_eq!(
            parse("a U b", &v).unwrap(),
            Ltl::until(Ltl::prop(a), Ltl::prop(b))
        );
        assert_eq!(
            parse("a R b", &v).unwrap(),
            Ltl::release(Ltl::prop(a), Ltl::prop(b))
        );
    }

    #[test]
    fn unicode_aliases() {
        let v = vocab();
        let ascii = parse("G(!a -> F(b & a))", &v).unwrap();
        let unicode = parse("□(¬a → ◇(b ∧ a))", &v).unwrap();
        let spin = parse("[](!a -> <>(b && a))", &v).unwrap();
        assert_eq!(ascii, unicode);
        assert_eq!(ascii, spin);
    }

    #[test]
    fn iff_desugars() {
        let v = vocab();
        let (a, b) = (v.prop("a").unwrap(), v.prop("b").unwrap());
        assert_eq!(
            parse("a <-> b", &v).unwrap(),
            Ltl::iff(Ltl::prop(a), Ltl::prop(b))
        );
    }

    #[test]
    fn error_positions_reported() {
        let v = vocab();
        let err = parse("a &", &v).unwrap_err();
        assert_eq!(err.position, 3);
        let err = parse("(a", &v).unwrap_err();
        assert!(err.message.contains("closing"));
        let err = parse("nonexistent", &v).unwrap_err();
        assert!(err.message.contains("not a proposition"));
        let err = parse("a b", &v).unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse("\"oops", &v).unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let v = vocab();
        for src in [
            "G(a -> F b)",
            "a U (b R a)",
            "!(a & b) | X a",
            "F G a",
            "(a <-> b) & true",
            "G(\"car from left\" -> F stop)",
        ] {
            let phi = parse(src, &v).unwrap();
            let printed = phi.to_string(&v);
            let reparsed = parse(&printed, &v).unwrap();
            assert_eq!(phi, reparsed, "roundtrip failed for `{src}` → `{printed}`");
        }
    }
}
