use autokit::{ActId, ActSet, PropId, PropSet, Vocab};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An atomic proposition of a specification: either an environment
/// observation from `P` or a controller action from `P_A`.
///
/// The paper's specifications mix both freely, e.g.
/// `Φ₁ = □(pedestrian → ◇ stop)` refers to the observation `pedestrian`
/// and the action `stop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Atom {
    /// An observation proposition `p ∈ P`.
    Prop(PropId),
    /// An action proposition `a ∈ P_A`.
    Act(ActId),
}

impl Atom {
    /// Evaluates the atom against one step label `ψ = (σ, a)`.
    pub fn holds(self, props: PropSet, acts: ActSet) -> bool {
        match self {
            Atom::Prop(p) => props.contains(p),
            Atom::Act(a) => acts.contains(a),
        }
    }

    /// The atom's name in a vocabulary.
    pub fn name(self, vocab: &Vocab) -> &str {
        match self {
            Atom::Prop(p) => vocab.prop_name(p),
            Atom::Act(a) => vocab.act_name(a),
        }
    }
}

/// A linear temporal logic formula over [`Atom`]s.
///
/// Subformulas are shared via [`Arc`], so cloning is cheap and formulas can
/// be built compositionally:
///
/// ```
/// use autokit::Vocab;
/// use ltlcheck::{Atom, Ltl};
///
/// let mut v = Vocab::new();
/// let ped = v.add_prop("pedestrian")?;
/// let stop = v.add_act("stop")?;
///
/// // Φ₁ = □(pedestrian → ◇ stop); `→` desugars to `¬· ∨ ·`.
/// let phi = Ltl::always(Ltl::implies(
///     Ltl::prop(ped),
///     Ltl::eventually(Ltl::act(stop)),
/// ));
/// assert_eq!(phi.to_string(&v), "G((!(\"pedestrian\")) | (F(\"stop\")))");
/// # Ok::<(), autokit::AutokitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ltl {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atomic proposition.
    Atom(Atom),
    /// Negation `¬φ`.
    Not(Arc<Ltl>),
    /// Conjunction `φ ∧ ψ`.
    And(Arc<Ltl>, Arc<Ltl>),
    /// Disjunction `φ ∨ ψ`.
    Or(Arc<Ltl>, Arc<Ltl>),
    /// Next `○φ`.
    Next(Arc<Ltl>),
    /// Until `φ U ψ`.
    Until(Arc<Ltl>, Arc<Ltl>),
    /// Release `φ R ψ` (the dual of until).
    Release(Arc<Ltl>, Arc<Ltl>),
}

impl Ltl {
    /// Atom over an observation proposition.
    pub fn prop(p: PropId) -> Ltl {
        Ltl::Atom(Atom::Prop(p))
    }

    /// Atom over an action proposition.
    pub fn act(a: ActId) -> Ltl {
        Ltl::Atom(Atom::Act(a))
    }

    /// `¬φ`.
    ///
    /// (A static constructor, deliberately named after the connective —
    /// not the `std::ops::Not` trait method.)
    #[allow(clippy::should_implement_trait)] // ALLOW: constructor deliberately named after the connective, not the trait.
    pub fn not(phi: Ltl) -> Ltl {
        Ltl::Not(Arc::new(phi))
    }

    /// `φ ∧ ψ`.
    pub fn and(lhs: Ltl, rhs: Ltl) -> Ltl {
        Ltl::And(Arc::new(lhs), Arc::new(rhs))
    }

    /// `φ ∨ ψ`.
    pub fn or(lhs: Ltl, rhs: Ltl) -> Ltl {
        Ltl::Or(Arc::new(lhs), Arc::new(rhs))
    }

    /// `φ → ψ`, desugared to `¬φ ∨ ψ`.
    pub fn implies(lhs: Ltl, rhs: Ltl) -> Ltl {
        Ltl::or(Ltl::not(lhs), rhs)
    }

    /// `φ ↔ ψ`.
    pub fn iff(lhs: Ltl, rhs: Ltl) -> Ltl {
        Ltl::and(
            Ltl::implies(lhs.clone(), rhs.clone()),
            Ltl::implies(rhs, lhs),
        )
    }

    /// Next `○φ`.
    pub fn next(phi: Ltl) -> Ltl {
        Ltl::Next(Arc::new(phi))
    }

    /// Until `φ U ψ`.
    pub fn until(lhs: Ltl, rhs: Ltl) -> Ltl {
        Ltl::Until(Arc::new(lhs), Arc::new(rhs))
    }

    /// Release `φ R ψ`.
    pub fn release(lhs: Ltl, rhs: Ltl) -> Ltl {
        Ltl::Release(Arc::new(lhs), Arc::new(rhs))
    }

    /// Eventually `◇φ`, desugared to `true U φ`.
    pub fn eventually(phi: Ltl) -> Ltl {
        Ltl::until(Ltl::True, phi)
    }

    /// Always `□φ`, desugared to `false R φ`.
    pub fn always(phi: Ltl) -> Ltl {
        Ltl::release(Ltl::False, phi)
    }

    /// Disjunction over an iterator (`false` when empty).
    pub fn any(parts: impl IntoIterator<Item = Ltl>) -> Ltl {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Ltl::False,
            Some(first) => iter.fold(first, Ltl::or),
        }
    }

    /// Conjunction over an iterator (`true` when empty).
    pub fn all(parts: impl IntoIterator<Item = Ltl>) -> Ltl {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Ltl::True,
            Some(first) => iter.fold(first, Ltl::and),
        }
    }

    /// Rewrites the formula into **negation normal form**: negations are
    /// pushed down to atoms using De Morgan's laws and the temporal
    /// dualities `¬○φ = ○¬φ`, `¬(φ U ψ) = ¬φ R ¬ψ`, `¬(φ R ψ) = ¬φ U ¬ψ`.
    ///
    /// The GPVW tableau construction requires NNF input.
    pub fn nnf(&self) -> Ltl {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negated: bool) -> Ltl {
        match (self, negated) {
            (Ltl::True, false) | (Ltl::False, true) => Ltl::True,
            (Ltl::True, true) | (Ltl::False, false) => Ltl::False,
            (Ltl::Atom(a), false) => Ltl::Atom(*a),
            (Ltl::Atom(a), true) => Ltl::Not(Arc::new(Ltl::Atom(*a))),
            (Ltl::Not(inner), neg) => inner.nnf_inner(!neg),
            (Ltl::And(l, r), false) => Ltl::and(l.nnf_inner(false), r.nnf_inner(false)),
            (Ltl::And(l, r), true) => Ltl::or(l.nnf_inner(true), r.nnf_inner(true)),
            (Ltl::Or(l, r), false) => Ltl::or(l.nnf_inner(false), r.nnf_inner(false)),
            (Ltl::Or(l, r), true) => Ltl::and(l.nnf_inner(true), r.nnf_inner(true)),
            (Ltl::Next(inner), neg) => Ltl::next(inner.nnf_inner(neg)),
            (Ltl::Until(l, r), false) => Ltl::until(l.nnf_inner(false), r.nnf_inner(false)),
            (Ltl::Until(l, r), true) => Ltl::release(l.nnf_inner(true), r.nnf_inner(true)),
            (Ltl::Release(l, r), false) => Ltl::release(l.nnf_inner(false), r.nnf_inner(false)),
            (Ltl::Release(l, r), true) => Ltl::until(l.nnf_inner(true), r.nnf_inner(true)),
        }
    }

    /// `true` iff the formula is in negation normal form (negation only on
    /// atoms).
    pub fn is_nnf(&self) -> bool {
        match self {
            Ltl::True | Ltl::False | Ltl::Atom(_) => true,
            Ltl::Not(inner) => matches!(**inner, Ltl::Atom(_)),
            Ltl::And(l, r) | Ltl::Or(l, r) | Ltl::Until(l, r) | Ltl::Release(l, r) => {
                l.is_nnf() && r.is_nnf()
            }
            Ltl::Next(inner) => inner.is_nnf(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Atom(_) => 1,
            Ltl::Not(inner) | Ltl::Next(inner) => 1 + inner.size(),
            Ltl::And(l, r) | Ltl::Or(l, r) | Ltl::Until(l, r) | Ltl::Release(l, r) => {
                1 + l.size() + r.size()
            }
        }
    }

    /// All atoms occurring in the formula, deduplicated.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Ltl::True | Ltl::False => {}
            Ltl::Atom(a) => out.push(*a),
            Ltl::Not(inner) | Ltl::Next(inner) => inner.collect_atoms(out),
            Ltl::And(l, r) | Ltl::Or(l, r) | Ltl::Until(l, r) | Ltl::Release(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    /// Renders the formula with quoted atom names from `vocab`, in the
    /// ASCII syntax accepted by [`crate::parse`].
    pub fn to_string(&self, vocab: &Vocab) -> String {
        let mut out = String::new();
        self.fmt_with(vocab, &mut out);
        out
    }

    fn fmt_with(&self, vocab: &Vocab, out: &mut String) {
        use fmt::Write as _;
        match self {
            Ltl::True => out.push_str("true"),
            Ltl::False => out.push_str("false"),
            Ltl::Atom(a) => {
                let _ = write!(out, "\"{}\"", a.name(vocab));
            }
            Ltl::Not(inner) => {
                out.push_str("!(");
                inner.fmt_with(vocab, out);
                out.push(')');
            }
            Ltl::And(l, r) => {
                out.push('(');
                l.fmt_with(vocab, out);
                out.push_str(") & (");
                r.fmt_with(vocab, out);
                out.push(')');
            }
            Ltl::Or(l, r) => {
                // Render `(!a) | b` as implication-free disjunction; the
                // parser re-reads either form identically.
                out.push('(');
                l.fmt_with(vocab, out);
                out.push_str(") | (");
                r.fmt_with(vocab, out);
                out.push(')');
            }
            Ltl::Next(inner) => {
                out.push_str("X(");
                inner.fmt_with(vocab, out);
                out.push(')');
            }
            Ltl::Until(l, r) => {
                if **l == Ltl::True {
                    out.push_str("F(");
                    r.fmt_with(vocab, out);
                    out.push(')');
                } else {
                    out.push('(');
                    l.fmt_with(vocab, out);
                    out.push_str(") U (");
                    r.fmt_with(vocab, out);
                    out.push(')');
                }
            }
            Ltl::Release(l, r) => {
                if **l == Ltl::False {
                    out.push_str("G(");
                    r.fmt_with(vocab, out);
                    out.push(')');
                } else {
                    out.push('(');
                    l.fmt_with(vocab, out);
                    out.push_str(") R (");
                    r.fmt_with(vocab, out);
                    out.push(')');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> (Vocab, PropId, PropId, ActId) {
        let mut v = Vocab::new();
        let a = v.add_prop("a").unwrap();
        let b = v.add_prop("b").unwrap();
        let s = v.add_act("s").unwrap();
        (v, a, b, s)
    }

    #[test]
    fn sugar_desugars() {
        let (_, a, _, _) = vocab();
        assert_eq!(
            Ltl::eventually(Ltl::prop(a)),
            Ltl::until(Ltl::True, Ltl::prop(a))
        );
        assert_eq!(
            Ltl::always(Ltl::prop(a)),
            Ltl::release(Ltl::False, Ltl::prop(a))
        );
        assert_eq!(
            Ltl::implies(Ltl::prop(a), Ltl::True),
            Ltl::or(Ltl::not(Ltl::prop(a)), Ltl::True)
        );
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let (_, a, b, _) = vocab();
        let phi = Ltl::not(Ltl::until(Ltl::prop(a), Ltl::and(Ltl::prop(b), Ltl::True)));
        let nnf = phi.nnf();
        assert!(nnf.is_nnf());
        assert_eq!(
            nnf,
            Ltl::release(
                Ltl::not(Ltl::prop(a)),
                Ltl::or(Ltl::not(Ltl::prop(b)), Ltl::False)
            )
        );
    }

    #[test]
    fn double_negation_cancels() {
        let (_, a, _, _) = vocab();
        let phi = Ltl::not(Ltl::not(Ltl::prop(a)));
        assert_eq!(phi.nnf(), Ltl::prop(a));
    }

    #[test]
    fn nnf_of_negated_constants() {
        assert_eq!(Ltl::not(Ltl::True).nnf(), Ltl::False);
        assert_eq!(Ltl::not(Ltl::False).nnf(), Ltl::True);
    }

    #[test]
    fn atoms_deduplicated() {
        let (_, a, b, s) = vocab();
        let phi = Ltl::and(
            Ltl::or(Ltl::prop(a), Ltl::prop(b)),
            Ltl::until(Ltl::prop(a), Ltl::act(s)),
        );
        assert_eq!(
            phi.atoms(),
            vec![Atom::Prop(a), Atom::Prop(b), Atom::Act(s)]
        );
    }

    #[test]
    fn atom_holds_checks_right_component() {
        let (_, a, _, s) = vocab();
        let props = PropSet::singleton(a);
        let acts = ActSet::singleton(s);
        assert!(Atom::Prop(a).holds(props, ActSet::empty()));
        assert!(!Atom::Prop(a).holds(PropSet::empty(), acts));
        assert!(Atom::Act(s).holds(PropSet::empty(), acts));
        assert!(!Atom::Act(s).holds(props, ActSet::empty()));
    }

    #[test]
    fn any_all_identities() {
        let (_, a, _, _) = vocab();
        assert_eq!(Ltl::any([]), Ltl::False);
        assert_eq!(Ltl::all([]), Ltl::True);
        assert_eq!(Ltl::any([Ltl::prop(a)]), Ltl::prop(a));
        assert_eq!(Ltl::all([Ltl::prop(a)]), Ltl::prop(a));
    }

    #[test]
    fn size_counts_nodes() {
        let (_, a, b, _) = vocab();
        let phi = Ltl::always(Ltl::implies(Ltl::prop(a), Ltl::eventually(Ltl::prop(b))));
        // G(...) = Release(False, Or(Not(a), Until(True, b)))
        assert_eq!(phi.size(), 8);
    }
}
