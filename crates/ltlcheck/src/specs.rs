//! The paper's fifteen driving-rule specifications Φ₁..Φ₁₅ (Appendix C),
//! expressed over the [`autokit::presets::DrivingDomain`] vocabulary.
//!
//! The bare proposition `pedestrian` in Φ₁ abbreviates "a pedestrian is
//! present anywhere", i.e. `pedestrian at left ∨ pedestrian at right ∨
//! pedestrian in front`, matching the paper's usage.

use crate::Ltl;
use autokit::presets::DrivingDomain;
use serde::{Deserialize, Serialize};

/// A named specification with a human-readable gloss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spec {
    /// Short identifier, `"phi_1"` … `"phi_15"`.
    pub name: String,
    /// What the rule says, in English.
    pub description: String,
    /// The LTL formula.
    pub formula: Ltl,
}

/// Builds the full 15-specification suite over a driving domain.
///
/// # Example
///
/// ```
/// use autokit::presets::DrivingDomain;
/// use ltlcheck::specs::driving_specs;
///
/// let domain = DrivingDomain::new();
/// let specs = driving_specs(&domain);
/// assert_eq!(specs.len(), 15);
/// assert_eq!(specs[0].name, "phi_1");
/// ```
pub fn driving_specs(d: &DrivingDomain) -> Vec<Spec> {
    let pedestrian = Ltl::any([
        Ltl::prop(d.ped_left),
        Ltl::prop(d.ped_right),
        Ltl::prop(d.ped_front),
    ]);
    let green_tl = Ltl::prop(d.green_tl);
    let green_ll = Ltl::prop(d.green_ll);
    let opposite = Ltl::prop(d.opposite_car);
    let car_left = Ltl::prop(d.car_left);
    let car_right = Ltl::prop(d.car_right);
    let ped_right = Ltl::prop(d.ped_right);
    let ped_front = Ltl::prop(d.ped_front);
    let stop_sign = Ltl::prop(d.stop_sign);
    let stop = Ltl::act(d.stop);
    let turn_left = Ltl::act(d.turn_left);
    let turn_right = Ltl::act(d.turn_right);
    let go_straight = Ltl::act(d.go_straight);

    let spec = |name: &str, description: &str, formula: Ltl| Spec {
        name: name.to_owned(),
        description: description.to_owned(),
        formula,
    };

    vec![
        spec(
            "phi_1",
            "a pedestrian anywhere eventually forces a stop",
            // Φ₁ = □(pedestrian → ◇ stop)
            Ltl::always(Ltl::implies(
                pedestrian.clone(),
                Ltl::eventually(stop.clone()),
            )),
        ),
        spec(
            "phi_2",
            "no left turn against oncoming traffic without a protected signal",
            // Φ₂ = □(opposite car ∧ ¬green left-turn light → ¬turn left)
            Ltl::always(Ltl::implies(
                Ltl::and(opposite.clone(), Ltl::not(green_ll.clone())),
                Ltl::not(turn_left.clone()),
            )),
        ),
        spec(
            "phi_3",
            "never go straight without a green traffic light",
            // Φ₃ = □(¬green traffic light → ¬go straight)
            Ltl::always(Ltl::implies(
                Ltl::not(green_tl.clone()),
                Ltl::not(go_straight.clone()),
            )),
        ),
        spec(
            "phi_4",
            "a stop sign eventually forces a stop",
            // Φ₄ = □(stop sign → ◇ stop)
            Ltl::always(Ltl::implies(
                stop_sign.clone(),
                Ltl::eventually(stop.clone()),
            )),
        ),
        spec(
            "phi_5",
            "no right turn while a car approaches from the left or a pedestrian is at the right",
            // Φ₅ = □(car from left ∨ pedestrian at right → ¬turn right)
            Ltl::always(Ltl::implies(
                Ltl::or(car_left.clone(), ped_right.clone()),
                Ltl::not(turn_right.clone()),
            )),
        ),
        spec(
            "phi_6",
            "the controller always commits to some action",
            // Φ₆ = □(stop ∨ go straight ∨ turn left ∨ turn right)
            Ltl::always(Ltl::any([
                stop.clone(),
                go_straight.clone(),
                turn_left.clone(),
                turn_right.clone(),
            ])),
        ),
        spec(
            "phi_7",
            "if a green light eventually shows, the vehicle does not stop forever",
            // Φ₇ = ◇(green traffic light ∨ green left-turn light) → ◇¬stop
            Ltl::implies(
                Ltl::eventually(Ltl::or(green_tl.clone(), green_ll.clone())),
                Ltl::eventually(Ltl::not(stop.clone())),
            ),
        ),
        spec(
            "phi_8",
            "without a green light the vehicle eventually stops",
            // Φ₈ = □(¬green traffic light → ◇ stop)
            Ltl::always(Ltl::implies(
                Ltl::not(green_tl.clone()),
                Ltl::eventually(stop.clone()),
            )),
        ),
        spec(
            "phi_9",
            "never turn while a car approaches from the left",
            // Φ₉ = □(car from left → ¬(turn left ∨ turn right))
            Ltl::always(Ltl::implies(
                car_left.clone(),
                Ltl::not(Ltl::or(turn_left.clone(), turn_right.clone())),
            )),
        ),
        spec(
            "phi_10",
            "a green traffic light eventually releases the stop",
            // Φ₁₀ = □(green traffic light → ◇¬stop)
            Ltl::always(Ltl::implies(
                green_tl.clone(),
                Ltl::eventually(Ltl::not(stop.clone())),
            )),
        ),
        spec(
            "phi_11",
            "a right turn on red requires no car from the left",
            // Φ₁₁ = □((turn right ∧ ¬green traffic light) → ¬car from left)
            Ltl::always(Ltl::implies(
                Ltl::and(turn_right.clone(), Ltl::not(green_tl.clone())),
                Ltl::not(car_left.clone()),
            )),
        ),
        spec(
            "phi_12",
            "an unprotected left turn requires clear traffic in all directions",
            // Φ₁₂ = □((turn left ∧ ¬green left-turn light) →
            //          (¬car from right ∧ ¬car from left ∧ ¬opposite car))
            Ltl::always(Ltl::implies(
                Ltl::and(turn_left.clone(), Ltl::not(green_ll.clone())),
                Ltl::all([
                    Ltl::not(car_right.clone()),
                    Ltl::not(car_left.clone()),
                    Ltl::not(opposite.clone()),
                ]),
            )),
        ),
        spec(
            "phi_13",
            "at a clear stop sign the vehicle eventually proceeds",
            // Φ₁₃ = □((stop sign ∧ ¬car from left ∧ ¬car from right) → ◇¬stop)
            Ltl::always(Ltl::implies(
                Ltl::all([
                    stop_sign.clone(),
                    Ltl::not(car_left.clone()),
                    Ltl::not(car_right.clone()),
                ]),
                Ltl::eventually(Ltl::not(stop.clone())),
            )),
        ),
        spec(
            "phi_14",
            "never go straight into a pedestrian",
            // Φ₁₄ = □(go straight → ¬pedestrian in front)
            Ltl::always(Ltl::implies(
                go_straight.clone(),
                Ltl::not(ped_front.clone()),
            )),
        ),
        spec(
            "phi_15",
            "a right turn at a stop sign requires no car from the left",
            // Φ₁₅ = □((turn right ∧ stop sign) → ¬car from left)
            Ltl::always(Ltl::implies(
                Ltl::and(turn_right.clone(), stop_sign.clone()),
                Ltl::not(car_left.clone()),
            )),
        ),
    ]
}

/// The first five specifications — the subset the paper reports simulator
/// satisfaction rates for (its Figure 11).
pub fn headline_specs(d: &DrivingDomain) -> Vec<Spec> {
    driving_specs(d).into_iter().take(5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite;
    use autokit::{ActSet, PropSet, Step, Trace};

    #[test]
    fn suite_has_fifteen_named_specs() {
        let d = DrivingDomain::new();
        let specs = driving_specs(&d);
        assert_eq!(specs.len(), 15);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.name, format!("phi_{}", i + 1));
            assert!(!s.description.is_empty());
            assert!(s.formula.size() > 1);
        }
    }

    #[test]
    fn headline_specs_are_first_five() {
        let d = DrivingDomain::new();
        assert_eq!(
            headline_specs(&d)
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>(),
            vec!["phi_1", "phi_2", "phi_3", "phi_4", "phi_5"]
        );
    }

    #[test]
    fn phi5_violated_by_turning_into_traffic() {
        let d = DrivingDomain::new();
        let phi5 = &driving_specs(&d)[4].formula;
        let mut bad = Trace::new();
        bad.push(Step::new(
            PropSet::singleton(d.car_left),
            ActSet::singleton(d.turn_right),
        ));
        assert!(!finite::satisfies(&bad, phi5));
        let mut good = Trace::new();
        good.push(Step::new(
            PropSet::singleton(d.car_left),
            ActSet::singleton(d.stop),
        ));
        good.push(Step::new(PropSet::empty(), ActSet::singleton(d.turn_right)));
        assert!(finite::satisfies(&good, phi5));
    }

    #[test]
    fn phi1_any_pedestrian_triggers() {
        let d = DrivingDomain::new();
        let phi1 = &driving_specs(&d)[0].formula;
        for ped in [d.ped_left, d.ped_right, d.ped_front] {
            let mut ignored = Trace::new();
            ignored.push(Step::new(
                PropSet::singleton(ped),
                ActSet::singleton(d.go_straight),
            ));
            assert!(!finite::satisfies(&ignored, phi1), "ped ignored");
            let mut heeded = Trace::new();
            heeded.push(Step::new(
                PropSet::singleton(ped),
                ActSet::singleton(d.stop),
            ));
            assert!(finite::satisfies(&heeded, phi1));
        }
    }

    #[test]
    fn phi14_direct_conflict() {
        let d = DrivingDomain::new();
        let phi14 = &driving_specs(&d)[13].formula;
        let mut t = Trace::new();
        t.push(Step::new(
            PropSet::singleton(d.ped_front),
            ActSet::singleton(d.go_straight),
        ));
        assert!(!finite::satisfies(&t, phi14));
    }

    #[test]
    fn phi7_vacuous_without_green() {
        let d = DrivingDomain::new();
        let phi7 = &driving_specs(&d)[6].formula;
        // No green light ever: antecedent false, spec holds even while
        // stopped forever.
        let mut t = Trace::new();
        for _ in 0..5 {
            t.push(Step::new(PropSet::empty(), ActSet::singleton(d.stop)));
        }
        assert!(finite::satisfies(&t, phi7));
    }
}
