//! Specification analysis: satisfiability, validity, equivalence and
//! vacuity.
//!
//! A rule book is only as good as its rules. These helpers catch the
//! classic authoring mistakes before any controller is blamed:
//!
//! * an **unsatisfiable** specification fails every controller;
//! * a **valid** (tautological) specification passes every controller;
//! * an implication whose antecedent is unreachable in the world model
//!   passes **vacuously** — the rule never actually constrains anything.

use crate::buchi::Buchi;
use crate::mc::{eval_bool, find_fair_lasso, is_propositional};
use crate::{check_graph, Justice, Ltl};
use autokit::{ActSet, LabelGraph, PropSet};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The process-wide spec-automaton cache (see [`spec_automaton`]).
fn automaton_cache() -> &'static Mutex<HashMap<Ltl, Arc<Buchi>>> {
    static CACHE: OnceLock<Mutex<HashMap<Ltl, Arc<Buchi>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_cache() -> std::sync::MutexGuard<'static, HashMap<Ltl, Arc<Buchi>>> {
    match automaton_cache().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The **spec-only automaton**: the Büchi automaton of `phi` itself (not
/// of its negation, which is what universal model checking builds),
/// memoized process-wide by the formula.
///
/// Semantic rule-book analysis asks many questions about the *same* small
/// set of rules — satisfiability, realizability per world, pairwise
/// conflict and containment — and the tableau construction dominates the
/// cost of each query on the small product graphs involved. The cache
/// turns repeat constructions into a hash lookup; hits and misses are
/// mirrored to the obskit counters `ltlcheck.automaton_cache_hits` /
/// `ltlcheck.automaton_cache_misses`.
///
/// The cache never invalidates: an automaton is a pure function of its
/// formula, and formulas are compared structurally (two differently
/// built but identical rule texts share one entry).
pub fn spec_automaton(phi: &Ltl) -> Arc<Buchi> {
    if let Some(hit) = lock_cache().get(phi) {
        obskit::counter_add("ltlcheck.automaton_cache_hits", 1);
        return Arc::clone(hit);
    }
    obskit::counter_add("ltlcheck.automaton_cache_misses", 1);
    // Build outside the lock: construction is the expensive part, and a
    // racing double-build of the same formula is idempotent.
    let built = Arc::new(Buchi::from_ltl(phi));
    Arc::clone(
        lock_cache()
            .entry(phi.clone())
            .or_insert_with(|| Arc::clone(&built)),
    )
}

/// Number of distinct formulas memoized by [`spec_automaton`] so far.
pub fn automaton_cache_len() -> usize {
    lock_cache().len()
}

/// Decides whether some infinite word over `2^{P ∪ P_A}` satisfies `phi`.
///
/// Runs a Büchi-emptiness check on the spec-only automaton (via
/// [`spec_automaton`], so repeat queries are cached): a state is
/// *consistent* when its positive and negative literal constraints do
/// not clash (such a symbol always exists, the alphabet being the full
/// power set); the language is non-empty iff an accepting cycle of
/// consistent states is reachable from a consistent initial state.
///
/// # Example
///
/// ```
/// use autokit::Vocab;
/// use ltlcheck::{analysis, parse};
///
/// let mut v = Vocab::new();
/// v.add_prop("a")?;
/// assert!(analysis::satisfiable(&parse("F a", &v)?));
/// assert!(!analysis::satisfiable(&parse("F (a & !a)", &v)?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn satisfiable(phi: &Ltl) -> bool {
    language_nonempty(&spec_automaton(phi))
}

/// Büchi emptiness on a formula automaton over the unconstrained
/// alphabet: `true` iff the automaton accepts some infinite word.
pub fn language_nonempty(buchi: &Buchi) -> bool {
    let n = buchi.num_states();
    let consistent: Vec<bool> = buchi
        .states()
        .iter()
        .map(|s| s.pos.iter().all(|a| !s.neg.contains(a)))
        .collect();

    // Reachability from consistent initial states through consistent
    // states.
    let mut reachable = vec![false; n];
    let mut stack: Vec<usize> = buchi
        .initial()
        .iter()
        .copied()
        .filter(|&s| consistent[s])
        .collect();
    for &s in &stack {
        reachable[s] = true;
    }
    while let Some(s) = stack.pop() {
        for &t in &buchi.states()[s].succs {
            if consistent[t] && !reachable[t] {
                reachable[t] = true;
                stack.push(t);
            }
        }
    }

    // An accepting lasso exists iff some reachable accepting state can
    // reach itself through consistent states.
    (0..n)
        .filter(|&s| reachable[s] && buchi.states()[s].accepting)
        .any(|acc| {
            let mut seen = vec![false; n];
            let mut stack = vec![acc];
            while let Some(s) = stack.pop() {
                for &t in &buchi.states()[s].succs {
                    if !consistent[t] {
                        continue;
                    }
                    if t == acc {
                        return true;
                    }
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            false
        })
}

/// `true` iff every infinite word satisfies `phi`.
pub fn valid(phi: &Ltl) -> bool {
    !satisfiable(&Ltl::not(phi.clone()))
}

/// `true` iff the two formulas have the same models.
pub fn equivalent(a: &Ltl, b: &Ltl) -> bool {
    valid(&Ltl::iff(a.clone(), b.clone()))
}

/// **Existential** model checking: `true` iff *some* fair path of
/// `graph` satisfies `phi`.
///
/// The dual of [`crate::check_graph_fair`] (which asks whether *every*
/// fair path satisfies the formula): the spec-only automaton of `phi`
/// itself is composed with the graph and searched for a justice-fair
/// accepting lasso. This is the primitive behind semantic rule-book
/// analysis — realizability of a rule in a world, pairwise conflict
/// (`∃ path ⊨ A ∧ B`?) and containment (`∃ path ⊨ A ∧ ¬B`?) are all one
/// existential query each.
///
/// Automata come from [`spec_automaton`], so sweeping the same rule book
/// over several worlds builds each automaton once.
pub fn exists_fair_path(graph: &LabelGraph, phi: &Ltl, justice: &[Justice]) -> bool {
    find_fair_lasso(graph, &spec_automaton(phi), justice).is_some()
}

/// **Universal** model checking through the automaton cache: `true` iff
/// every fair path of `graph` satisfies `phi`.
///
/// Verdict-identical to `check_graph_fair(graph, phi, justice).holds()`,
/// but the negation automaton is memoized by [`spec_automaton`], which
/// matters when the same rules are checked across many worlds.
pub fn holds_fair(graph: &LabelGraph, phi: &Ltl, justice: &[Justice]) -> bool {
    find_fair_lasso(graph, &spec_automaton(&Ltl::not(phi.clone())), justice).is_none()
}

/// Product-reachability query: the step labels `(σ, a)` of every node
/// reachable from the graph's initial nodes, deduplicated, in first-visit
/// (DFS preorder) order.
///
/// This is the basis for trigger-reachability analysis: a rule of shape
/// `□(trigger → …)` whose trigger is false on every reachable label can
/// never fire — the rule holds vacuously no matter the controller.
pub fn reachable_labels(graph: &LabelGraph) -> Vec<(PropSet, ActSet)> {
    let mut seen = vec![false; graph.num_nodes()];
    let mut stack: Vec<usize> = graph.initial.clone();
    for &s in &stack {
        seen[s] = true;
    }
    let mut labels = Vec::new();
    let mut dedup = std::collections::HashSet::new();
    while let Some(s) = stack.pop() {
        if dedup.insert(graph.labels[s]) {
            labels.push(graph.labels[s]);
        }
        for &t in &graph.succs[s] {
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    labels
}

/// Evaluates a propositional condition over one step label. Returns
/// `None` when `phi` contains temporal operators.
pub fn eval_propositional(phi: &Ltl, props: PropSet, acts: ActSet) -> Option<bool> {
    is_propositional(phi).then(|| eval_bool(phi, props, acts))
}

/// `true` iff some reachable node of `graph` satisfies the propositional
/// condition `cond`; `None` when `cond` is not propositional.
///
/// Callers sweeping many conditions over one graph should precompute
/// [`reachable_labels`] and evaluate with [`eval_propositional`] instead.
pub fn condition_reachable(graph: &LabelGraph, cond: &Ltl) -> Option<bool> {
    if !is_propositional(cond) {
        return None;
    }
    Some(
        reachable_labels(graph)
            .iter()
            .any(|&(p, a)| eval_bool(cond, p, a)),
    )
}

/// How a specification can hold without constraining anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Vacuity {
    /// The specification is a tautology — true of *any* system.
    Tautology,
    /// The specification has the shape `□(antecedent → …)` and the
    /// antecedent never occurs on any path of the checked graph.
    UnreachableAntecedent(Ltl),
}

/// Checks whether `phi` holds on `graph` only vacuously.
///
/// Returns `None` when the specification either fails, or holds for a
/// non-vacuous reason. Detects two vacuity classes: tautologies, and
/// `□(a → b)`-shaped specifications whose antecedent `a` is never true
/// along any path of the graph.
pub fn vacuous_pass(graph: &LabelGraph, phi: &Ltl) -> Option<Vacuity> {
    if !check_graph(graph, phi).holds() {
        return None;
    }
    if valid(phi) {
        return Some(Vacuity::Tautology);
    }
    // □(a → b) desugars to Release(False, Or(Not(a), b)).
    if let Ltl::Release(l, r) = phi {
        if **l == Ltl::False {
            if let Ltl::Or(not_a, _) = &**r {
                if let Ltl::Not(a) = &**not_a {
                    let never_a = Ltl::Release(Arc::new(Ltl::False), Arc::new(Ltl::Not(a.clone())));
                    if check_graph(graph, &never_a).holds() {
                        return Some(Vacuity::UnreachableAntecedent((**a).clone()));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use autokit::{ActSet, ProductState, PropSet, Vocab};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    #[test]
    fn satisfiability_basics() {
        let v = vocab();
        for sat in ["a", "F a", "G a", "a U b", "G F a", "!a", "X X a"] {
            assert!(satisfiable(&parse(sat, &v).unwrap()), "{sat}");
        }
        for unsat in [
            "a & !a",
            "F (a & !a)",
            "false",
            "G a & F !a",
            "(G a) & (!a)",
            "X(a & !a) & X true",
        ] {
            assert!(!satisfiable(&parse(unsat, &v).unwrap()), "{unsat}");
        }
    }

    #[test]
    fn validity_basics() {
        let v = vocab();
        for val in [
            "true",
            "a | !a",
            "F true",
            "G true",
            "(G a) -> a",
            "(a & b) -> a",
        ] {
            assert!(valid(&parse(val, &v).unwrap()), "{val}");
        }
        for inval in ["a", "G a", "F a"] {
            assert!(!valid(&parse(inval, &v).unwrap()), "{inval}");
        }
    }

    #[test]
    fn known_equivalences() {
        let v = vocab();
        let pairs = [
            ("F a", "!(G !a)"),
            ("a U b", "!((!a) R (!b))"),
            ("G G a", "G a"),
            ("F F a", "F a"),
            ("X (a & b)", "(X a) & (X b)"),
            ("G(a & b)", "(G a) & (G b)"),
        ];
        for (lhs, rhs) in pairs {
            assert!(
                equivalent(&parse(lhs, &v).unwrap(), &parse(rhs, &v).unwrap()),
                "{lhs} ≡ {rhs}"
            );
        }
        assert!(!equivalent(
            &parse("F(a & b)", &v).unwrap(),
            &parse("(F a) & (F b)", &v).unwrap()
        ));
    }

    fn single_state_graph(props: PropSet) -> LabelGraph {
        LabelGraph {
            labels: vec![(props, ActSet::empty())],
            origin: vec![ProductState { model: 0, ctrl: 0 }],
            succs: vec![vec![0]],
            initial: vec![0],
        }
    }

    #[test]
    fn vacuity_detects_unreachable_antecedent() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        // Graph where `a` never holds.
        let graph = single_state_graph(PropSet::singleton(b));
        let spec = parse("G(a -> b)", &v).unwrap();
        assert_eq!(
            vacuous_pass(&graph, &spec),
            Some(Vacuity::UnreachableAntecedent(Ltl::prop(a)))
        );
        // Graph where `a` does occur: the pass is genuine.
        let graph = single_state_graph(PropSet::singleton(a).with(b));
        assert_eq!(vacuous_pass(&graph, &spec), None);
    }

    #[test]
    fn vacuity_detects_tautologies() {
        let v = vocab();
        let graph = single_state_graph(PropSet::empty());
        let spec = parse("G(a -> a)", &v).unwrap();
        // `G(a → a)` is a tautology wherever it is checked.
        assert_eq!(vacuous_pass(&graph, &spec), Some(Vacuity::Tautology));
    }

    #[test]
    fn failing_specs_are_not_vacuous() {
        let v = vocab();
        let graph = single_state_graph(PropSet::empty());
        let spec = parse("G a", &v).unwrap();
        assert_eq!(vacuous_pass(&graph, &spec), None);
    }

    /// Two-node graph: node 0 labels `{a}`, node 1 labels `{b}` with act
    /// `s`; 0 → 1 → 1.
    fn two_phase_graph(v: &Vocab) -> LabelGraph {
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        LabelGraph {
            labels: vec![
                (PropSet::singleton(a), ActSet::empty()),
                (PropSet::singleton(b), ActSet::singleton(s)),
            ],
            origin: vec![
                ProductState { model: 0, ctrl: 0 },
                ProductState { model: 1, ctrl: 0 },
            ],
            succs: vec![vec![1], vec![1]],
            initial: vec![0],
        }
    }

    #[test]
    fn exists_fair_path_is_existential() {
        let v = vocab();
        let graph = two_phase_graph(&v);
        // Every path eventually sees `b` forever, and starts at `a`.
        assert!(exists_fair_path(&graph, &parse("a", &v).unwrap(), &[]));
        assert!(exists_fair_path(
            &graph,
            &parse("F (G b)", &v).unwrap(),
            &[]
        ));
        // No path ever revisits `a`.
        assert!(!exists_fair_path(
            &graph,
            &parse("X (F a)", &v).unwrap(),
            &[]
        ));
        // Unsatisfiable formulas are realizable nowhere.
        assert!(!exists_fair_path(
            &graph,
            &parse("F (a & !a)", &v).unwrap(),
            &[]
        ));
    }

    #[test]
    fn exists_respects_justice() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        // Self-loops on both nodes: paths may park on node 0 (`a`)
        // forever...
        let mut graph = two_phase_graph(&v);
        graph.succs[0].push(0);
        assert!(exists_fair_path(&graph, &parse("G a", &v).unwrap(), &[]));
        // ...but justice "b infinitely often" rules those paths out.
        let justice = vec![Justice::new("b", parse("b", &v).unwrap()).unwrap()];
        assert!(!exists_fair_path(
            &graph,
            &parse("G a", &v).unwrap(),
            &justice
        ));
        assert!(exists_fair_path(
            &graph,
            &parse("F b", &v).unwrap(),
            &justice
        ));
        let _ = a;
    }

    #[test]
    fn holds_fair_matches_check_graph_fair() {
        let v = vocab();
        let graph = two_phase_graph(&v);
        for src in ["a", "G a", "F (G b)", "X b", "F (a & !a)"] {
            let phi = parse(src, &v).unwrap();
            assert_eq!(
                holds_fair(&graph, &phi, &[]),
                check_graph(&graph, &phi).holds(),
                "{src}"
            );
        }
    }

    #[test]
    fn reachable_labels_dedups_and_skips_unreachable() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let mut graph = two_phase_graph(&v);
        // An unreachable node labeled `{a, b}`.
        graph
            .labels
            .push((PropSet::singleton(a).with(b), ActSet::empty()));
        graph.origin.push(ProductState { model: 2, ctrl: 0 });
        graph.succs.push(vec![2]);
        let labels = reachable_labels(&graph);
        assert_eq!(labels.len(), 2);
        assert!(!labels.contains(&(PropSet::singleton(a).with(b), ActSet::empty())));

        let reach_b = condition_reachable(&graph, &parse("b", &v).unwrap());
        assert_eq!(reach_b, Some(true));
        let reach_ab = condition_reachable(&graph, &parse("a & b", &v).unwrap());
        assert_eq!(reach_ab, Some(false));
        // Temporal conditions are not propositional.
        assert_eq!(
            condition_reachable(&graph, &parse("F a", &v).unwrap()),
            None
        );
    }

    #[test]
    fn spec_automaton_memoizes_structurally() {
        let v = vocab();
        let phi = parse("G (a -> F b)", &v).unwrap();
        let first = spec_automaton(&phi);
        // A structurally identical formula built separately hits the same
        // entry.
        let again = spec_automaton(&parse("G (a -> F b)", &v).unwrap());
        assert!(Arc::ptr_eq(&first, &again));
        assert!(automaton_cache_len() >= 1);
    }

    fn arb_ltl() -> impl Strategy<Value = Ltl> {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// φ or ¬φ is always satisfiable.
        #[test]
        fn excluded_middle(phi in arb_ltl()) {
            prop_assert!(satisfiable(&phi) || satisfiable(&Ltl::not(phi.clone())));
        }

        /// Validity implies satisfiability (the alphabet is non-empty).
        #[test]
        fn valid_implies_satisfiable(phi in arb_ltl()) {
            if valid(&phi) {
                prop_assert!(satisfiable(&phi));
            }
        }

        /// NNF preserves the language.
        #[test]
        fn nnf_is_equivalent(phi in arb_ltl()) {
            prop_assert!(equivalent(&phi, &phi.nnf()));
        }
    }
}
