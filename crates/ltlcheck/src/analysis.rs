//! Specification analysis: satisfiability, validity, equivalence and
//! vacuity.
//!
//! A rule book is only as good as its rules. These helpers catch the
//! classic authoring mistakes before any controller is blamed:
//!
//! * an **unsatisfiable** specification fails every controller;
//! * a **valid** (tautological) specification passes every controller;
//! * an implication whose antecedent is unreachable in the world model
//!   passes **vacuously** — the rule never actually constrains anything.

use crate::buchi::Buchi;
use crate::{check_graph, Ltl};
use autokit::LabelGraph;
use std::sync::Arc;

/// Decides whether some infinite word over `2^{P ∪ P_A}` satisfies `phi`.
///
/// Runs a Büchi-emptiness check on the formula automaton alone: a state
/// is *consistent* when its positive and negative literal constraints do
/// not clash (such a symbol always exists, the alphabet being the full
/// power set); the language is non-empty iff an accepting cycle of
/// consistent states is reachable from a consistent initial state.
///
/// # Example
///
/// ```
/// use autokit::Vocab;
/// use ltlcheck::{analysis, parse};
///
/// let mut v = Vocab::new();
/// v.add_prop("a")?;
/// assert!(analysis::satisfiable(&parse("F a", &v)?));
/// assert!(!analysis::satisfiable(&parse("F (a & !a)", &v)?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn satisfiable(phi: &Ltl) -> bool {
    let buchi = Buchi::from_ltl(phi);
    let n = buchi.num_states();
    let consistent: Vec<bool> = buchi
        .states()
        .iter()
        .map(|s| s.pos.iter().all(|a| !s.neg.contains(a)))
        .collect();

    // Reachability from consistent initial states through consistent
    // states.
    let mut reachable = vec![false; n];
    let mut stack: Vec<usize> = buchi
        .initial()
        .iter()
        .copied()
        .filter(|&s| consistent[s])
        .collect();
    for &s in &stack {
        reachable[s] = true;
    }
    while let Some(s) = stack.pop() {
        for &t in &buchi.states()[s].succs {
            if consistent[t] && !reachable[t] {
                reachable[t] = true;
                stack.push(t);
            }
        }
    }

    // An accepting lasso exists iff some reachable accepting state can
    // reach itself through consistent states.
    (0..n)
        .filter(|&s| reachable[s] && buchi.states()[s].accepting)
        .any(|acc| {
            let mut seen = vec![false; n];
            let mut stack = vec![acc];
            while let Some(s) = stack.pop() {
                for &t in &buchi.states()[s].succs {
                    if !consistent[t] {
                        continue;
                    }
                    if t == acc {
                        return true;
                    }
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            false
        })
}

/// `true` iff every infinite word satisfies `phi`.
pub fn valid(phi: &Ltl) -> bool {
    !satisfiable(&Ltl::not(phi.clone()))
}

/// `true` iff the two formulas have the same models.
pub fn equivalent(a: &Ltl, b: &Ltl) -> bool {
    valid(&Ltl::iff(a.clone(), b.clone()))
}

/// How a specification can hold without constraining anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Vacuity {
    /// The specification is a tautology — true of *any* system.
    Tautology,
    /// The specification has the shape `□(antecedent → …)` and the
    /// antecedent never occurs on any path of the checked graph.
    UnreachableAntecedent(Ltl),
}

/// Checks whether `phi` holds on `graph` only vacuously.
///
/// Returns `None` when the specification either fails, or holds for a
/// non-vacuous reason. Detects two vacuity classes: tautologies, and
/// `□(a → b)`-shaped specifications whose antecedent `a` is never true
/// along any path of the graph.
pub fn vacuous_pass(graph: &LabelGraph, phi: &Ltl) -> Option<Vacuity> {
    if !check_graph(graph, phi).holds() {
        return None;
    }
    if valid(phi) {
        return Some(Vacuity::Tautology);
    }
    // □(a → b) desugars to Release(False, Or(Not(a), b)).
    if let Ltl::Release(l, r) = phi {
        if **l == Ltl::False {
            if let Ltl::Or(not_a, _) = &**r {
                if let Ltl::Not(a) = &**not_a {
                    let never_a = Ltl::Release(Arc::new(Ltl::False), Arc::new(Ltl::Not(a.clone())));
                    if check_graph(graph, &never_a).holds() {
                        return Some(Vacuity::UnreachableAntecedent((**a).clone()));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use autokit::{ActSet, ProductState, PropSet, Vocab};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    #[test]
    fn satisfiability_basics() {
        let v = vocab();
        for sat in ["a", "F a", "G a", "a U b", "G F a", "!a", "X X a"] {
            assert!(satisfiable(&parse(sat, &v).unwrap()), "{sat}");
        }
        for unsat in [
            "a & !a",
            "F (a & !a)",
            "false",
            "G a & F !a",
            "(G a) & (!a)",
            "X(a & !a) & X true",
        ] {
            assert!(!satisfiable(&parse(unsat, &v).unwrap()), "{unsat}");
        }
    }

    #[test]
    fn validity_basics() {
        let v = vocab();
        for val in [
            "true",
            "a | !a",
            "F true",
            "G true",
            "(G a) -> a",
            "(a & b) -> a",
        ] {
            assert!(valid(&parse(val, &v).unwrap()), "{val}");
        }
        for inval in ["a", "G a", "F a"] {
            assert!(!valid(&parse(inval, &v).unwrap()), "{inval}");
        }
    }

    #[test]
    fn known_equivalences() {
        let v = vocab();
        let pairs = [
            ("F a", "!(G !a)"),
            ("a U b", "!((!a) R (!b))"),
            ("G G a", "G a"),
            ("F F a", "F a"),
            ("X (a & b)", "(X a) & (X b)"),
            ("G(a & b)", "(G a) & (G b)"),
        ];
        for (lhs, rhs) in pairs {
            assert!(
                equivalent(&parse(lhs, &v).unwrap(), &parse(rhs, &v).unwrap()),
                "{lhs} ≡ {rhs}"
            );
        }
        assert!(!equivalent(
            &parse("F(a & b)", &v).unwrap(),
            &parse("(F a) & (F b)", &v).unwrap()
        ));
    }

    fn single_state_graph(props: PropSet) -> LabelGraph {
        LabelGraph {
            labels: vec![(props, ActSet::empty())],
            origin: vec![ProductState { model: 0, ctrl: 0 }],
            succs: vec![vec![0]],
            initial: vec![0],
        }
    }

    #[test]
    fn vacuity_detects_unreachable_antecedent() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        // Graph where `a` never holds.
        let graph = single_state_graph(PropSet::singleton(b));
        let spec = parse("G(a -> b)", &v).unwrap();
        assert_eq!(
            vacuous_pass(&graph, &spec),
            Some(Vacuity::UnreachableAntecedent(Ltl::prop(a)))
        );
        // Graph where `a` does occur: the pass is genuine.
        let graph = single_state_graph(PropSet::singleton(a).with(b));
        assert_eq!(vacuous_pass(&graph, &spec), None);
    }

    #[test]
    fn vacuity_detects_tautologies() {
        let v = vocab();
        let graph = single_state_graph(PropSet::empty());
        let spec = parse("G(a -> a)", &v).unwrap();
        // `G(a → a)` is a tautology wherever it is checked.
        assert_eq!(vacuous_pass(&graph, &spec), Some(Vacuity::Tautology));
    }

    #[test]
    fn failing_specs_are_not_vacuous() {
        let v = vocab();
        let graph = single_state_graph(PropSet::empty());
        let spec = parse("G a", &v).unwrap();
        assert_eq!(vacuous_pass(&graph, &spec), None);
    }

    fn arb_ltl() -> impl Strategy<Value = Ltl> {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// φ or ¬φ is always satisfiable.
        #[test]
        fn excluded_middle(phi in arb_ltl()) {
            prop_assert!(satisfiable(&phi) || satisfiable(&Ltl::not(phi.clone())));
        }

        /// Validity implies satisfiability (the alphabet is non-empty).
        #[test]
        fn valid_implies_satisfiable(phi in arb_ltl()) {
            if valid(&phi) {
                prop_assert!(satisfiable(&phi));
            }
        }

        /// NNF preserves the language.
        #[test]
        fn nnf_is_equivalent(phi in arb_ltl()) {
            prop_assert!(equivalent(&phi, &phi.nnf()));
        }
    }
}
