//! LTL → Büchi automaton translation via the GPVW tableau construction
//! (Gerth, Peled, Vardi, Wolper, *Simple On-the-fly Automatic Verification
//! of Linear Temporal Logic*, PSTV 1995), followed by the counter-based
//! degeneralization of the resulting generalized Büchi automaton.
//!
//! The produced automaton is *state-labeled*: each state carries a set of
//! positive and negative atom constraints, and a run over a word
//! `ψ₀ψ₁…` occupies state `sᵢ` at position `i` with `ψᵢ` satisfying `sᵢ`'s
//! constraints. This matches the state-labeled graphs that
//! [`autokit::Product::label_graph`] produces, making the model-checking
//! product a plain synchronous product.

use crate::{Atom, Ltl};
use autokit::{ActSet, PropSet};
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum number of distinct subformulas supported per specification.
///
/// Closure sets are stored as `u128` bitmasks. The paper's specifications
/// have closures an order of magnitude smaller.
pub const MAX_CLOSURE: usize = 128;

type FSet = u128;

/// Interned subformula closure of an NNF formula.
struct Closure {
    formulas: Vec<Ltl>,
    index: HashMap<Ltl, u32>,
}

impl Closure {
    fn build(phi: &Ltl) -> Closure {
        let mut c = Closure {
            formulas: Vec::new(),
            index: HashMap::new(),
        };
        c.intern(phi);
        assert!(
            c.formulas.len() <= MAX_CLOSURE,
            "formula closure exceeds {MAX_CLOSURE} subformulas"
        );
        c
    }

    fn intern(&mut self, phi: &Ltl) -> u32 {
        if let Some(&id) = self.index.get(phi) {
            return id;
        }
        match phi {
            Ltl::True | Ltl::False | Ltl::Atom(_) => {}
            Ltl::Not(inner) | Ltl::Next(inner) => {
                self.intern(inner);
            }
            Ltl::And(l, r) | Ltl::Or(l, r) | Ltl::Until(l, r) | Ltl::Release(l, r) => {
                self.intern(l);
                self.intern(r);
            }
        }
        let id = self.formulas.len() as u32;
        self.formulas.push(phi.clone());
        self.index.insert(phi.clone(), id);
        id
    }

    fn id(&self, phi: &Ltl) -> Option<u32> {
        self.index.get(phi).copied()
    }

    /// Id of an interned subformula. The closure is built over every
    /// subformula of the root, so a miss during expansion is a
    /// construction bug, not an input condition.
    #[allow(clippy::expect_used)] // ALLOW: a miss during expansion is a construction bug, not an input condition.
    fn id_of(&self, phi: &Ltl) -> u32 {
        self.id(phi).expect("subformula interned")
    }

    fn get(&self, id: u32) -> &Ltl {
        &self.formulas[id as usize]
    }
}

fn bit(id: u32) -> FSet {
    1u128 << id
}

/// A tableau node during GPVW expansion.
#[derive(Debug, Clone)]
struct TNode {
    incoming: Vec<usize>, // INIT is usize::MAX
    new: FSet,
    old: FSet,
    next: FSet,
}

const INIT: usize = usize::MAX;

/// One state of a (degeneralized) Büchi automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuchiState {
    /// Atoms that must hold in a step label for the run to occupy this
    /// state at that step.
    pub pos: Vec<Atom>,
    /// Atoms that must not hold.
    pub neg: Vec<Atom>,
    /// Successor state indices.
    pub succs: Vec<usize>,
    /// Whether this state belongs to the (single) acceptance set.
    pub accepting: bool,
}

impl BuchiState {
    /// Checks whether a step label satisfies this state's constraints.
    pub fn matches(&self, props: PropSet, acts: ActSet) -> bool {
        self.pos.iter().all(|a| a.holds(props, acts))
            && self.neg.iter().all(|a| !a.holds(props, acts))
    }
}

/// A state-labeled Büchi automaton over the alphabet `2^{P ∪ P_A}`.
///
/// Accepts exactly the infinite words satisfying the LTL formula it was
/// built from. A word `ψ₀ψ₁…` is accepted iff some run `s₀s₁…` exists
/// with `s₀` initial, `sᵢ₊₁ ∈ succs(sᵢ)`, `ψᵢ` matching `sᵢ`'s literal
/// constraints, and accepting states visited infinitely often.
///
/// # Example
///
/// ```
/// use autokit::Vocab;
/// use ltlcheck::{parse, Buchi};
///
/// let mut v = Vocab::new();
/// v.add_prop("a")?;
/// let phi = parse("G F a", &v)?;
/// let buchi = Buchi::from_ltl(&phi);
/// assert!(buchi.num_states() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Buchi {
    states: Vec<BuchiState>,
    initial: Vec<usize>,
}

impl Buchi {
    /// Translates an LTL formula into an equivalent Büchi automaton.
    ///
    /// The formula is normalized to NNF internally.
    ///
    /// # Panics
    ///
    /// Panics if the formula's closure exceeds [`MAX_CLOSURE`] subformulas.
    pub fn from_ltl(phi: &Ltl) -> Buchi {
        let nnf = phi.nnf();
        let closure = Closure::build(&nnf);
        let nodes = expand_all(&nnf, &closure);
        degeneralize(&nodes, &closure)
    }

    /// The automaton's states.
    pub fn states(&self) -> &[BuchiState] {
        &self.states
    }

    /// Indices of initial states.
    pub fn initial(&self) -> &[usize] {
        &self.initial
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.states.iter().map(|s| s.succs.len()).sum()
    }
}

/// Runs the GPVW expansion starting from the obligation `{φ}`.
fn expand_all(phi: &Ltl, closure: &Closure) -> Vec<TNode> {
    let mut nodes: Vec<TNode> = Vec::new();
    // Dedup map keyed on (old, next) as in the algorithm's merge step.
    let mut seen: HashMap<(FSet, FSet), usize> = HashMap::new();

    let phi_id = closure.id_of(phi);
    let root = TNode {
        incoming: vec![INIT],
        new: bit(phi_id),
        old: 0,
        next: 0,
    };
    expand(root, closure, &mut nodes, &mut seen);
    nodes
}

fn expand(
    mut node: TNode,
    closure: &Closure,
    nodes: &mut Vec<TNode>,
    seen: &mut HashMap<(FSet, FSet), usize>,
) {
    if node.new == 0 {
        // Fully processed: merge with an existing node or register.
        if let Some(&existing) = seen.get(&(node.old, node.next)) {
            for inc in node.incoming {
                if !nodes[existing].incoming.contains(&inc) {
                    nodes[existing].incoming.push(inc);
                }
            }
            return;
        }
        let id = nodes.len();
        seen.insert((node.old, node.next), id);
        let next = node.next;
        nodes.push(node);
        let successor = TNode {
            incoming: vec![id],
            new: next,
            old: 0,
            next: 0,
        };
        expand(successor, closure, nodes, seen);
        return;
    }

    // Pop the lowest-id obligation.
    let f_id = node.new.trailing_zeros();
    node.new &= !bit(f_id);
    let f = closure.get(f_id).clone();

    match &f {
        Ltl::False => { /* contradiction: drop the node */ }
        Ltl::True => {
            // `true` must be recorded in Old: acceptance families test for
            // the right operand of an Until in Old, and that operand can
            // be `true` (e.g. after desugaring `F φ` inside negations).
            node.old |= bit(f_id);
            expand(node, closure, nodes, seen);
        }
        Ltl::Atom(_) | Ltl::Not(_) => {
            // Literal: check for a contradiction with Old.
            let negation = match &f {
                Ltl::Atom(a) => Ltl::Not(Arc::new(Ltl::Atom(*a))),
                Ltl::Not(inner) => (**inner).clone(),
                _ => unreachable!("literal case"),
            };
            if let Some(neg_id) = closure.id(&negation) {
                if node.old & bit(neg_id) != 0 {
                    return; // inconsistent node
                }
            }
            node.old |= bit(f_id);
            expand(node, closure, nodes, seen);
        }
        Ltl::And(l, r) => {
            let (lid, rid) = (closure.id_of(l), closure.id_of(r));
            node.old |= bit(f_id);
            node.new |= (bit(lid) | bit(rid)) & !node.old;
            expand(node, closure, nodes, seen);
        }
        Ltl::Or(l, r) => {
            let (lid, rid) = (closure.id_of(l), closure.id_of(r));
            let mut n1 = node.clone();
            n1.old |= bit(f_id);
            n1.new |= bit(lid) & !n1.old;
            let mut n2 = node;
            n2.old |= bit(f_id);
            n2.new |= bit(rid) & !n2.old;
            expand(n1, closure, nodes, seen);
            expand(n2, closure, nodes, seen);
        }
        Ltl::Next(inner) => {
            let iid = closure.id_of(inner);
            node.old |= bit(f_id);
            node.next |= bit(iid);
            expand(node, closure, nodes, seen);
        }
        Ltl::Until(l, r) => {
            let (lid, rid) = (closure.id_of(l), closure.id_of(r));
            // μ U ψ  ≡  ψ ∨ (μ ∧ X(μ U ψ))
            let mut n1 = node.clone();
            n1.old |= bit(f_id);
            n1.new |= bit(lid) & !n1.old;
            n1.next |= bit(f_id);
            let mut n2 = node;
            n2.old |= bit(f_id);
            n2.new |= bit(rid) & !n2.old;
            expand(n1, closure, nodes, seen);
            expand(n2, closure, nodes, seen);
        }
        Ltl::Release(l, r) => {
            let (lid, rid) = (closure.id_of(l), closure.id_of(r));
            // μ R ψ  ≡  (ψ ∧ μ) ∨ (ψ ∧ X(μ R ψ))
            let mut n1 = node.clone();
            n1.old |= bit(f_id);
            n1.new |= bit(rid) & !n1.old;
            n1.next |= bit(f_id);
            let mut n2 = node;
            n2.old |= bit(f_id);
            n2.new |= (bit(lid) | bit(rid)) & !n2.old;
            expand(n1, closure, nodes, seen);
            expand(n2, closure, nodes, seen);
        }
    }
}

/// Converts the tableau node set (a generalized Büchi automaton) into an
/// ordinary Büchi automaton with the counter construction.
fn degeneralize(nodes: &[TNode], closure: &Closure) -> Buchi {
    // Acceptance families: one per Until subformula g = μ U ψ,
    // F_g = { n | g ∉ Old(n) or ψ ∈ Old(n) }.
    let untils: Vec<(u32, u32)> = closure
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, f)| match f {
            Ltl::Until(_, r) => closure.id(r).map(|rid| (id as u32, rid)),
            _ => None,
        })
        .collect();
    let k = untils.len().max(1);

    let in_family = |node: &TNode, fam: usize| -> bool {
        match untils.get(fam) {
            Some(&(g, psi)) => node.old & bit(g) == 0 || node.old & bit(psi) != 0,
            // No Until subformulas: a single family containing every node.
            None => true,
        }
    };

    // Extract literal constraints from Old sets.
    let literals = |node: &TNode| -> (Vec<Atom>, Vec<Atom>) {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for id in 0..closure.formulas.len() as u32 {
            if node.old & bit(id) != 0 {
                match closure.get(id) {
                    Ltl::Atom(a) => pos.push(*a),
                    Ltl::Not(inner) => {
                        if let Ltl::Atom(a) = &**inner {
                            neg.push(*a);
                        }
                    }
                    _ => {}
                }
            }
        }
        (pos, neg)
    };

    // Base (generalized) transitions: r → n for r ∈ incoming(n).
    let n = nodes.len();
    let mut base_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut base_initial: Vec<usize> = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        for &inc in &node.incoming {
            if inc == INIT {
                base_initial.push(id);
            } else {
                base_succs[inc].push(id);
            }
        }
    }

    // Counter product: state (node, i) for i ∈ 0..k. Leaving (q, i) with
    // q ∈ F_i advances the counter; accepting states are (q, k-1) with
    // q ∈ F_{k-1}.
    let mut states: Vec<BuchiState> = Vec::with_capacity(n * k);
    for i in 0..k {
        for (id, node) in nodes.iter().enumerate() {
            let (pos, neg) = literals(node);
            states.push(BuchiState {
                pos,
                neg,
                succs: Vec::new(),
                accepting: i == k - 1 && in_family(node, k - 1),
            });
            let _ = id;
        }
    }
    let idx = |node: usize, i: usize| i * n + node;
    for i in 0..k {
        for (id, node) in nodes.iter().enumerate() {
            let i_next = if in_family(node, i) { (i + 1) % k } else { i };
            let succs: Vec<usize> = base_succs[id].iter().map(|&t| idx(t, i_next)).collect();
            states[idx(id, i)].succs = succs;
        }
    }
    let initial: Vec<usize> = base_initial.iter().map(|&t| idx(t, 0)).collect();

    Buchi { states, initial }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use autokit::Vocab;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    /// Checks whether the Büchi automaton accepts the lasso word
    /// `prefix · cycleᵚ` by explicit product search.
    fn accepts_lasso(
        buchi: &Buchi,
        prefix: &[(PropSet, ActSet)],
        cycle: &[(PropSet, ActSet)],
    ) -> bool {
        // Word positions: 0..p are prefix, then cyclic.
        let p = prefix.len();
        let c = cycle.len();
        let label = |pos: usize| -> (PropSet, ActSet) {
            if pos < p {
                prefix[pos]
            } else {
                cycle[(pos - p) % c]
            }
        };
        // Position space collapses to p + c distinct indices.
        let norm = |pos: usize| -> usize {
            if pos < p {
                pos
            } else {
                p + (pos - p) % c
            }
        };
        // BFS over (word position, buchi state); find a reachable accepting
        // cycle in the finite product (positions wrap inside the lasso
        // cycle).
        let num_pos = p + c;
        let nb = buchi.num_states();
        let mut reach = vec![false; num_pos * nb];
        let mut queue = Vec::new();
        for &s in buchi.initial() {
            let (props, acts) = label(0);
            if buchi.states()[s].matches(props, acts) {
                let key = norm(0) * nb + s;
                if !reach[key] {
                    reach[key] = true;
                    queue.push((0usize, s));
                }
            }
        }
        let mut edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
        while let Some((pos, s)) = queue.pop() {
            let next_pos = pos + 1;
            let (props, acts) = label(next_pos);
            for &t in &buchi.states()[s].succs {
                if buchi.states()[t].matches(props, acts) {
                    let nk = norm(next_pos);
                    edges.push(((norm(pos), s), (nk, t)));
                    let key = nk * nb + t;
                    if !reach[key] {
                        reach[key] = true;
                        queue.push((nk, t));
                    }
                }
            }
        }
        // Accepting cycle detection in the reachable product graph (tiny
        // sizes: Tarjan unnecessary — use DFS per accepting node).
        let mut adj: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
        for (a, b) in edges {
            adj.entry(a).or_default().push(b);
        }
        let accepting: Vec<(usize, usize)> = (0..num_pos)
            .flat_map(|pp| (0..nb).map(move |s| (pp, s)))
            .filter(|&(pp, s)| reach[pp * nb + s] && buchi.states()[s].accepting)
            .collect();
        for &acc in &accepting {
            // Is acc reachable from itself?
            let mut stack = vec![acc];
            let mut seen = std::collections::HashSet::new();
            while let Some(v) = stack.pop() {
                for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                    if w == acc {
                        return true;
                    }
                    if seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
        }
        false
    }

    fn sym(v: &Vocab, props: &[&str], acts: &[&str]) -> (PropSet, ActSet) {
        let mut p = PropSet::empty();
        for name in props {
            p.insert(v.prop(name).unwrap());
        }
        let mut a = ActSet::empty();
        for name in acts {
            a.insert(v.act(name).unwrap());
        }
        (p, a)
    }

    #[test]
    fn atom_formula() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("a", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[a], &[none]));
        assert!(!accepts_lasso(&buchi, &[none], &[a]));
    }

    #[test]
    fn globally_formula() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("G a", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[], &[a]));
        assert!(!accepts_lasso(&buchi, &[a, a], &[none]));
        assert!(!accepts_lasso(&buchi, &[none], &[a]));
    }

    #[test]
    fn eventually_formula() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("F a", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[none, none, a], &[none]));
        assert!(accepts_lasso(&buchi, &[], &[none, a]));
        assert!(!accepts_lasso(&buchi, &[none], &[none]));
    }

    #[test]
    fn until_formula() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("a U b", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let b = sym(&v, &["b"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[a, a, b], &[none]));
        assert!(accepts_lasso(&buchi, &[b], &[none]));
        // a never reaches b.
        assert!(!accepts_lasso(&buchi, &[], &[a]));
        // a gap before b.
        assert!(!accepts_lasso(&buchi, &[a, none, b], &[none]));
    }

    #[test]
    fn release_formula() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("a R b", &v).unwrap());
        let ab = sym(&v, &["a", "b"], &[]);
        let b = sym(&v, &["b"], &[]);
        let none = sym(&v, &[], &[]);
        // b forever (a never needed).
        assert!(accepts_lasso(&buchi, &[], &[b]));
        // b until a releases.
        assert!(accepts_lasso(&buchi, &[b, b, ab], &[none]));
        // b stops holding before a release.
        assert!(!accepts_lasso(&buchi, &[b, none], &[ab]));
    }

    #[test]
    fn gf_needs_infinitely_many() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("G F a", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[], &[none, a]));
        // a only finitely often.
        assert!(!accepts_lasso(&buchi, &[a, a, a], &[none]));
    }

    #[test]
    fn next_formula() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("X a", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[none, a], &[none]));
        assert!(!accepts_lasso(&buchi, &[a, none], &[none]));
    }

    #[test]
    fn until_with_true_rhs_accepts_everything() {
        // Regression: `true` must enter Old so the Until acceptance
        // family F_{μ U true} has witnesses. φ = ¬(true U (true R false))
        // is a tautology; its automaton must accept every word.
        let v = vocab();
        let phi = Ltl::not(Ltl::until(
            Ltl::not(Ltl::False),
            Ltl::release(Ltl::True, Ltl::False),
        ));
        let buchi = Buchi::from_ltl(&phi);
        let none = sym(&v, &[], &[]);
        let a = sym(&v, &["a"], &[]);
        assert!(accepts_lasso(&buchi, &[], &[none]));
        assert!(accepts_lasso(&buchi, &[a], &[none, a]));
    }

    #[test]
    fn unsatisfiable_formula_has_empty_language() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("a & !a", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let none = sym(&v, &[], &[]);
        assert!(!accepts_lasso(&buchi, &[], &[a]));
        assert!(!accepts_lasso(&buchi, &[], &[none]));
    }

    #[test]
    fn mixed_prop_and_act_atoms() {
        let v = vocab();
        let buchi = Buchi::from_ltl(&parse("G(a -> F s)", &v).unwrap());
        let a = sym(&v, &["a"], &[]);
        let s = sym(&v, &[], &["s"]);
        let none = sym(&v, &[], &[]);
        assert!(accepts_lasso(&buchi, &[], &[a, s]));
        assert!(accepts_lasso(&buchi, &[], &[none]));
        assert!(!accepts_lasso(&buchi, &[a], &[none]));
        let _ = s;
    }
}
