//! Automata-theoretic LTL model checking with justice (fairness) support.
//!
//! To decide `M ⊗ C ⊨ Φ` we translate `¬Φ` to a Büchi automaton
//! ([`crate::Buchi`]), form the synchronous product with the product
//! automaton's label graph, and search for a reachable **fair accepting
//! cycle**: a strongly connected component that contains a Büchi-accepting
//! state *and* a witness for every [`Justice`] assumption. A hit yields a
//! **lasso counterexample** — a concrete infinite behaviour violating the
//! specification while honouring all fairness assumptions — reported in
//! the paper's `(p_i, q_i, c_i ∪ a_i)` trace format (Section 4.2).
//!
//! Justice assumptions play the role of NuSMV `FAIRNESS`/`JUSTICE`
//! declarations: a condition that must hold infinitely often, e.g. *"the
//! intersection is clear and the light is green infinitely often"*.
//! Without them, liveness rules like the paper's Φ₇ (*a green light
//! eventually releases the stop*) are unsatisfiable against a fully
//! adversarial environment that keeps a car parked in the intersection
//! forever.

use crate::{Buchi, Ltl};
use autokit::{
    ActSet, Controller, DeadlockPolicy, LabelGraph, Product, ProductState, PropSet, Vocab,
    WorldModel,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of a counterexample trace: the product state and the emitted
/// label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CexStep {
    /// The product state `(p, q)` the step originates from.
    pub state: ProductState,
    /// Observation component `c = λ_M(p)`.
    pub props: PropSet,
    /// Action component `a`.
    pub acts: ActSet,
}

/// A lasso-shaped counterexample: a finite stem followed by a cycle that
/// repeats forever.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The finite prefix of the violating behaviour.
    pub stem: Vec<CexStep>,
    /// The infinitely repeated suffix.
    pub cycle: Vec<CexStep>,
}

impl Counterexample {
    /// Renders the counterexample with vocabulary names, NuSMV-style.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> CexDisplay<'a> {
        CexDisplay { cex: self, vocab }
    }

    /// The labels of the stem as `(props, acts)` pairs.
    pub fn stem_labels(&self) -> Vec<(PropSet, ActSet)> {
        self.stem.iter().map(|s| (s.props, s.acts)).collect()
    }

    /// The labels of the cycle as `(props, acts)` pairs.
    pub fn cycle_labels(&self) -> Vec<(PropSet, ActSet)> {
        self.cycle.iter().map(|s| (s.props, s.acts)).collect()
    }
}

/// Helper returned by [`Counterexample::display`].
#[derive(Debug)]
pub struct CexDisplay<'a> {
    cex: &'a Counterexample,
    vocab: &'a Vocab,
}

impl fmt::Display for CexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- counterexample (lasso)")?;
        for (i, step) in self.cex.stem.iter().enumerate() {
            writeln!(
                f,
                "   {i:3}: (p{}, q{})  {{{}}} ∪ {{{}}}",
                step.state.model,
                step.state.ctrl,
                self.vocab.display_props(step.props),
                self.vocab.display_acts(step.acts)
            )?;
        }
        writeln!(f, "   -- loop starts here --")?;
        for (i, step) in self.cex.cycle.iter().enumerate() {
            writeln!(
                f,
                "   {:3}: (p{}, q{})  {{{}}} ∪ {{{}}}",
                self.cex.stem.len() + i,
                step.state.model,
                step.state.ctrl,
                self.vocab.display_props(step.props),
                self.vocab.display_acts(step.acts)
            )?;
        }
        Ok(())
    }
}

/// A justice (weak fairness) assumption: a Boolean condition over one step
/// label that must hold **infinitely often** along every behaviour
/// considered during verification.
///
/// Mirrors NuSMV's `JUSTICE` declarations. The condition must be purely
/// propositional — temporal operators are rejected.
///
/// # Example
///
/// ```
/// use autokit::presets::DrivingDomain;
/// use ltlcheck::{Justice, Ltl};
///
/// let d = DrivingDomain::new();
/// let clear = Justice::new(
///     "intersection clears",
///     Ltl::and(
///         Ltl::not(Ltl::prop(d.car_left)),
///         Ltl::not(Ltl::prop(d.ped_right)),
///     ),
/// )?;
/// assert_eq!(clear.name(), "intersection clears");
/// # Ok::<(), ltlcheck::NonPropositionalError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Justice {
    name: String,
    condition: Ltl,
}

/// Error returned by [`Justice::new`] when the condition contains temporal
/// operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonPropositionalError;

impl fmt::Display for NonPropositionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "justice conditions must be propositional (no temporal operators)"
        )
    }
}

impl std::error::Error for NonPropositionalError {}

pub(crate) fn is_propositional(phi: &Ltl) -> bool {
    match phi {
        Ltl::True | Ltl::False | Ltl::Atom(_) => true,
        Ltl::Not(inner) => is_propositional(inner),
        Ltl::And(l, r) | Ltl::Or(l, r) => is_propositional(l) && is_propositional(r),
        Ltl::Next(_) | Ltl::Until(_, _) | Ltl::Release(_, _) => false,
    }
}

pub(crate) fn eval_bool(phi: &Ltl, props: PropSet, acts: ActSet) -> bool {
    match phi {
        Ltl::True => true,
        Ltl::False => false,
        Ltl::Atom(a) => a.holds(props, acts),
        Ltl::Not(inner) => !eval_bool(inner, props, acts),
        Ltl::And(l, r) => eval_bool(l, props, acts) && eval_bool(r, props, acts),
        Ltl::Or(l, r) => eval_bool(l, props, acts) || eval_bool(r, props, acts),
        _ => unreachable!("validated propositional"),
    }
}

impl Justice {
    /// Creates a justice assumption.
    ///
    /// # Errors
    ///
    /// Returns [`NonPropositionalError`] if `condition` contains temporal
    /// operators.
    pub fn new(name: impl Into<String>, condition: Ltl) -> Result<Justice, NonPropositionalError> {
        if !is_propositional(&condition) {
            return Err(NonPropositionalError);
        }
        Ok(Justice {
            name: name.into(),
            condition,
        })
    }

    /// The assumption's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The propositional condition.
    pub fn condition(&self) -> &Ltl {
        &self.condition
    }

    /// Evaluates the condition on one step label.
    pub fn holds(&self, props: PropSet, acts: ActSet) -> bool {
        eval_bool(&self.condition, props, acts)
    }
}

/// The outcome of checking one specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Every (fair) behaviour satisfies the specification.
    Holds,
    /// Some fair behaviour violates it; the witness is attached.
    Fails(Counterexample),
}

impl Verdict {
    /// `true` iff the specification holds.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// The outcome of verifying a named specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecResult {
    /// Specification name (e.g. `"phi_5"`).
    pub name: String,
    /// The verdict, with counterexample on failure.
    pub verdict: Verdict,
}

/// Aggregate result of verifying a controller against a specification
/// suite — the paper's per-controller feedback signal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Per-specification outcomes, in input order.
    pub results: Vec<SpecResult>,
}

impl VerificationReport {
    /// Number of satisfied specifications — the quantity the paper ranks
    /// responses by.
    pub fn num_satisfied(&self) -> usize {
        self.results.iter().filter(|r| r.verdict.holds()).count()
    }

    /// Fraction of satisfied specifications in `[0, 1]`.
    ///
    /// An **empty** suite yields `0.0`, not `1.0`. Every consumer of this
    /// value ranks responses (higher is better), so an empty rule book
    /// must never manufacture a "perfect" response; the convention
    /// matches [`VerificationReport::num_satisfied`], which is likewise 0
    /// on an empty suite.
    pub fn fraction_satisfied(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.num_satisfied() as f64 / self.results.len() as f64
    }

    /// Names of the failed specifications.
    pub fn failed(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| !r.verdict.holds())
            .map(|r| r.name.as_str())
            .collect()
    }
}

/// A checkable emptiness certificate explaining a [`Verdict::Holds`]
/// outcome.
///
/// The certificate records everything the explicit-state search derived:
/// the Büchi automaton of the **negated** specification, the set of
/// explored `(graph node, Büchi state)` product pairs, and a component
/// ranking of those pairs. A certificate checker (see the `certkit`
/// crate) validates in linear time that
///
/// 1. every label-consistent initial pair is listed,
/// 2. the listed set is closed under label-consistent successors,
/// 3. cross-component edges never increase the component id (so every
///    cycle stays inside one component), and
/// 4. no component simultaneously has an internal edge, a Büchi-accepting
///    state, and a witness for every justice condition.
///
/// Together these imply no reachable fair accepting cycle exists, i.e.
/// the specification holds — **without** trusting the search that
/// produced the certificate. The checker does trust that `buchi` is a
/// faithful translation of `¬φ`; see DESIGN.md's trust argument for why
/// that residual assumption is discharged separately (lasso-oracle
/// property tests and the explicit-vs-symbolic differential gate).
#[derive(Debug, Clone)]
pub struct HoldsCertificate {
    /// The Büchi automaton of the negated specification used in the
    /// search. Trusted as a translation; everything else is re-derived.
    pub buchi: Buchi,
    /// Explored product pairs `(graph node, Büchi state)`.
    pub states: Vec<(u32, u32)>,
    /// Component id per entry of `states`, in Tarjan completion order:
    /// an edge between different components strictly **decreases** the
    /// id, so any cycle is confined to one component.
    pub comp: Vec<u32>,
}

/// A verdict bundled with machine-checkable evidence.
///
/// `Fails` carries the lasso counterexample (already self-evidencing:
/// its edges, fairness and violation can be re-validated from the graph
/// and formula alone); `Holds` carries an emptiness certificate.
#[derive(Debug, Clone)]
pub enum CertifiedVerdict {
    /// The specification holds; the attached certificate proves the
    /// product automaton empty of fair accepting cycles.
    Holds(HoldsCertificate),
    /// The specification fails with the attached lasso witness.
    Fails(Counterexample),
}

impl CertifiedVerdict {
    /// `true` iff the specification holds.
    pub fn holds(&self) -> bool {
        matches!(self, CertifiedVerdict::Holds(_))
    }

    /// The plain verdict, discarding the `Holds` evidence.
    pub fn verdict(&self) -> Verdict {
        match self {
            CertifiedVerdict::Holds(_) => Verdict::Holds,
            CertifiedVerdict::Fails(cex) => Verdict::Fails(cex.clone()),
        }
    }
}

/// Checks a state-labeled graph against an LTL formula (no fairness).
///
/// Returns [`Verdict::Holds`] iff **every** infinite path of `graph`
/// starting from an initial node satisfies `phi`.
pub fn check_graph(graph: &LabelGraph, phi: &Ltl) -> Verdict {
    check_graph_fair(graph, phi, &[])
}

/// Checks a state-labeled graph against an LTL formula under justice
/// assumptions: only paths along which every justice condition holds
/// infinitely often are considered.
pub fn check_graph_fair(graph: &LabelGraph, phi: &Ltl, justice: &[Justice]) -> Verdict {
    let neg = Ltl::not(phi.clone());
    let buchi = Buchi::from_ltl(&neg);
    count_check(&buchi);
    match find_fair_lasso(graph, &buchi, justice) {
        None => Verdict::Holds,
        Some(cex) => Verdict::Fails(cex),
    }
}

/// Per-check observability counters (no-ops unless `obskit` is enabled).
fn count_check(buchi: &Buchi) {
    if !obskit::enabled() {
        return;
    }
    obskit::counter_add("ltlcheck.checks", 1);
    obskit::counter_add("ltlcheck.buchi_states", buchi.num_states() as u64);
    let transitions: usize = buchi.states().iter().map(|s| s.succs.len()).sum();
    obskit::counter_add("ltlcheck.buchi_transitions", transitions as u64);
}

/// [`check_graph_fair`], but every verdict comes with machine-checkable
/// evidence: a lasso counterexample on failure, an emptiness certificate
/// ([`HoldsCertificate`]) on success.
///
/// The certificate is a by-product of the search the checker already
/// performs — emitting it costs one copy of the explored state set, no
/// extra search.
pub fn check_graph_fair_certified(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
) -> CertifiedVerdict {
    let neg = Ltl::not(phi.clone());
    let buchi = Buchi::from_ltl(&neg);
    count_check(&buchi);
    if buchi.num_states() == 0 {
        return CertifiedVerdict::Holds(HoldsCertificate {
            buchi,
            states: Vec::new(),
            comp: Vec::new(),
        });
    }
    let ex = explore(graph, &buchi);
    match find_fair_scc(&ex, graph, &buchi, justice) {
        Some(target) => CertifiedVerdict::Fails(extract_lasso(&ex, graph, &buchi, justice, target)),
        None => CertifiedVerdict::Holds(HoldsCertificate {
            buchi,
            states: ex.states,
            comp: ex.comp,
        }),
    }
}

/// Verifies `model ⊗ ctrl ⊨ phi` for all possible initial states, with the
/// default [`DeadlockPolicy::Stutter`] and no fairness.
///
/// This is the paper's Equation 1 — the core feedback primitive of DPO-AF.
pub fn verify(model: &WorldModel, ctrl: &Controller, phi: &Ltl) -> Verdict {
    let product = Product::build(model, ctrl);
    let graph = product.label_graph(DeadlockPolicy::Stutter);
    check_graph(&graph, phi)
}

/// Verifies `model ⊗ ctrl ⊨ phi` under justice assumptions.
pub fn verify_fair(
    model: &WorldModel,
    ctrl: &Controller,
    phi: &Ltl,
    justice: &[Justice],
) -> Verdict {
    let product = Product::build(model, ctrl);
    let graph = product.label_graph(DeadlockPolicy::Stutter);
    check_graph_fair(&graph, phi, justice)
}

/// Verifies a controller against a suite of named specifications, reusing
/// one product construction.
pub fn verify_all<'a>(
    model: &WorldModel,
    ctrl: &Controller,
    specs: impl IntoIterator<Item = (&'a str, &'a Ltl)>,
) -> VerificationReport {
    verify_all_fair(model, ctrl, specs, &[])
}

/// Verifies a controller against a suite of named specifications under
/// justice assumptions, reusing one product construction.
pub fn verify_all_fair<'a>(
    model: &WorldModel,
    ctrl: &Controller,
    specs: impl IntoIterator<Item = (&'a str, &'a Ltl)>,
    justice: &[Justice],
) -> VerificationReport {
    let product = Product::build(model, ctrl);
    let graph = product.label_graph(DeadlockPolicy::Stutter);
    let results = specs
        .into_iter()
        .map(|(name, phi)| SpecResult {
            name: name.to_owned(),
            verdict: check_graph_fair(&graph, phi, justice),
        })
        .collect();
    VerificationReport { results }
}

/// [`verify_all_fair`] with the per-specification checks fanned out
/// across `pool`. One product construction is shared (behind `&`) by
/// every check; [`parkit::ThreadPool::map`]'s index-ordered join keeps
/// the report's spec order — and therefore every downstream score —
/// identical to the sequential path at any thread count. Each
/// specification's check is independent and pure, so this is safe
/// spec-level parallelism on top of (or instead of) response-level
/// fan-out.
pub fn verify_all_fair_pooled<'a>(
    model: &WorldModel,
    ctrl: &Controller,
    specs: impl IntoIterator<Item = (&'a str, &'a Ltl)>,
    justice: &[Justice],
    pool: &parkit::ThreadPool,
) -> VerificationReport {
    let product = Product::build(model, ctrl);
    let graph = product.label_graph(DeadlockPolicy::Stutter);
    let specs: Vec<(&str, &Ltl)> = specs.into_iter().collect();
    let results = pool.map(&specs, |_, &(name, phi)| SpecResult {
        name: name.to_owned(),
        verdict: check_graph_fair(&graph, phi, justice),
    });
    VerificationReport { results }
}

/// Product state for emptiness checking: (graph node, Büchi state).
type PState = (u32, u32);

/// The explored product `graph ⊗ buchi`: reachable label-consistent
/// pairs, BFS parents (for stems), successor lists, and the Tarjan SCC
/// decomposition.
struct Exploration {
    states: Vec<PState>,
    parents: Vec<Option<u32>>,
    succs: Vec<Vec<u32>>,
    /// Component id per state, in Tarjan completion order: cross-component
    /// edges strictly decrease the id.
    comp: Vec<u32>,
    num_comps: usize,
}

/// Searches `graph ⊗ buchi` for a reachable SCC that contains a
/// Büchi-accepting state and a witness of every justice condition —
/// generalized Büchi emptiness via SCC decomposition.
pub(crate) fn find_fair_lasso(
    graph: &LabelGraph,
    buchi: &Buchi,
    justice: &[Justice],
) -> Option<Counterexample> {
    if buchi.num_states() == 0 {
        return None;
    }
    let ex = explore(graph, buchi);
    let target = find_fair_scc(&ex, graph, buchi, justice)?;
    Some(extract_lasso(&ex, graph, buchi, justice, target))
}

/// BFS over the label-consistent product pairs, followed by an iterative
/// Tarjan SCC decomposition.
// Tarjan stack pops are internal invariants of the decomposition: an
// `expect` failure here is a bug in this function, never an input
// condition.
#[allow(clippy::expect_used)] // ALLOW: failure here is a bug in this function, never an input condition.
fn explore(graph: &LabelGraph, buchi: &Buchi) -> Exploration {
    let matches = |g: u32, b: u32| -> bool {
        let (props, acts) = graph.labels[g as usize];
        buchi.states()[b as usize].matches(props, acts)
    };

    // --- reachable product exploration (BFS, with parents for stems) ----
    let mut index: std::collections::HashMap<PState, u32> = std::collections::HashMap::new();
    let mut states: Vec<PState> = Vec::new();
    let mut parents: Vec<Option<u32>> = Vec::new();
    let mut succs: Vec<Vec<u32>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();

    for &g in &graph.initial {
        for &b in buchi.initial() {
            let s = (g as u32, b as u32);
            if matches(s.0, s.1) && !index.contains_key(&s) {
                let id = states.len() as u32;
                index.insert(s, id);
                states.push(s);
                parents.push(None);
                succs.push(Vec::new());
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        let (g, b) = states[id as usize];
        let mut out = Vec::new();
        for &g2 in &graph.succs[g as usize] {
            for &b2 in &buchi.states()[b as usize].succs {
                let t = (g2 as u32, b2 as u32);
                if !matches(t.0, t.1) {
                    continue;
                }
                let tid = match index.get(&t) {
                    Some(&tid) => tid,
                    None => {
                        let tid = states.len() as u32;
                        index.insert(t, tid);
                        states.push(t);
                        parents.push(Some(id));
                        succs.push(Vec::new());
                        queue.push_back(tid);
                        tid
                    }
                };
                out.push(tid);
            }
        }
        out.sort_unstable();
        out.dedup();
        succs[id as usize] = out;
    }

    // --- iterative Tarjan SCC ------------------------------------------
    let n = states.len();
    let mut comp = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut disc = vec![u32::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_disc = 0u32;
    let mut next_comp = 0u32;
    // Call stack: (node, successor cursor).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        call.push((root, 0));
        disc[root as usize] = next_disc;
        low[root as usize] = next_disc;
        next_disc += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor < succs[v as usize].len() {
                let w = succs[v as usize][*cursor];
                *cursor += 1;
                if disc[w as usize] == u32::MAX {
                    disc[w as usize] = next_disc;
                    low[w as usize] = next_disc;
                    next_disc += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
                continue;
            }
            call.pop();
            if let Some(&(parent, _)) = call.last() {
                low[parent as usize] = low[parent as usize].min(low[v as usize]);
            }
            if low[v as usize] == disc[v as usize] {
                loop {
                    let w = stack.pop().expect("tarjan stack non-empty");
                    on_stack[w as usize] = false;
                    comp[w as usize] = next_comp;
                    if w == v {
                        break;
                    }
                }
                next_comp += 1;
            }
        }
    }

    if obskit::enabled() {
        obskit::counter_add("ltlcheck.product_states", states.len() as u64);
        obskit::counter_add("ltlcheck.search_visits", u64::from(next_disc));
        obskit::counter_add("ltlcheck.sccs", u64::from(next_comp));
    }

    Exploration {
        states,
        parents,
        succs,
        comp,
        num_comps: next_comp as usize,
    }
}

/// Scans the SCC decomposition for a reachable component that has an
/// internal edge (a real cycle), a Büchi-accepting state, and a witness
/// of every justice condition. Returns its id, if any.
fn find_fair_scc(
    ex: &Exploration,
    graph: &LabelGraph,
    buchi: &Buchi,
    justice: &[Justice],
) -> Option<usize> {
    let nf = justice.len();
    let num_comps = ex.num_comps;
    // has_edge: SCC contains an internal edge (non-trivial cycle).
    let mut has_edge = vec![false; num_comps];
    // accept[c]: SCC contains a Büchi-accepting state.
    let mut accept = vec![false; num_comps];
    // fair[c][j]: SCC contains a state whose label satisfies justice j.
    let mut fair = vec![vec![false; nf]; num_comps];
    for v in 0..ex.states.len() {
        let c = ex.comp[v] as usize;
        let (g, b) = ex.states[v];
        if buchi.states()[b as usize].accepting {
            accept[c] = true;
        }
        let (props, acts) = graph.labels[g as usize];
        for (j, cond) in justice.iter().enumerate() {
            if cond.holds(props, acts) {
                fair[c][j] = true;
            }
        }
        for &w in &ex.succs[v] {
            if ex.comp[w as usize] as usize == c {
                has_edge[c] = true;
            }
        }
    }

    (0..num_comps).find(|&c| has_edge[c] && accept[c] && (0..nf).all(|j| fair[c][j]))
}

/// Extracts a lasso counterexample through the fair accepting SCC
/// `target_comp`: a BFS stem from an initial state, then a cycle that
/// visits an accepting state and one witness per justice condition.
// SCC membership and witness lookups are internal invariants of the
// decomposition: an `expect` failure here is a bug in this module, never
// an input condition.
#[allow(clippy::expect_used)] // ALLOW: failure here is a bug in this module, never an input condition.
fn extract_lasso(
    ex: &Exploration,
    graph: &LabelGraph,
    buchi: &Buchi,
    justice: &[Justice],
    target_comp: usize,
) -> Counterexample {
    let Exploration {
        states,
        parents,
        succs,
        comp,
        ..
    } = ex;
    let n = states.len();

    // Entry: any state of the SCC discovered earliest in the BFS.
    let entry = (0..n as u32)
        .find(|&v| comp[v as usize] as usize == target_comp)
        .expect("component non-empty");

    // Stem: BFS parent chain from an initial state to `entry`.
    let mut stem_ids = vec![entry];
    let mut cur = entry;
    while let Some(p) = parents[cur as usize] {
        stem_ids.push(p);
        cur = p;
    }
    stem_ids.reverse();

    // Cycle: inside the SCC, walk entry → accepting witness → each justice
    // witness → back to entry, via BFS restricted to the SCC.
    let in_comp = |v: u32| comp[v as usize] as usize == target_comp;
    let bfs_path = |from: u32, to: u32, require_step: bool| -> Vec<u32> {
        // Path of nodes after `from` ending at `to` (possibly empty if
        // from == to and !require_step).
        if from == to && !require_step {
            return Vec::new();
        }
        let mut par: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut q = std::collections::VecDeque::new();
        // Seed with successors of `from` so a self-loop is found.
        for &w in &succs[from as usize] {
            if in_comp(w) && !par.contains_key(&w) {
                par.insert(w, from);
                q.push_back(w);
            }
        }
        while let Some(v) = q.pop_front() {
            if v == to {
                break;
            }
            for &w in &succs[v as usize] {
                if in_comp(w) && !par.contains_key(&w) {
                    par.insert(w, v);
                    q.push_back(w);
                }
            }
        }
        // Walk parent pointers until `from` is the *parent*, so a loop
        // that starts and ends at the same state keeps its interior.
        let mut path = vec![to];
        let mut cur = to;
        loop {
            let p = *par.get(&cur).expect("target reachable within SCC");
            if p == from {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    };

    // Witness list: one accepting state, one per justice condition.
    let mut waypoints: Vec<u32> = Vec::new();
    let acc_witness = (0..n as u32)
        .find(|&v| in_comp(v) && buchi.states()[states[v as usize].1 as usize].accepting)
        .expect("accepting state in SCC");
    waypoints.push(acc_witness);
    for j in justice {
        let w = (0..n as u32)
            .find(|&v| {
                in_comp(v) && {
                    let (g, _) = states[v as usize];
                    let (props, acts) = graph.labels[g as usize];
                    j.holds(props, acts)
                }
            })
            .expect("justice witness in SCC");
        waypoints.push(w);
    }

    let mut cycle_ids: Vec<u32> = Vec::new();
    let mut pos = entry;
    for &wp in &waypoints {
        let seg = bfs_path(pos, wp, false);
        cycle_ids.extend(seg);
        pos = wp;
    }
    // Close the loop (require at least one step overall).
    let closing = bfs_path(pos, entry, cycle_ids.is_empty());
    cycle_ids.extend(closing);
    // `cycle_ids` holds the states *after* entry around the loop; the cycle
    // itself starts at entry.
    let mut full_cycle = vec![entry];
    full_cycle.extend(
        cycle_ids
            .iter()
            .copied()
            .take(cycle_ids.len().saturating_sub(1)),
    );
    // The final element of cycle_ids is `entry` again (dropped above); if
    // the loop was a pure self-loop, full_cycle is just [entry].

    let to_step = |v: u32| -> CexStep {
        let (g, _) = states[v as usize];
        let (props, acts) = graph.labels[g as usize];
        CexStep {
            state: graph.origin[g as usize],
            props,
            acts,
        }
    };
    let stem: Vec<CexStep> = stem_ids[..stem_ids.len() - 1]
        .iter()
        .map(|&v| to_step(v))
        .collect();
    let cycle: Vec<CexStep> = full_cycle.into_iter().map(to_step).collect();
    obskit::observe("ltlcheck.lasso_len", (stem.len() + cycle.len()) as u64);
    Counterexample { stem, cycle }
}

/// Evaluates an LTL formula on the ultimately periodic word
/// `prefix · cycleᵚ` with exact infinite-word semantics.
///
/// Used to confirm counterexamples (every [`Counterexample`] returned by
/// [`check_graph`] satisfies the *negation* of its specification) and as a
/// ground-truth oracle in the crate's property tests.
///
/// # Panics
///
/// Panics if `cycle` is empty — an ultimately periodic word needs a
/// non-empty repeating part.
pub fn holds_on_lasso(
    phi: &Ltl,
    prefix: &[(PropSet, ActSet)],
    cycle: &[(PropSet, ActSet)],
) -> bool {
    assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
    let p = prefix.len();
    let n = p + cycle.len();
    let succ = |i: usize| -> usize {
        if i + 1 < n {
            i + 1
        } else {
            p
        }
    };
    let label = |i: usize| -> (PropSet, ActSet) {
        if i < p {
            prefix[i]
        } else {
            cycle[i - p]
        }
    };

    fn eval(
        phi: &Ltl,
        n: usize,
        succ: &dyn Fn(usize) -> usize,
        label: &dyn Fn(usize) -> (PropSet, ActSet),
    ) -> Vec<bool> {
        match phi {
            Ltl::True => vec![true; n],
            Ltl::False => vec![false; n],
            Ltl::Atom(a) => (0..n)
                .map(|i| {
                    let (props, acts) = label(i);
                    a.holds(props, acts)
                })
                .collect(),
            Ltl::Not(inner) => eval(inner, n, succ, label)
                .into_iter()
                .map(|b| !b)
                .collect(),
            Ltl::And(l, r) => {
                let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
                lv.into_iter().zip(rv).map(|(a, b)| a && b).collect()
            }
            Ltl::Or(l, r) => {
                let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
                lv.into_iter().zip(rv).map(|(a, b)| a || b).collect()
            }
            Ltl::Next(inner) => {
                let iv = eval(inner, n, succ, label);
                (0..n).map(|i| iv[succ(i)]).collect()
            }
            Ltl::Until(l, r) => {
                let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
                // Least fixpoint of val[i] = rv[i] ∨ (lv[i] ∧ val[succ(i)]).
                let mut val = vec![false; n];
                let mut changed = true;
                while changed {
                    changed = false;
                    for i in (0..n).rev() {
                        let v = rv[i] || (lv[i] && val[succ(i)]);
                        if v != val[i] {
                            val[i] = v;
                            changed = true;
                        }
                    }
                }
                val
            }
            Ltl::Release(l, r) => {
                let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
                // Greatest fixpoint of val[i] = rv[i] ∧ (lv[i] ∨ val[succ(i)]).
                let mut val = vec![true; n];
                let mut changed = true;
                while changed {
                    changed = false;
                    for i in (0..n).rev() {
                        let v = rv[i] && (lv[i] || val[succ(i)]);
                        if v != val[i] {
                            val[i] = v;
                            changed = true;
                        }
                    }
                }
                val
            }
        }
    }

    eval(phi, n, &succ, &label)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use autokit::{ControllerBuilder, Guard};
    use proptest::prelude::*;

    fn setup() -> (Vocab, WorldModel) {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        v.add_prop("ped").unwrap();
        v.add_act("go").unwrap();
        v.add_act("stop").unwrap();
        let mut model = WorldModel::new("light");
        let g = model.add_state(PropSet::singleton(green));
        let r = model.add_state(PropSet::empty());
        model.add_transition(g, r);
        model.add_transition(r, g);
        model.add_transition(g, g);
        model.add_transition(r, r);
        (v, model)
    }

    fn good_controller(v: &Vocab) -> Controller {
        let green = v.prop("green").unwrap();
        let go = v.act("go").unwrap();
        let stop = v.act("stop").unwrap();
        ControllerBuilder::new("good", 1)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
            .transition(
                0,
                Guard::always().forbids(green),
                ActSet::singleton(stop),
                0,
            )
            .build()
            .unwrap()
    }

    fn reckless_controller(v: &Vocab) -> Controller {
        let go = v.act("go").unwrap();
        ControllerBuilder::new("reckless", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 0)
            .build()
            .unwrap()
    }

    /// The pooled spec sweep returns the same report — same names, same
    /// verdicts, same order — as the sequential one, at several thread
    /// counts (the determinism contract of DESIGN.md §8).
    #[test]
    fn pooled_sweep_matches_sequential() {
        let (v, model) = setup();
        let specs: Vec<(String, Ltl)> = [
            ("safety", "G(!green -> !go)"),
            ("liveness", "G F go"),
            ("response", "G(green -> F go)"),
            ("absurd", "G(!go)"),
        ]
        .iter()
        .map(|(n, s)| ((*n).to_owned(), parse(s, &v).unwrap()))
        .collect();
        let justice: Vec<Justice> = Vec::new();
        for ctrl in [good_controller(&v), reckless_controller(&v)] {
            let serial = verify_all_fair(
                &model,
                &ctrl,
                specs.iter().map(|(n, p)| (n.as_str(), p)),
                &justice,
            );
            for threads in [1, 2, 4] {
                let pool = parkit::ThreadPool::new(threads);
                let pooled = verify_all_fair_pooled(
                    &model,
                    &ctrl,
                    specs.iter().map(|(n, p)| (n.as_str(), p)),
                    &justice,
                    &pool,
                );
                assert_eq!(serial.results.len(), pooled.results.len());
                for (s, p) in serial.results.iter().zip(&pooled.results) {
                    assert_eq!(s.name, p.name, "{threads} threads");
                    assert_eq!(s.verdict.holds(), p.verdict.holds(), "{}", s.name);
                }
            }
        }
    }

    #[test]
    fn good_controller_satisfies_safety() {
        let (v, model) = setup();
        let phi = parse("G(!green -> !go)", &v).unwrap();
        assert!(verify(&model, &good_controller(&v), &phi).holds());
    }

    #[test]
    fn reckless_controller_violates_safety_with_witness() {
        let (v, model) = setup();
        let phi = parse("G(!green -> !go)", &v).unwrap();
        let verdict = verify(&model, &reckless_controller(&v), &phi);
        let Verdict::Fails(cex) = verdict else {
            panic!("expected violation");
        };
        // The counterexample must actually violate the property: the word
        // it denotes satisfies ¬φ.
        let neg = Ltl::not(phi);
        assert!(holds_on_lasso(
            &neg,
            &cex.stem_labels(),
            &cex.cycle_labels()
        ));
        // And some step shows `go` while `¬green`.
        let go = v.act("go").unwrap();
        let green = v.prop("green").unwrap();
        let witness = cex
            .stem
            .iter()
            .chain(&cex.cycle)
            .any(|s| s.acts.contains(go) && !s.props.contains(green));
        assert!(witness, "{}", cex.display(&v));
    }

    #[test]
    fn liveness_holds_for_good_controller() {
        let (v, model) = setup();
        // Whenever green occurs, the controller eventually goes.
        let phi = parse("G(green -> go)", &v).unwrap();
        assert!(verify(&model, &good_controller(&v), &phi).holds());
    }

    #[test]
    fn liveness_fails_when_never_acting() {
        let (v, model) = setup();
        let stop = v.act("stop").unwrap();
        let idle = ControllerBuilder::new("idle", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(stop), 0)
            .build()
            .unwrap();
        let phi = parse("F go", &v).unwrap();
        assert!(!verify(&model, &idle, &phi).holds());
    }

    #[test]
    fn justice_rejects_temporal_conditions() {
        let (v, _) = setup();
        let bad = parse("F green", &v).unwrap();
        assert!(Justice::new("bad", bad).is_err());
        let good = parse("green & !ped", &v).unwrap();
        assert!(Justice::new("good", good).is_ok());
    }

    #[test]
    fn fairness_exempts_unfair_paths() {
        let (v, model) = setup();
        let green = v.prop("green").unwrap();
        let go = v.act("go").unwrap();
        let stop = v.act("stop").unwrap();
        // A controller that waits for green before going, then loops.
        let waiter = ControllerBuilder::new("waiter", 1)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
            .transition(
                0,
                Guard::always().forbids(green),
                ActSet::singleton(stop),
                0,
            )
            .build()
            .unwrap();
        // Without fairness, the adversary keeps the light red forever and
        // `F go` fails.
        let phi = parse("F go", &v).unwrap();
        assert!(!verify(&model, &waiter, &phi).holds());
        // Under "the light is green infinitely often", it holds.
        let justice = [Justice::new("green io", parse("green", &v).unwrap()).unwrap()];
        assert!(verify_fair(&model, &waiter, &phi, &justice).holds());
    }

    #[test]
    fn fair_counterexamples_visit_justice_witnesses() {
        let (v, model) = setup();
        let ctrl = reckless_controller(&v);
        // Violated even under fairness (safety violation).
        let phi = parse("G(!green -> !go)", &v).unwrap();
        let justice = [Justice::new("green io", parse("green", &v).unwrap()).unwrap()];
        let Verdict::Fails(cex) = verify_fair(&model, &ctrl, &phi, &justice) else {
            panic!("expected violation");
        };
        // The cycle must contain a step where the justice condition holds.
        let green = v.prop("green").unwrap();
        assert!(cex.cycle.iter().any(|s| s.props.contains(green)));
        // And the lasso still violates the formula.
        assert!(holds_on_lasso(
            &Ltl::not(phi),
            &cex.stem_labels(),
            &cex.cycle_labels()
        ));
    }

    #[test]
    fn unsatisfiable_fairness_makes_everything_hold() {
        let (v, model) = setup();
        let ctrl = reckless_controller(&v);
        let phi = parse("false", &v).unwrap();
        // `green & ped` never holds in this model.
        let justice = [Justice::new("impossible", parse("green & ped", &v).unwrap()).unwrap()];
        assert!(verify_fair(&model, &ctrl, &phi, &justice).holds());
    }

    #[test]
    fn verify_all_counts_satisfied() {
        let (v, model) = setup();
        let safe = parse("G(!green -> !go)", &v).unwrap();
        let live = parse("G F (go | stop)", &v).unwrap();
        let wrong = parse("G go", &v).unwrap();
        let report = verify_all(
            &model,
            &good_controller(&v),
            [("safe", &safe), ("live", &live), ("wrong", &wrong)],
        );
        assert_eq!(report.num_satisfied(), 2);
        assert_eq!(report.failed(), vec!["wrong"]);
        assert!((report.fraction_satisfied() - 2.0 / 3.0).abs() < 1e-12);
    }

    /// Regression for the empty-suite convention: an empty rule book must
    /// never manufacture a "perfect" response. Both ranking quantities
    /// bottom out at zero.
    #[test]
    fn empty_suite_is_not_perfect() {
        let report = VerificationReport {
            results: Vec::new(),
        };
        assert_eq!(report.num_satisfied(), 0);
        assert_eq!(report.fraction_satisfied(), 0.0);
        assert!(report.failed().is_empty());
    }

    #[test]
    fn certified_verdicts_match_plain_verdicts() {
        let (v, model) = setup();
        let phi = parse("G(!green -> !go)", &v).unwrap();
        for ctrl in [good_controller(&v), reckless_controller(&v)] {
            let product = autokit::Product::build(&model, &ctrl);
            let graph = product.label_graph(autokit::DeadlockPolicy::Stutter);
            let plain = check_graph_fair(&graph, &phi, &[]);
            let certified = check_graph_fair_certified(&graph, &phi, &[]);
            assert_eq!(plain.holds(), certified.holds());
            assert_eq!(plain, certified.verdict());
            if let CertifiedVerdict::Holds(cert) = &certified {
                // The certificate covers a non-trivial explored set with a
                // consistent component ranking.
                assert_eq!(cert.states.len(), cert.comp.len());
                assert!(!cert.states.is_empty());
                assert!(cert.buchi.num_states() > 0);
            }
        }
    }

    /// Single-state stutter cycles: the smallest possible lasso, where
    /// `succ` maps the unique position to itself.
    #[test]
    fn lasso_oracle_single_state_stutter() {
        let (v, _) = setup();
        let green = v.prop("green").unwrap();
        let go = v.act("go").unwrap();
        let g = (PropSet::singleton(green), ActSet::empty());
        let none = (PropSet::empty(), ActSet::empty());
        let act = (PropSet::empty(), ActSet::singleton(go));

        // On a pure stutter cycle, G, F and the plain atom coincide.
        let always = parse("G green", &v).unwrap();
        let eventually = parse("F green", &v).unwrap();
        assert!(holds_on_lasso(&always, &[], &[g]));
        assert!(holds_on_lasso(&eventually, &[], &[g]));
        assert!(!holds_on_lasso(&always, &[], &[none]));
        assert!(!holds_on_lasso(&eventually, &[], &[none]));
        // X on a self-loop is the identity.
        let next = parse("X go", &v).unwrap();
        assert!(holds_on_lasso(&next, &[], &[act]));
        assert!(!holds_on_lasso(&next, &[], &[none]));
        // A prefix ahead of the stutter state is still consumed first.
        assert!(holds_on_lasso(&eventually, &[none, none], &[g]));
        assert!(!holds_on_lasso(&always, &[none], &[g]));
    }

    /// `Until` discharged exactly on the stem/cycle boundary: the
    /// obligation is met by the *first* cycle position, so the stem
    /// carries the left operand the whole way.
    #[test]
    fn lasso_oracle_until_at_boundary() {
        let (v, _) = setup();
        let green = v.prop("green").unwrap();
        let ped = v.prop("ped").unwrap();
        let g = (PropSet::singleton(green), ActSet::empty());
        let p = (PropSet::singleton(ped), ActSet::empty());
        let none = (PropSet::empty(), ActSet::empty());

        let phi = parse("green U ped", &v).unwrap();
        // green,green | ped,... — discharged at the boundary.
        assert!(holds_on_lasso(&phi, &[g, g], &[p, none]));
        // green,green | none,ped — the gap at the boundary breaks it.
        assert!(!holds_on_lasso(&phi, &[g, g], &[none, p]));
        // Discharged at the *last* stem position, one before the boundary.
        assert!(holds_on_lasso(&phi, &[g, p], &[none]));
        // The right operand holding only in the unreachable part of the
        // stem (before the loop re-enters at the cycle start) is not
        // revisited: after the boundary the word never sees `ped` again,
        // so G(green U ped) fails even though the stem satisfied it once.
        let global = parse("G(green U ped)", &v).unwrap();
        assert!(!holds_on_lasso(&global, &[p], &[g]));
    }

    /// Nested `Release`: `a R (b R c)` — the inner release must hold at
    /// every position until the outer is released.
    #[test]
    fn lasso_oracle_nested_release() {
        let (v, _) = setup();
        let green = v.prop("green").unwrap();
        let ped = v.prop("ped").unwrap();
        let both = (
            {
                let mut s = PropSet::singleton(green);
                s.insert(ped);
                s
            },
            ActSet::empty(),
        );
        let g = (PropSet::singleton(green), ActSet::empty());
        let p = (PropSet::singleton(ped), ActSet::empty());
        let none = (PropSet::empty(), ActSet::empty());

        // green R ped: ped must hold until (and including when) green
        // joins it.
        let inner = parse("green R ped", &v).unwrap();
        assert!(holds_on_lasso(&inner, &[p, p], &[both]));
        assert!(holds_on_lasso(&inner, &[], &[p])); // ped forever
        assert!(!holds_on_lasso(&inner, &[p], &[g])); // ped drops too early

        // Nested: green R (green R ped) — on words where ped holds
        // forever, every release is trivially satisfied.
        let nested = parse("green R (green R ped)", &v).unwrap();
        assert!(holds_on_lasso(&nested, &[], &[p]));
        // Once green arrives together with ped, both layers release.
        assert!(holds_on_lasso(&nested, &[p], &[both, none]));
        // If ped drops before green ever shows up, the inner release is
        // violated at the position after the drop.
        assert!(!holds_on_lasso(&nested, &[p], &[none]));
    }

    #[test]
    fn lasso_oracle_basics() {
        let (v, _) = setup();
        let green = v.prop("green").unwrap();
        let g = (PropSet::singleton(green), ActSet::empty());
        let none = (PropSet::empty(), ActSet::empty());
        let phi = parse("G F green", &v).unwrap();
        assert!(holds_on_lasso(&phi, &[], &[none, g]));
        assert!(!holds_on_lasso(&phi, &[g, g], &[none]));
        let phi = parse("green U !green", &v).unwrap();
        assert!(holds_on_lasso(&phi, &[g, g, none], &[g]));
        assert!(!holds_on_lasso(&phi, &[], &[g]));
    }

    /// Generator for random LTL formulas over two props and one action of
    /// the `setup()` vocabulary (ids are stable by insertion order).
    fn arb_ltl() -> impl Strategy<Value = Ltl> {
        let (v, _) = setup();
        let a = v.prop("green").unwrap();
        let b = v.prop("ped").unwrap();
        let s = v.act("go").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
            Just(Ltl::act(s)),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    fn arb_word() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
        (
            proptest::collection::vec(0u8..8, 0..4),
            proptest::collection::vec(0u8..8, 1..4),
        )
    }

    fn decode(word: &[u8], v: &Vocab) -> Vec<(PropSet, ActSet)> {
        let a = v.prop("green").unwrap();
        let b = v.prop("ped").unwrap();
        let s = v.act("go").unwrap();
        word.iter()
            .map(|&bits| {
                let mut props = PropSet::empty();
                if bits & 1 != 0 {
                    props.insert(a);
                }
                if bits & 2 != 0 {
                    props.insert(b);
                }
                let mut acts = ActSet::empty();
                if bits & 4 != 0 {
                    acts.insert(s);
                }
                (props, acts)
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The Büchi translation agrees with direct LTL evaluation on
        /// random lasso words: a single-path graph satisfies φ iff the
        /// word does.
        #[test]
        fn buchi_agrees_with_lasso_oracle(
            (prefix_raw, cycle_raw) in arb_word(),
            phi in arb_ltl(),
        ) {
            let (v, _) = setup();
            let prefix = decode(&prefix_raw, &v);
            let cycle = decode(&cycle_raw, &v);

            // Build a single-lasso LabelGraph.
            let n = prefix.len() + cycle.len();
            let mut labels = Vec::new();
            let mut succs = vec![Vec::new(); n];
            for (i, &l) in prefix.iter().chain(cycle.iter()).enumerate() {
                labels.push(l);
                if i + 1 < n {
                    succs[i].push(i + 1);
                } else {
                    succs[i].push(prefix.len());
                }
            }
            let graph = LabelGraph {
                labels,
                origin: vec![ProductState { model: 0, ctrl: 0 }; n],
                succs,
                initial: vec![0],
            };
            let expected = holds_on_lasso(&phi, &prefix, &cycle);
            let got = check_graph(&graph, &phi).holds();
            prop_assert_eq!(got, expected, "phi = {:?}", phi);
        }

        /// Counterexamples are sound: the reported lasso violates the
        /// specification per the exact oracle.
        #[test]
        fn counterexamples_are_sound(phi in arb_ltl()) {
            let (v, model) = setup();
            let ctrl = reckless_controller(&v);
            if let Verdict::Fails(cex) = verify(&model, &ctrl, &phi) {
                prop_assert!(!cex.cycle.is_empty());
                let neg = Ltl::not(phi);
                prop_assert!(holds_on_lasso(&neg, &cex.stem_labels(), &cex.cycle_labels()));
            }
        }

        /// With fairness, counterexample cycles contain a witness of every
        /// justice condition and still violate the specification.
        #[test]
        fn fair_counterexamples_are_sound(phi in arb_ltl()) {
            let (v, model) = setup();
            let ctrl = good_controller(&v);
            let justice = [
                Justice::new("green io", parse("green", &v).unwrap()).unwrap(),
                Justice::new("red io", parse("!green", &v).unwrap()).unwrap(),
            ];
            if let Verdict::Fails(cex) = verify_fair(&model, &ctrl, &phi, &justice) {
                prop_assert!(!cex.cycle.is_empty());
                for j in &justice {
                    prop_assert!(
                        cex.cycle.iter().any(|s| j.holds(s.props, s.acts)),
                        "cycle misses justice witness {}",
                        j.name()
                    );
                }
                let neg = Ltl::not(phi);
                prop_assert!(holds_on_lasso(&neg, &cex.stem_labels(), &cex.cycle_labels()));
            }
        }
    }
}
