//! NuSMV module export — mirrors the paper's Appendix D artifacts.
//!
//! The paper verifies controllers by compiling them to NuSMV `MODULE`s
//! with boolean variables for the observations, an enumerated `action`
//! variable, a `TRANS` relation, and `LTLSPEC` declarations. This module
//! renders the same artifacts from our in-memory structures so the
//! reproduction's controllers can be cross-checked with a real NuSMV
//! installation if one is available. Nothing in this crate *parses* SMV;
//! export is one-way.
//!
//! Two encoding notes relative to Appendix D:
//!
//! * Our controllers can emit action *sets*; the export declares one
//!   boolean `act_*` variable per action instead of a single enum, which
//!   also matches how the LTL specifications treat actions as atoms.
//! * The controller's own state is exported as an explicit `q` variable,
//!   which Appendix D leaves implicit in its hand-written `TRANS` cases.

use crate::{Atom, Ltl};
use autokit::{Controller, Vocab};
use std::fmt::Write as _;

/// Converts a vocabulary name to an SMV identifier
/// (`"car from left"` → `car_from_left`).
pub fn smv_ident(name: &str) -> String {
    name.replace([' ', '-'], "_")
}

/// Renders an LTL formula in NuSMV `LTLSPEC` syntax.
///
/// # Example
///
/// ```
/// use autokit::Vocab;
/// use ltlcheck::{parse, smv};
///
/// let mut v = Vocab::new();
/// v.add_prop("stop sign")?;
/// v.add_act("stop")?;
/// let phi = parse("G(\"stop sign\" -> F stop)", &v)?;
/// assert_eq!(smv::render_ltl(&phi, &v), "G ((!stop_sign) | (F stop))");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_ltl(phi: &Ltl, vocab: &Vocab) -> String {
    fn atom_name(a: Atom, vocab: &Vocab) -> String {
        smv_ident(a.name(vocab))
    }
    fn go(phi: &Ltl, vocab: &Vocab, out: &mut String) {
        match phi {
            Ltl::True => out.push_str("TRUE"),
            Ltl::False => out.push_str("FALSE"),
            Ltl::Atom(a) => out.push_str(&atom_name(*a, vocab)),
            Ltl::Not(inner) => {
                out.push('!');
                wrap(inner, vocab, out);
            }
            Ltl::And(l, r) => {
                wrap(l, vocab, out);
                out.push_str(" & ");
                wrap(r, vocab, out);
            }
            Ltl::Or(l, r) => {
                wrap(l, vocab, out);
                out.push_str(" | ");
                wrap(r, vocab, out);
            }
            Ltl::Next(inner) => {
                out.push_str("X ");
                wrap(inner, vocab, out);
            }
            Ltl::Until(l, r) => {
                if **l == Ltl::True {
                    out.push_str("F ");
                    wrap(r, vocab, out);
                } else {
                    wrap(l, vocab, out);
                    out.push_str(" U ");
                    wrap(r, vocab, out);
                }
            }
            Ltl::Release(l, r) => {
                if **l == Ltl::False {
                    out.push_str("G ");
                    wrap(r, vocab, out);
                } else {
                    // NuSMV uses V for release.
                    wrap(l, vocab, out);
                    out.push_str(" V ");
                    wrap(r, vocab, out);
                }
            }
        }
    }
    fn wrap(phi: &Ltl, vocab: &Vocab, out: &mut String) {
        match phi {
            Ltl::True | Ltl::False | Ltl::Atom(_) => go(phi, vocab, out),
            _ => {
                out.push('(');
                go(phi, vocab, out);
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    go(phi, vocab, &mut out);
    out
}

/// Renders a controller as a NuSMV `MODULE`, with `LTLSPEC` declarations
/// for the given named specifications.
pub fn render_module(
    module_name: &str,
    ctrl: &Controller,
    vocab: &Vocab,
    specs: &[(String, Ltl)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "MODULE {}", smv_ident(module_name));
    let _ = writeln!(out, "VAR");
    for p in vocab.props() {
        let _ = writeln!(out, "  {} : boolean;", smv_ident(vocab.prop_name(p)));
    }
    for a in vocab.acts() {
        let _ = writeln!(out, "  {} : boolean;", smv_ident(vocab.act_name(a)));
    }
    let _ = writeln!(out, "  q : 0..{};", ctrl.num_states().saturating_sub(1));
    let _ = writeln!(out);
    let _ = writeln!(out, "ASSIGN");
    let _ = writeln!(out, "  init(q) := {};", ctrl.initial());
    let _ = writeln!(out);
    let _ = writeln!(out, "TRANS");
    let mut disjuncts: Vec<String> = Vec::new();
    for t in ctrl.transitions() {
        let mut conj: Vec<String> = vec![format!("q = {}", t.from)];
        for p in t.guard.pos.iter() {
            conj.push(smv_ident(vocab.prop_name(p)));
        }
        for p in t.guard.neg.iter() {
            conj.push(format!("!{}", smv_ident(vocab.prop_name(p))));
        }
        for a in vocab.acts() {
            if t.action.contains(a) {
                conj.push(smv_ident(vocab.act_name(a)));
            } else {
                conj.push(format!("!{}", smv_ident(vocab.act_name(a))));
            }
        }
        conj.push(format!("next(q) = {}", t.to));
        disjuncts.push(format!("  ({})", conj.join(" & ")));
    }
    if disjuncts.is_empty() {
        let _ = writeln!(out, "  TRUE;");
    } else {
        let _ = writeln!(out, "{};", disjuncts.join("\n  |\n"));
    }
    let _ = writeln!(out);
    for (name, phi) in specs {
        let _ = writeln!(
            out,
            "LTLSPEC NAME {} := {};",
            smv_ident(name),
            render_ltl(phi, vocab)
        );
    }
    out
}

/// Renders the NuSMV batch script of Appendix D: load the model, then
/// check each named specification into its own result file.
pub fn render_check_script(model_file: &str, spec_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str("#!NuSMV -source\n");
    let _ = writeln!(out, "read_model -i {model_file}");
    out.push_str("go\n");
    for (i, name) in spec_names.iter().enumerate() {
        let _ = writeln!(
            out,
            "check_ltlspec -P \"{}\" -o result{}.txt",
            smv_ident(name),
            i + 1
        );
    }
    out.push_str("quit\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use autokit::{ActSet, ControllerBuilder, Guard};

    fn setup() -> (Vocab, Controller) {
        let mut v = Vocab::new();
        let green = v.add_prop("green traffic light").unwrap();
        let car = v.add_prop("car from left").unwrap();
        let stop = v.add_act("stop").unwrap();
        let go = v.add_act("go straight").unwrap();
        let ctrl = ControllerBuilder::new("turn right", 2)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 1)
            .transition(
                0,
                Guard::always().forbids(green).forbids(car),
                ActSet::singleton(stop),
                0,
            )
            .build()
            .unwrap();
        (v, ctrl)
    }

    #[test]
    fn identifiers_are_smv_safe() {
        assert_eq!(smv_ident("car from left"), "car_from_left");
        assert_eq!(smv_ident("green left-turn light"), "green_left_turn_light");
    }

    #[test]
    fn ltl_rendering_matches_nusmv_syntax() {
        let (v, _) = setup();
        let phi = parse("G(\"car from left\" -> !\"go straight\")", &v).unwrap();
        assert_eq!(
            render_ltl(&phi, &v),
            "G ((!car_from_left) | (!go_straight))"
        );
        let phi = parse("F stop", &v).unwrap();
        assert_eq!(render_ltl(&phi, &v), "F stop");
        let phi = parse("stop U \"green traffic light\"", &v).unwrap();
        assert_eq!(render_ltl(&phi, &v), "stop U green_traffic_light");
    }

    #[test]
    fn module_contains_vars_trans_and_specs() {
        let (v, ctrl) = setup();
        let phi = parse("G(\"car from left\" -> stop)", &v).unwrap();
        let text = render_module(
            "turn_right_before_finetune",
            &ctrl,
            &v,
            &[("phi_5".into(), phi)],
        );
        assert!(text.contains("MODULE turn_right_before_finetune"));
        assert!(text.contains("green_traffic_light : boolean;"));
        assert!(text.contains("q : 0..1;"));
        assert!(text.contains("init(q) := 0;"));
        assert!(text.contains("TRANS"));
        assert!(text.contains("next(q) = 1"));
        assert!(text.contains("LTLSPEC NAME phi_5 :="));
        // Every transition constrains every action variable.
        assert!(text.contains("!stop") || text.contains("stop &"));
    }

    #[test]
    fn check_script_lists_all_specs() {
        let script = render_check_script("right_turn.smv", &["phi_1".into(), "phi_2".into()]);
        assert!(script.starts_with("#!NuSMV -source"));
        assert!(script.contains("read_model -i right_turn.smv"));
        assert!(script.contains("check_ltlspec -P \"phi_1\" -o result1.txt"));
        assert!(script.contains("check_ltlspec -P \"phi_2\" -o result2.txt"));
        assert!(script.trim_end().ends_with("quit"));
    }
}
