//! LTL over finite traces (LTLf) — the paper's **empirical evaluation**
//! path (Section 4.2, Equation 2).
//!
//! When a world model is unavailable, the paper runs the controller in a
//! simulator, collects finite traces `(2^P × 2^{P_A})^N`, and checks each
//! trace against the specifications. The fraction of satisfying traces is
//! the satisfaction rate `P_Φ` reported per specification (the paper's
//! Figure 11).
//!
//! ## Semantics
//!
//! Standard LTLf: `X` is the *strong* next (false at the last position),
//! `φ U ψ` requires `ψ` to occur within the trace, and the release dual
//! `φ R ψ` is weak (holds if `ψ` persists to the end of the trace).
//! The empty trace satisfies exactly the formulas whose boundary value is
//! true (`true`, `φ R ψ`, negations thereof, …).

use crate::Ltl;
use autokit::Trace;

/// Evaluates an LTLf formula on a finite trace.
///
/// # Example
///
/// ```
/// use autokit::{ActSet, PropSet, Step, Trace, Vocab};
/// use ltlcheck::{finite, parse};
///
/// let mut v = Vocab::new();
/// let ped = v.add_prop("pedestrian")?;
/// let stop = v.add_act("stop")?;
///
/// let phi = parse("G(pedestrian -> F stop)", &v)?;
///
/// let mut good = Trace::new();
/// good.push(Step::new(PropSet::singleton(ped), ActSet::empty()));
/// good.push(Step::new(PropSet::singleton(ped), ActSet::singleton(stop)));
/// assert!(finite::satisfies(&good, &phi));
///
/// let mut bad = Trace::new();
/// bad.push(Step::new(PropSet::singleton(ped), ActSet::empty()));
/// bad.push(Step::new(PropSet::empty(), ActSet::empty()));
/// assert!(!finite::satisfies(&bad, &phi));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn satisfies(trace: &Trace, phi: &Ltl) -> bool {
    eval(trace, phi)[0]
}

/// Evaluates the formula at every position, returning a vector of length
/// `trace.len() + 1`; index `i` is the truth value of the suffix starting
/// at `i`, and the final entry is the boundary (empty-suffix) value.
pub fn eval(trace: &Trace, phi: &Ltl) -> Vec<bool> {
    let n = trace.len();
    match phi {
        Ltl::True => vec![true; n + 1],
        Ltl::False => vec![false; n + 1],
        Ltl::Atom(a) => {
            let mut out: Vec<bool> = trace
                .iter()
                .map(|step| a.holds(step.props, step.acts))
                .collect();
            out.push(false); // boundary: no step to witness the atom
            out
        }
        Ltl::Not(inner) => eval(trace, inner).into_iter().map(|b| !b).collect(),
        Ltl::And(l, r) => {
            let (lv, rv) = (eval(trace, l), eval(trace, r));
            lv.into_iter().zip(rv).map(|(a, b)| a && b).collect()
        }
        Ltl::Or(l, r) => {
            let (lv, rv) = (eval(trace, l), eval(trace, r));
            lv.into_iter().zip(rv).map(|(a, b)| a || b).collect()
        }
        Ltl::Next(inner) => {
            let iv = eval(trace, inner);
            // Strong next: false at the boundary and at the last position
            // when no successor exists.
            let mut out: Vec<bool> = (0..n).map(|i| i + 1 < n && iv[i + 1]).collect();
            out.push(false);
            out
        }
        Ltl::Until(l, r) => {
            let (lv, rv) = (eval(trace, l), eval(trace, r));
            let mut out = vec![false; n + 1];
            for i in (0..n).rev() {
                out[i] = rv[i] || (lv[i] && out[i + 1]);
            }
            out
        }
        Ltl::Release(l, r) => {
            let (lv, rv) = (eval(trace, l), eval(trace, r));
            let mut out = vec![true; n + 1];
            for i in (0..n).rev() {
                out[i] = rv[i] && (lv[i] || out[i + 1]);
            }
            out
        }
    }
}

/// Fraction of traces satisfying `phi` — the paper's `P_Φ`.
///
/// Returns `1.0` for an empty trace collection (vacuous).
pub fn satisfaction_rate<'a>(traces: impl IntoIterator<Item = &'a Trace>, phi: &Ltl) -> f64 {
    let mut total = 0usize;
    let mut satisfied = 0usize;
    for trace in traces {
        total += 1;
        if satisfies(trace, phi) {
            satisfied += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        satisfied as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use autokit::{ActSet, PropSet, Step, Vocab};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    fn trace_of(v: &Vocab, bits: &[u8]) -> Trace {
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        bits.iter()
            .map(|&x| {
                let mut props = PropSet::empty();
                if x & 1 != 0 {
                    props.insert(a);
                }
                if x & 2 != 0 {
                    props.insert(b);
                }
                let mut acts = ActSet::empty();
                if x & 4 != 0 {
                    acts.insert(s);
                }
                Step::new(props, acts)
            })
            .collect()
    }

    #[test]
    fn atoms_and_boolean_ops() {
        let v = vocab();
        let t = trace_of(&v, &[1, 2]);
        assert!(satisfies(&t, &parse("a", &v).unwrap()));
        assert!(!satisfies(&t, &parse("b", &v).unwrap()));
        assert!(satisfies(&t, &parse("a & !b", &v).unwrap()));
        assert!(satisfies(&t, &parse("a | b", &v).unwrap()));
    }

    #[test]
    fn strong_next_at_end() {
        let v = vocab();
        let t = trace_of(&v, &[1]);
        // X anything is false at the last position.
        assert!(!satisfies(&t, &parse("X a", &v).unwrap()));
        assert!(!satisfies(&t, &parse("X true", &v).unwrap()));
        let t2 = trace_of(&v, &[0, 1]);
        assert!(satisfies(&t2, &parse("X a", &v).unwrap()));
    }

    #[test]
    fn finite_until_requires_witness() {
        let v = vocab();
        assert!(satisfies(
            &trace_of(&v, &[1, 1, 2]),
            &parse("a U b", &v).unwrap()
        ));
        // a forever but b never arrives: fails on finite traces.
        assert!(!satisfies(
            &trace_of(&v, &[1, 1, 1]),
            &parse("a U b", &v).unwrap()
        ));
    }

    #[test]
    fn globally_and_eventually() {
        let v = vocab();
        assert!(satisfies(
            &trace_of(&v, &[1, 1, 1]),
            &parse("G a", &v).unwrap()
        ));
        assert!(!satisfies(
            &trace_of(&v, &[1, 0, 1]),
            &parse("G a", &v).unwrap()
        ));
        assert!(satisfies(
            &trace_of(&v, &[0, 0, 2]),
            &parse("F b", &v).unwrap()
        ));
        assert!(!satisfies(
            &trace_of(&v, &[0, 0, 0]),
            &parse("F b", &v).unwrap()
        ));
    }

    #[test]
    fn release_weak_at_end() {
        let v = vocab();
        // b holds to the end without a ever releasing: satisfied (weak).
        assert!(satisfies(
            &trace_of(&v, &[2, 2, 2]),
            &parse("a R b", &v).unwrap()
        ));
        assert!(satisfies(
            &trace_of(&v, &[2, 3]),
            &parse("a R b", &v).unwrap()
        ));
        assert!(!satisfies(
            &trace_of(&v, &[2, 0]),
            &parse("a R b", &v).unwrap()
        ));
    }

    #[test]
    fn empty_trace_boundary_values() {
        let v = vocab();
        let t = Trace::new();
        assert!(satisfies(&t, &parse("true", &v).unwrap()));
        assert!(satisfies(&t, &parse("G a", &v).unwrap())); // vacuous
        assert!(!satisfies(&t, &parse("F a", &v).unwrap()));
        assert!(!satisfies(&t, &parse("a", &v).unwrap()));
    }

    #[test]
    fn satisfaction_rate_counts() {
        let v = vocab();
        let phi = parse("F b", &v).unwrap();
        let traces = [
            trace_of(&v, &[0, 2]),
            trace_of(&v, &[0, 0]),
            trace_of(&v, &[2]),
            trace_of(&v, &[1]),
        ];
        let rate = satisfaction_rate(traces.iter(), &phi);
        assert!((rate - 0.5).abs() < 1e-12);
        assert_eq!(satisfaction_rate([], &phi), 1.0);
    }

    proptest! {
        /// ¬ is a complement at every position.
        #[test]
        fn negation_complements(bits in proptest::collection::vec(0u8..8, 0..12)) {
            let v = vocab();
            let t = trace_of(&v, &bits);
            for src in ["a", "X b", "a U b", "G a", "F (a & b)", "a R b"] {
                let phi = parse(src, &v).unwrap();
                let neg = Ltl::not(phi.clone());
                let pv = eval(&t, &phi);
                let nv = eval(&t, &neg);
                for i in 0..pv.len() {
                    prop_assert_eq!(pv[i], !nv[i]);
                }
            }
        }

        /// `G a` on finite traces equals "a at every position".
        #[test]
        fn globally_matches_all(bits in proptest::collection::vec(0u8..8, 0..12)) {
            let v = vocab();
            let t = trace_of(&v, &bits);
            let phi = parse("G a", &v).unwrap();
            let expected = bits.iter().all(|&x| x & 1 != 0);
            prop_assert_eq!(satisfies(&t, &phi), expected);
        }

        /// Until/Release duality holds pointwise on finite traces.
        #[test]
        fn until_release_duality(bits in proptest::collection::vec(0u8..8, 0..12)) {
            let v = vocab();
            let t = trace_of(&v, &bits);
            let ur = parse("!(a U b)", &v).unwrap();
            let rl = parse("(!a) R (!b)", &v).unwrap();
            prop_assert_eq!(eval(&t, &ur), eval(&t, &rl));
        }
    }
}
