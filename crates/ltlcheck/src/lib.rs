//! # ltlcheck — an explicit-state LTL model checker
//!
//! This crate is the reproduction's stand-in for **NuSMV** in
//! *"Fine-Tuning Language Models Using Formal Methods Feedback"*
//! (MLSys 2024). The paper verifies product automata `M ⊗ C` against
//! linear temporal logic specifications; this crate implements the full
//! verification stack from scratch:
//!
//! * [`Ltl`] — LTL syntax over the mixed proposition/action alphabet
//!   `2^{P ∪ P_A}`, with a parser ([`parse`]) and pretty-printer.
//! * [`Buchi`] — Büchi automata built from LTL formulas via the classic
//!   GPVW tableau construction (`Gerth, Peled, Vardi, Wolper 1995`),
//!   degeneralized with a counter construction.
//! * [`check_graph`] / [`verify`] — automata-theoretic model checking:
//!   the negated specification is translated to a Büchi automaton, composed
//!   with the product automaton's label graph, and checked for emptiness
//!   with a nested depth-first search. Violations come with a **lasso
//!   counterexample** rendered in the paper's `(p, q, c ∪ a)` trace format.
//! * [`finite`] — LTL over *finite* traces (LTLf semantics), used for the
//!   paper's empirical evaluation of simulator rollouts (its Eq. 2).
//! * [`specs`] — the paper's 15 driving-rule specifications Φ₁..Φ₁₅
//!   (Appendix C), expressed over the `autokit` driving vocabulary.
//! * [`smv`] — NuSMV module export for controllers and specifications,
//!   mirroring the paper's Appendix D artifacts.
//!
//! ## Example: the paper's Φ₃ on a trivial controller
//!
//! ```
//! use autokit::{ActSet, ControllerBuilder, Guard, Product, PropSet, Vocab, WorldModel};
//! use ltlcheck::{parse, verify, Verdict};
//!
//! let mut v = Vocab::new();
//! let green = v.add_prop("green traffic light")?;
//! let go = v.add_act("go straight")?;
//!
//! // Two-phase light.
//! let mut model = WorldModel::new("light");
//! let g = model.add_state(PropSet::singleton(green));
//! let r = model.add_state(PropSet::empty());
//! model.add_transition(g, r);
//! model.add_transition(r, g);
//! model.add_transition(g, g);
//! model.add_transition(r, r);
//!
//! // A reckless controller that always goes straight...
//! let reckless = ControllerBuilder::new("always go", 1)
//!     .initial(0)
//!     .transition(0, Guard::always(), ActSet::singleton(go), 0)
//!     .build()?;
//!
//! // ...violates Φ₃ = □(¬green traffic light → ¬go straight).
//! let phi3 = parse("G(!\"green traffic light\" -> !\"go straight\")", &v)?;
//! let verdict = verify(&model, &reckless, &phi3);
//! assert!(matches!(verdict, Verdict::Fails(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod ast;
mod buchi;
pub mod finite;
mod mc;
mod parser;
pub mod smv;
pub mod specs;
pub mod symbolic;

pub use ast::{Atom, Ltl};
pub use buchi::{Buchi, BuchiState, MAX_CLOSURE};
pub use mc::{
    check_graph, check_graph_fair, check_graph_fair_certified, holds_on_lasso, verify, verify_all,
    verify_all_fair, verify_all_fair_pooled, verify_fair, CertifiedVerdict, CexStep,
    Counterexample, HoldsCertificate, Justice, NonPropositionalError, SpecResult, Verdict,
    VerificationReport,
};
pub use parser::{parse, ParseLtlError};
