//! A symbolic (BDD-based) verification backend — the NuSMV-style
//! counterpart to the explicit-state checker in [`crate::check_graph_fair`].
//!
//! The product of the label graph with the Büchi automaton of the negated
//! specification is encoded over binary state variables; reachability and
//! the Emerson–Lei fair-cycle computation are symbolic fixpoints over
//! BDDs instead of explicit graph searches. Both backends decide the same
//! question, and the test suite cross-checks them — on large,
//! transition-dense models (the paper's "conservative" world models) the
//! symbolic backend is the one that scales.
//!
//! The symbolic backend returns a yes/no verdict; for counterexample
//! lassos use the explicit checker.

use crate::{Buchi, Justice, Ltl};
use autokit::LabelGraph;
use bdd::{BddManager, Ref};

/// Statistics from a symbolic check, for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicStats {
    /// Binary state variables per block (current/next).
    pub state_bits: u32,
    /// Live BDD nodes when the check finished.
    pub bdd_nodes: usize,
    /// Outer Emerson–Lei iterations until fixpoint.
    pub el_iterations: usize,
}

/// Symbolic analogue of [`crate::check_graph_fair`]: returns `true` iff
/// every justice-fair infinite path of `graph` satisfies `phi`.
pub fn check_graph_fair_symbolic(graph: &LabelGraph, phi: &Ltl, justice: &[Justice]) -> bool {
    check_with_stats(graph, phi, justice).0
}

/// [`check_graph_fair_symbolic`] with statistics.
pub fn check_with_stats(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
) -> (bool, SymbolicStats) {
    let neg = Ltl::not(phi.clone());
    let buchi = Buchi::from_ltl(&neg);
    let ng = graph.num_nodes();
    let nb = buchi.num_states();
    if ng == 0 || nb == 0 || graph.initial.is_empty() {
        return (
            true,
            SymbolicStats {
                state_bits: 0,
                bdd_nodes: 0,
                el_iterations: 0,
            },
        );
    }

    let gbits = bits_for(ng);
    let bbits = bits_for(nb);
    let state_bits = gbits + bbits;
    // Variable layout: [0, state_bits) = current, [state_bits, 2·state_bits) = next.
    let mut m = BddManager::new(2 * state_bits);

    let current_vars: Vec<u32> = (0..state_bits).collect();
    let next_vars: Vec<u32> = (state_bits..2 * state_bits).collect();

    // Encoders over the *current* block; shift for the next block.
    let enc_g = |m: &mut BddManager, g: usize| encode(m, g as u32, 0, gbits);
    let enc_b = |m: &mut BddManager, b: usize| encode(m, b as u32, gbits, bbits);

    // Product state predicate: graph node g with Büchi state b, where b's
    // literal constraints match g's label.
    let matches = |g: usize, b: usize| -> bool {
        let (props, acts) = graph.labels[g];
        buchi.states()[b].matches(props, acts)
    };

    // Valid state space (label-consistent pairs).
    let mut valid = m.constant(false);
    for g in 0..ng {
        let eg = enc_g(&mut m, g);
        let mut ok_b = m.constant(false);
        for b in 0..nb {
            if matches(g, b) {
                let eb = enc_b(&mut m, b);
                ok_b = m.or(ok_b, eb);
            }
        }
        let both = m.and(eg, ok_b);
        valid = m.or(valid, both);
    }

    // Graph edge relation over (current g, next g).
    let mut eg_rel = m.constant(false);
    for g in 0..ng {
        let src = enc_g(&mut m, g);
        let mut targets = m.constant(false);
        for &g2 in &graph.succs[g] {
            let t = enc_g(&mut m, g2);
            targets = m.or(targets, t);
        }
        let t_next = m.rename_shift(targets, i64::from(state_bits));
        let edge = m.and(src, t_next);
        eg_rel = m.or(eg_rel, edge);
    }

    // Büchi edge relation over (current b, next b).
    let mut eb_rel = m.constant(false);
    for (b, st) in buchi.states().iter().enumerate() {
        let src = enc_b(&mut m, b);
        let mut targets = m.constant(false);
        for &b2 in &st.succs {
            let t = enc_b(&mut m, b2);
            targets = m.or(targets, t);
        }
        let t_next = m.rename_shift(targets, i64::from(state_bits));
        let edge = m.and(src, t_next);
        eb_rel = m.or(eb_rel, edge);
    }

    // Transition relation: component edges, target valid.
    let valid_next = m.rename_shift(valid, i64::from(state_bits));
    let mut trans = m.and(eg_rel, eb_rel);
    trans = m.and(trans, valid_next);
    let src_valid = valid;
    trans = m.and(trans, src_valid);

    // Initial states.
    let mut init = m.constant(false);
    for &g in &graph.initial {
        for &b in buchi.initial() {
            if matches(g, b) {
                let eg = enc_g(&mut m, g);
                let eb = enc_b(&mut m, b);
                let s = m.and(eg, eb);
                init = m.or(init, s);
            }
        }
    }

    // Acceptance families: Büchi acceptance plus one per justice
    // condition (all over the current block).
    let mut families: Vec<Ref> = Vec::new();
    {
        let mut acc = m.constant(false);
        for (b, st) in buchi.states().iter().enumerate() {
            if st.accepting {
                let eb = enc_b(&mut m, b);
                acc = m.or(acc, eb);
            }
        }
        families.push(acc);
    }
    for j in justice {
        let mut sat = m.constant(false);
        for g in 0..ng {
            let (props, acts) = graph.labels[g];
            if j.holds(props, acts) {
                let eg = enc_g(&mut m, g);
                sat = m.or(sat, eg);
            }
        }
        families.push(sat);
    }

    // EX S = ∃next. trans(cur, next) ∧ S[next].
    let ex = |m: &mut BddManager, trans: Ref, s: Ref| -> Ref {
        let s_next = m.rename_shift(s, i64::from(state_bits));
        let conj = m.and(trans, s_next);
        m.exists(conj, &next_vars)
    };
    // E[Z U T] (backward least fixpoint).
    let eu = |m: &mut BddManager, trans: Ref, z: Ref, t: Ref| -> Ref {
        let mut y = t;
        loop {
            let pre = ex(m, trans, y);
            let step = m.and(z, pre);
            let next = m.or(y, step);
            if next == y {
                return y;
            }
            y = next;
        }
    };

    // Emerson–Lei: greatest fixpoint of
    //   Z = ⋀_i EX E[Z U (Z ∧ F_i)].
    let mut z = valid;
    let mut el_iterations = 0;
    loop {
        el_iterations += 1;
        let mut znew = z;
        for &f in &families {
            let zf = m.and(znew, f);
            let reach_f = eu(&mut m, trans, znew, zf);
            let pre = ex(&mut m, trans, reach_f);
            znew = m.and(znew, pre);
        }
        if znew == z {
            break;
        }
        z = znew;
    }

    // Forward reachability from the initial states.
    let mut reach = init;
    loop {
        let cur = m.and(reach, trans);
        let img_next = m.exists(cur, &current_vars);
        let img = m.rename_shift(img_next, -i64::from(state_bits));
        let next = m.or(reach, img);
        if next == reach {
            break;
        }
        reach = next;
    }

    // A fair cycle is reachable iff reach ∩ Z ≠ ∅.
    let bad = m.and(reach, z);
    let holds = !m.satisfiable(bad);
    (
        holds,
        SymbolicStats {
            state_bits,
            bdd_nodes: m.num_nodes(),
            el_iterations,
        },
    )
}

fn bits_for(n: usize) -> u32 {
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits
}

/// Conjunction of literals encoding `value` in binary over
/// `bits` variables starting at `offset`.
fn encode(m: &mut BddManager, value: u32, offset: u32, bits: u32) -> Ref {
    let mut acc = m.constant(true);
    for i in 0..bits {
        let lit = if value & (1 << i) != 0 {
            m.var(offset + i)
        } else {
            m.nvar(offset + i)
        };
        acc = m.and(acc, lit);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_graph_fair, parse, Verdict};
    use autokit::{ActSet, ProductState, PropSet, Vocab};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    fn lasso_graph(prefix: &[(PropSet, ActSet)], cycle: &[(PropSet, ActSet)]) -> LabelGraph {
        let n = prefix.len() + cycle.len();
        let mut labels = Vec::new();
        let mut succs = vec![Vec::new(); n];
        for (i, &l) in prefix.iter().chain(cycle.iter()).enumerate() {
            labels.push(l);
            if i + 1 < n {
                succs[i].push(i + 1);
            } else {
                succs[i].push(prefix.len());
            }
        }
        LabelGraph {
            labels,
            origin: vec![ProductState { model: 0, ctrl: 0 }; n],
            succs,
            initial: vec![0],
        }
    }

    fn decode(word: &[u8], v: &Vocab) -> Vec<(PropSet, ActSet)> {
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        word.iter()
            .map(|&bits| {
                let mut props = PropSet::empty();
                if bits & 1 != 0 {
                    props.insert(a);
                }
                if bits & 2 != 0 {
                    props.insert(b);
                }
                let mut acts = ActSet::empty();
                if bits & 4 != 0 {
                    acts.insert(s);
                }
                (props, acts)
            })
            .collect()
    }

    #[test]
    fn agrees_on_simple_cases() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let word = vec![(PropSet::singleton(a), ActSet::empty())];
        let graph = lasso_graph(&[], &word);
        for spec in ["G a", "F !a", "a U b", "X a"] {
            let phi = parse(spec, &v).unwrap();
            let explicit = check_graph_fair(&graph, &phi, &[]).holds();
            let symbolic = check_graph_fair_symbolic(&graph, &phi, &[]);
            assert_eq!(explicit, symbolic, "{spec}");
        }
    }

    #[test]
    fn agrees_under_justice() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        // Two-state graph: {a} ↔ {} with self-loops; an unfair path may
        // stay in {} forever.
        let la = (PropSet::singleton(a), ActSet::empty());
        let l0 = (PropSet::empty(), ActSet::empty());
        let graph = LabelGraph {
            labels: vec![la, l0],
            origin: vec![ProductState { model: 0, ctrl: 0 }; 2],
            succs: vec![vec![0, 1], vec![0, 1]],
            initial: vec![1],
        };
        let phi = parse("G F a", &v).unwrap();
        let justice = [Justice::new("a io", parse("a", &v).unwrap()).unwrap()];
        // Without justice the spec fails (stay in {} forever)...
        assert!(!check_graph_fair(&graph, &phi, &[]).holds());
        assert!(!check_graph_fair_symbolic(&graph, &phi, &[]));
        // ...and with justice it holds, in both backends.
        assert!(check_graph_fair(&graph, &phi, &justice).holds());
        assert!(check_graph_fair_symbolic(&graph, &phi, &justice));
    }

    #[test]
    fn stats_are_populated() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let graph = lasso_graph(&[], &[(PropSet::singleton(a), ActSet::empty())]);
        let phi = parse("G a", &v).unwrap();
        let (holds, stats) = check_with_stats(&graph, &phi, &[]);
        assert!(holds);
        assert!(stats.state_bits >= 2);
        assert!(stats.bdd_nodes > 2);
        assert!(stats.el_iterations >= 1);
    }

    fn arb_ltl() -> impl Strategy<Value = Ltl> {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
            Just(Ltl::act(s)),
        ];
        leaf.prop_recursive(3, 20, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    /// Random branching graphs (not just lassos).
    fn arb_graph() -> impl Strategy<Value = LabelGraph> {
        (
            proptest::collection::vec(0u8..8, 1..6),
            proptest::collection::vec((0usize..6, 0usize..6), 1..12),
        )
            .prop_map(|(labels_raw, edges)| {
                let v = vocab();
                let labels = decode(&labels_raw, &v);
                let n = labels.len();
                let mut succs = vec![Vec::new(); n];
                for (a, b) in edges {
                    let (a, b) = (a % n, b % n);
                    if !succs[a].contains(&b) {
                        succs[a].push(b);
                    }
                }
                // Ensure totality so both backends see infinite paths.
                for (i, s) in succs.iter_mut().enumerate() {
                    if s.is_empty() {
                        s.push(i);
                    }
                }
                LabelGraph {
                    origin: vec![ProductState { model: 0, ctrl: 0 }; n],
                    labels,
                    succs,
                    initial: vec![0],
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The explicit and symbolic backends agree on random graphs and
        /// formulas, with and without a justice assumption.
        #[test]
        fn backends_agree(graph in arb_graph(), phi in arb_ltl()) {
            let v = vocab();
            let explicit = check_graph_fair(&graph, &phi, &[]).holds();
            let symbolic = check_graph_fair_symbolic(&graph, &phi, &[]);
            prop_assert_eq!(explicit, symbolic, "no justice: {:?}", phi);

            let justice = [Justice::new("a io", parse("a", &v).unwrap()).unwrap()];
            let explicit = matches!(
                check_graph_fair(&graph, &phi, &justice),
                Verdict::Holds
            );
            let symbolic = check_graph_fair_symbolic(&graph, &phi, &justice);
            prop_assert_eq!(explicit, symbolic, "with justice: {:?}", phi);
        }
    }
}
