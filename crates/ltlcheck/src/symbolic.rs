//! A symbolic (BDD-based) verification backend — the NuSMV-style
//! counterpart to the explicit-state checker in [`crate::check_graph_fair`].
//!
//! The product of the label graph with the Büchi automaton of the negated
//! specification is encoded over binary state variables; reachability and
//! the Emerson–Lei fair-cycle computation are symbolic fixpoints over
//! BDDs instead of explicit graph searches.
//!
//! The encoding follows the techniques that made symbolic model checking
//! scale (see DESIGN.md §14):
//!
//! * **Partitioned transition relation.** The graph-component relation
//!   `T_G(g, g')` and the Büchi-component relation `T_B(b, b')` are kept
//!   as separate conjuncts and never conjoined into one monolithic BDD.
//!   Each is built *per successor set* — sources sharing a successor set
//!   are grouped and encoded as `(⋁ sources) ∧ (⋁ targets')` with
//!   balanced [`bdd::BddManager::or_all`] combining — instead of
//!   per-edge.
//! * **Interleaved variable order.** Current/next bits of the same state
//!   bit are adjacent (`cur = 2k`, `next = 2k+1`), the known-good order
//!   for transition relations; the component with more states gets the
//!   bits nearer the root. The blocked `[cur | next]` layout is retained
//!   behind [`SymbolicConfig`] for differential testing.
//! * **Early quantification.** Image and pre-image are computed with the
//!   fused [`bdd::BddManager::and_exists`] relational product, one
//!   partition conjunct at a time: each variable is quantified out at the
//!   first conjunct after which no remaining conjunct mentions it (graph
//!   bits after `T_G`, Büchi bits after `T_B`), so the full
//!   `S ∧ T_G ∧ T_B` conjunction is never materialized.
//! * **Frontier ("onion ring") fixpoints.** Forward reachability and the
//!   inner `E[Z U T]` least fixpoints only expand the newly discovered
//!   ring each iteration, sound because image/pre-image distribute over
//!   union.
//!
//! Both backends decide the same question and the test suite cross-checks
//! them (see `certkit` for the differential harness). The symbolic
//! backend returns a yes/no verdict; for counterexample lassos use the
//! explicit checker.

use crate::{Buchi, Justice, Ltl};
use autokit::LabelGraph;
use bdd::{BddManager, Ref};
use std::collections::HashMap;

/// Variable layout of the current/next state bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarOrder {
    /// Current/next pairs adjacent: bit `k` occupies variables `2k`
    /// (current) and `2k+1` (next). The known-good order for transition
    /// relations — a relation relating `x` to `x'` stays linear in the
    /// number of bits instead of exponential.
    #[default]
    Interleaved,
    /// Separate blocks: `[0, n)` current, `[n, 2n)` next — the legacy
    /// layout, kept for differential testing.
    Blocked,
}

/// Tuning knobs for the symbolic backend. The defaults (interleaved
/// order, partitioned relation) are the fast path; the alternatives exist
/// so equivalence with the straightforward encoding stays a testable
/// property rather than folklore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicConfig {
    /// Variable layout.
    pub order: VarOrder,
    /// Keep the graph/Büchi relations partitioned (`true`) or conjoin
    /// them with the validity constraints into one monolithic relation
    /// (`false`).
    pub partitioned: bool,
}

impl Default for SymbolicConfig {
    fn default() -> Self {
        SymbolicConfig {
            order: VarOrder::Interleaved,
            partitioned: true,
        }
    }
}

/// Statistics from a symbolic check, for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SymbolicStats {
    /// Binary state variables per block (current/next).
    pub state_bits: u32,
    /// Live BDD nodes when the check finished.
    pub bdd_nodes: usize,
    /// High-water mark of the BDD node store.
    pub peak_nodes: usize,
    /// Outer Emerson–Lei iterations until fixpoint.
    pub el_iterations: usize,
    /// Frontier expansions ("onion rings") of forward reachability —
    /// equals the eccentricity of the initial states within the
    /// reachable product.
    pub reach_rings: usize,
    /// Probes of the BDD manager's hot operation caches.
    pub cache_lookups: u64,
    /// Probes that found their result memoized.
    pub cache_hits: u64,
}

/// Symbolic analogue of [`crate::check_graph_fair`]: returns `true` iff
/// every justice-fair infinite path of `graph` satisfies `phi`.
pub fn check_graph_fair_symbolic(graph: &LabelGraph, phi: &Ltl, justice: &[Justice]) -> bool {
    check_with_stats(graph, phi, justice).0
}

/// [`check_graph_fair_symbolic`] with statistics, under the default
/// configuration.
pub fn check_with_stats(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
) -> (bool, SymbolicStats) {
    check_with_config(graph, phi, justice, SymbolicConfig::default())
}

/// Bit positions of one product component within the state word.
#[derive(Debug, Clone, Copy)]
struct Layout {
    order: VarOrder,
    state_bits: u32,
    gbits: u32,
    bbits: u32,
    /// Graph bits occupy the low (root-near) positions when the graph
    /// component is the larger one.
    graph_first: bool,
}

impl Layout {
    fn new(order: VarOrder, ng: usize, nb: usize) -> Self {
        let gbits = bits_for(ng);
        let bbits = bits_for(nb);
        Layout {
            order,
            state_bits: gbits + bbits,
            gbits,
            bbits,
            graph_first: ng >= nb,
        }
    }

    /// Current-block variable of global state bit `k`.
    fn cur_var(&self, k: u32) -> u32 {
        match self.order {
            VarOrder::Interleaved => 2 * k,
            VarOrder::Blocked => k,
        }
    }

    /// Next-block variable of global state bit `k`.
    fn next_var(&self, k: u32) -> u32 {
        match self.order {
            VarOrder::Interleaved => 2 * k + 1,
            VarOrder::Blocked => k + self.state_bits,
        }
    }

    /// `rename_shift` offset taking a current-block function to the next
    /// block.
    fn shift(&self) -> i64 {
        match self.order {
            VarOrder::Interleaved => 1,
            VarOrder::Blocked => i64::from(self.state_bits),
        }
    }

    /// Global state-bit position of graph bit `i`.
    fn graph_bit(&self, i: u32) -> u32 {
        if self.graph_first {
            i
        } else {
            self.bbits + i
        }
    }

    /// Global state-bit position of Büchi bit `i`.
    fn buchi_bit(&self, i: u32) -> u32 {
        if self.graph_first {
            self.gbits + i
        } else {
            i
        }
    }

    /// Literals (sorted by variable) encoding `value` over the graph
    /// bits of the chosen block.
    fn graph_lits(&self, value: u32, next: bool) -> Vec<(u32, bool)> {
        self.lits(value, self.gbits, next, |s, i| s.graph_bit(i))
    }

    /// Literals (sorted by variable) encoding `value` over the Büchi
    /// bits of the chosen block.
    fn buchi_lits(&self, value: u32, next: bool) -> Vec<(u32, bool)> {
        self.lits(value, self.bbits, next, |s, i| s.buchi_bit(i))
    }

    fn lits(
        &self,
        value: u32,
        bits: u32,
        next: bool,
        pos: impl Fn(&Self, u32) -> u32,
    ) -> Vec<(u32, bool)> {
        let mut lits: Vec<(u32, bool)> = (0..bits)
            .map(|i| {
                let k = pos(self, i);
                let v = if next {
                    self.next_var(k)
                } else {
                    self.cur_var(k)
                };
                (v, value & (1 << i) != 0)
            })
            .collect();
        lits.sort_unstable_by_key(|&(v, _)| v);
        lits
    }

    /// The chosen block's variables for the graph bits.
    fn graph_vars(&self, next: bool) -> Vec<u32> {
        (0..self.gbits)
            .map(|i| {
                let k = self.graph_bit(i);
                if next {
                    self.next_var(k)
                } else {
                    self.cur_var(k)
                }
            })
            .collect()
    }

    /// The chosen block's variables for the Büchi bits.
    fn buchi_vars(&self, next: bool) -> Vec<u32> {
        (0..self.bbits)
            .map(|i| {
                let k = self.buchi_bit(i);
                if next {
                    self.next_var(k)
                } else {
                    self.cur_var(k)
                }
            })
            .collect()
    }
}

/// The transition structure, either partitioned or monolithic.
struct Relation {
    /// Monolithic `T_G ∧ T_B ∧ valid ∧ valid'` when configured;
    /// otherwise the partition below is used directly.
    mono: Option<Ref>,
    t_graph: Ref,
    t_buchi: Ref,
    valid: Ref,
    g_cur: Vec<u32>,
    g_next: Vec<u32>,
    b_cur: Vec<u32>,
    b_next: Vec<u32>,
    all_cur: Vec<u32>,
    all_next: Vec<u32>,
    shift: i64,
}

impl Relation {
    /// Successors of `s` (image), for `s ⊆ valid`. With the partition,
    /// graph bits are quantified out at `T_G` and Büchi bits at `T_B` —
    /// the early-quantification schedule; the conjunction
    /// `s ∧ T_G ∧ T_B` is never built.
    fn image(&self, m: &mut BddManager, s: Ref) -> Ref {
        if let Some(trans) = self.mono {
            let step = m.and_exists(s, trans, &self.all_cur);
            m.rename_shift(step, -self.shift)
        } else {
            let a = m.and_exists(s, self.t_graph, &self.g_cur);
            let b = m.and_exists(a, self.t_buchi, &self.b_cur);
            let img = m.rename_shift(b, -self.shift);
            m.and(img, self.valid)
        }
    }

    /// Predecessors of `s` (pre-image / EX), for `s ⊆ valid`.
    fn pre(&self, m: &mut BddManager, s: Ref) -> Ref {
        let s_next = m.rename_shift(s, self.shift);
        if let Some(trans) = self.mono {
            m.and_exists(trans, s_next, &self.all_next)
        } else {
            let a = m.and_exists(s_next, self.t_graph, &self.g_next);
            let b = m.and_exists(a, self.t_buchi, &self.b_next);
            m.and(b, self.valid)
        }
    }

    /// `E[Z U T]` as a frontier-based backward least fixpoint: each
    /// round only the newest ring is fed to the pre-image (pre
    /// distributes over union, so expanding rings is equivalent to
    /// expanding the whole set).
    fn eu(&self, m: &mut BddManager, z: Ref, t: Ref) -> Ref {
        let mut y = t;
        let mut frontier = t;
        let fals = m.constant(false);
        while frontier != fals {
            let pre = self.pre(m, frontier);
            let step = m.and(pre, z);
            let ny = m.not(y);
            frontier = m.and(step, ny);
            y = m.or(y, frontier);
        }
        y
    }
}

/// [`check_graph_fair_symbolic`] with statistics, under an explicit
/// [`SymbolicConfig`]. Every configuration decides the same property;
/// the proptests below pin the equivalences.
pub fn check_with_config(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
    config: SymbolicConfig,
) -> (bool, SymbolicStats) {
    let neg = Ltl::not(phi.clone());
    let buchi = Buchi::from_ltl(&neg);
    let ng = graph.num_nodes();
    let nb = buchi.num_states();
    if ng == 0 || nb == 0 || graph.initial.is_empty() {
        return (true, SymbolicStats::default());
    }

    let layout = Layout::new(config.order, ng, nb);
    let mut m = BddManager::new(2 * layout.state_bits);

    // ---- Valid state space -------------------------------------------
    // A product state (g, b) is valid iff b's literal constraints match
    // g's label. Graph nodes are grouped by label so each distinct
    // label's matching-Büchi disjunction is built once; groups use
    // first-seen order so the construction is deterministic.
    let mut label_order: Vec<(autokit::PropSet, autokit::ActSet)> = Vec::new();
    let mut label_groups: HashMap<(autokit::PropSet, autokit::ActSet), Vec<u32>> = HashMap::new();
    for (g, &label) in graph.labels.iter().enumerate() {
        label_groups
            .entry(label)
            .or_insert_with(|| {
                label_order.push(label);
                Vec::new()
            })
            .push(g as u32);
    }
    let mut valid_parts = Vec::with_capacity(label_order.len());
    for label in &label_order {
        let members = &label_groups[label];
        let matching: Vec<Ref> = buchi
            .states()
            .iter()
            .enumerate()
            .filter(|(_, st)| st.matches(label.0, label.1))
            .map(|(b, _)| {
                let lits = layout.buchi_lits(b as u32, false);
                m.cube(&lits)
            })
            .collect();
        let bs = m.or_all(matching);
        let gs: Vec<Ref> = members
            .iter()
            .map(|&g| {
                let lits = layout.graph_lits(g, false);
                m.cube(&lits)
            })
            .collect();
        let gs = m.or_all(gs);
        valid_parts.push(m.and(gs, bs));
    }
    let valid = m.or_all(valid_parts);

    // ---- Component transition relations ------------------------------
    // Built per successor set, not per edge: sources sharing a successor
    // set contribute one (⋁ sources) ∧ (⋁ targets') conjunct.
    let t_graph = {
        let groups = group_by_succs(ng, |g| graph.succs[g].iter().map(|&s| s as u32));
        build_component(
            &mut m,
            &groups,
            |layout, v, next| layout.graph_lits(v, next),
            &layout,
        )
    };
    let t_buchi = {
        let groups = group_by_succs(nb, |b| buchi.states()[b].succs.iter().map(|&s| s as u32));
        build_component(
            &mut m,
            &groups,
            |layout, v, next| layout.buchi_lits(v, next),
            &layout,
        )
    };

    let relation = {
        let g_cur = layout.graph_vars(false);
        let g_next = layout.graph_vars(true);
        let b_cur = layout.buchi_vars(false);
        let b_next = layout.buchi_vars(true);
        let all_cur: Vec<u32> = g_cur.iter().chain(&b_cur).copied().collect();
        let all_next: Vec<u32> = g_next.iter().chain(&b_next).copied().collect();
        let mono = if config.partitioned {
            None
        } else {
            let valid_next = m.rename_shift(valid, layout.shift());
            let gb = m.and(t_graph, t_buchi);
            let gbv = m.and(gb, valid_next);
            Some(m.and(gbv, valid))
        };
        Relation {
            mono,
            t_graph,
            t_buchi,
            valid,
            g_cur,
            g_next,
            b_cur,
            b_next,
            all_cur,
            all_next,
            shift: layout.shift(),
        }
    };

    // ---- Initial states ----------------------------------------------
    let init_parts: Vec<Ref> = graph
        .initial
        .iter()
        .flat_map(|&g| buchi.initial().iter().map(move |&b| (g, b)))
        .filter(|&(g, b)| {
            let (props, acts) = graph.labels[g];
            buchi.states()[b].matches(props, acts)
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|(g, b)| {
            let mut lits = layout.graph_lits(g as u32, false);
            lits.extend(layout.buchi_lits(b as u32, false));
            lits.sort_unstable_by_key(|&(v, _)| v);
            m.cube(&lits)
        })
        .collect();
    let init = m.or_all(init_parts);

    // ---- Forward reachability (onion rings) --------------------------
    let fals = m.constant(false);
    let mut reach = init;
    let mut frontier = init;
    let mut reach_rings = 0;
    while frontier != fals {
        reach_rings += 1;
        let img = relation.image(&mut m, frontier);
        let nr = m.not(reach);
        frontier = m.and(img, nr);
        reach = m.or(reach, frontier);
    }

    // ---- Acceptance families -----------------------------------------
    // Büchi acceptance plus one family per justice condition, all over
    // the current block.
    let mut families: Vec<Ref> = Vec::new();
    {
        let acc: Vec<Ref> = buchi
            .states()
            .iter()
            .enumerate()
            .filter(|(_, st)| st.accepting)
            .map(|(b, _)| {
                let lits = layout.buchi_lits(b as u32, false);
                m.cube(&lits)
            })
            .collect();
        let acc = m.or_all(acc);
        families.push(acc);
    }
    for j in justice {
        let sat: Vec<Ref> = label_order
            .iter()
            .filter(|&&(props, acts)| j.holds(props, acts))
            .flat_map(|label| label_groups[label].iter().copied())
            .collect::<Vec<u32>>()
            .into_iter()
            .map(|g| {
                let lits = layout.graph_lits(g, false);
                m.cube(&lits)
            })
            .collect();
        let sat = m.or_all(sat);
        families.push(sat);
    }

    // ---- Emerson–Lei fair-cycle fixpoint -----------------------------
    //   Z = ⋀_i EX E[Z U (Z ∧ F_i)]
    // seeded with the reachable set instead of all valid states: reach
    // is forward-closed, so every fair cycle reachable from an initial
    // state lies entirely within it — the gfp restricted to reach finds
    // exactly the reachable fair-cycle states.
    let mut z = reach;
    let mut el_iterations = 0;
    loop {
        el_iterations += 1;
        let mut znew = z;
        for &f in &families {
            let zf = m.and(znew, f);
            let reach_f = relation.eu(&mut m, znew, zf);
            let pre = relation.pre(&mut m, reach_f);
            znew = m.and(znew, pre);
        }
        if znew == z {
            break;
        }
        z = znew;
    }

    // A fair cycle is reachable iff Z (⊆ reach) is non-empty.
    let holds = !m.satisfiable(z);
    let stats = SymbolicStats {
        state_bits: layout.state_bits,
        bdd_nodes: m.num_nodes(),
        peak_nodes: m.peak_nodes(),
        el_iterations,
        reach_rings,
        cache_lookups: m.cache_lookups(),
        cache_hits: m.cache_hits(),
    };
    count_symbolic_check(&stats);
    (holds, stats)
}

/// Per-check observability counters (no-ops unless `obskit` is enabled).
fn count_symbolic_check(stats: &SymbolicStats) {
    if !obskit::enabled() {
        return;
    }
    obskit::counter_add("symbolic.checks", 1);
    obskit::counter_add("symbolic.cache_lookups", stats.cache_lookups);
    obskit::counter_add("symbolic.cache_hits", stats.cache_hits);
    obskit::counter_add("symbolic.el_iterations", stats.el_iterations as u64);
    obskit::observe("symbolic.peak_nodes", stats.peak_nodes as u64);
    obskit::observe("symbolic.reach_rings", stats.reach_rings as u64);
}

/// Groups states `0..n` by successor set (sorted, deduplicated), in
/// deterministic first-seen order. Returns `(targets, sources)` pairs.
fn group_by_succs<I: Iterator<Item = u32>>(
    n: usize,
    succs_of: impl Fn(usize) -> I,
) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut groups: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    for s in 0..n {
        let mut targets: Vec<u32> = succs_of(s).collect();
        targets.sort_unstable();
        targets.dedup();
        if let Some(&i) = index.get(&targets) {
            groups[i].1.push(s as u32);
        } else {
            index.insert(targets.clone(), groups.len());
            groups.push((targets, vec![s as u32]));
        }
    }
    groups
}

/// Builds one component's transition relation from its successor-set
/// groups: `⋁_groups (⋁ sources) ∧ (⋁ targets')`, combined balanced.
fn build_component(
    m: &mut BddManager,
    groups: &[(Vec<u32>, Vec<u32>)],
    lits: impl Fn(&Layout, u32, bool) -> Vec<(u32, bool)>,
    layout: &Layout,
) -> Ref {
    let parts: Vec<Ref> = groups
        .iter()
        .map(|(targets, sources)| {
            let tgt: Vec<Ref> = targets
                .iter()
                .map(|&t| {
                    let l = lits(layout, t, true);
                    m.cube(&l)
                })
                .collect();
            let tgt = m.or_all(tgt);
            let src: Vec<Ref> = sources
                .iter()
                .map(|&s| {
                    let l = lits(layout, s, false);
                    m.cube(&l)
                })
                .collect();
            let src = m.or_all(src);
            m.and(src, tgt)
        })
        .collect();
    m.or_all(parts)
}

fn bits_for(n: usize) -> u32 {
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_graph_fair, parse, Verdict};
    use autokit::{ActSet, ProductState, PropSet, Vocab};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    fn lasso_graph(prefix: &[(PropSet, ActSet)], cycle: &[(PropSet, ActSet)]) -> LabelGraph {
        let n = prefix.len() + cycle.len();
        let mut labels = Vec::new();
        let mut succs = vec![Vec::new(); n];
        for (i, &l) in prefix.iter().chain(cycle.iter()).enumerate() {
            labels.push(l);
            if i + 1 < n {
                succs[i].push(i + 1);
            } else {
                succs[i].push(prefix.len());
            }
        }
        LabelGraph {
            labels,
            origin: vec![ProductState { model: 0, ctrl: 0 }; n],
            succs,
            initial: vec![0],
        }
    }

    fn decode(word: &[u8], v: &Vocab) -> Vec<(PropSet, ActSet)> {
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        word.iter()
            .map(|&bits| {
                let mut props = PropSet::empty();
                if bits & 1 != 0 {
                    props.insert(a);
                }
                if bits & 2 != 0 {
                    props.insert(b);
                }
                let mut acts = ActSet::empty();
                if bits & 4 != 0 {
                    acts.insert(s);
                }
                (props, acts)
            })
            .collect()
    }

    #[test]
    fn agrees_on_simple_cases() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let word = vec![(PropSet::singleton(a), ActSet::empty())];
        let graph = lasso_graph(&[], &word);
        for spec in ["G a", "F !a", "a U b", "X a"] {
            let phi = parse(spec, &v).unwrap();
            let explicit = check_graph_fair(&graph, &phi, &[]).holds();
            let symbolic = check_graph_fair_symbolic(&graph, &phi, &[]);
            assert_eq!(explicit, symbolic, "{spec}");
        }
    }

    #[test]
    fn agrees_under_justice() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        // Two-state graph: {a} ↔ {} with self-loops; an unfair path may
        // stay in {} forever.
        let la = (PropSet::singleton(a), ActSet::empty());
        let l0 = (PropSet::empty(), ActSet::empty());
        let graph = LabelGraph {
            labels: vec![la, l0],
            origin: vec![ProductState { model: 0, ctrl: 0 }; 2],
            succs: vec![vec![0, 1], vec![0, 1]],
            initial: vec![1],
        };
        let phi = parse("G F a", &v).unwrap();
        let justice = [Justice::new("a io", parse("a", &v).unwrap()).unwrap()];
        // Without justice the spec fails (stay in {} forever)...
        assert!(!check_graph_fair(&graph, &phi, &[]).holds());
        assert!(!check_graph_fair_symbolic(&graph, &phi, &[]));
        // ...and with justice it holds, in both backends.
        assert!(check_graph_fair(&graph, &phi, &justice).holds());
        assert!(check_graph_fair_symbolic(&graph, &phi, &justice));
    }

    #[test]
    fn stats_are_populated() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let graph = lasso_graph(&[], &[(PropSet::singleton(a), ActSet::empty())]);
        let phi = parse("G a", &v).unwrap();
        let (holds, stats) = check_with_stats(&graph, &phi, &[]);
        assert!(holds);
        assert!(stats.state_bits >= 2);
        assert!(stats.bdd_nodes > 2);
        assert!(stats.peak_nodes >= stats.bdd_nodes);
        assert!(stats.el_iterations >= 1);
        assert!(stats.reach_rings >= 1);
        assert!(stats.cache_lookups > 0);
        assert!(stats.cache_hits <= stats.cache_lookups);
    }

    fn all_configs() -> [SymbolicConfig; 4] {
        [
            SymbolicConfig {
                order: VarOrder::Interleaved,
                partitioned: true,
            },
            SymbolicConfig {
                order: VarOrder::Interleaved,
                partitioned: false,
            },
            SymbolicConfig {
                order: VarOrder::Blocked,
                partitioned: true,
            },
            SymbolicConfig {
                order: VarOrder::Blocked,
                partitioned: false,
            },
        ]
    }

    #[test]
    fn configs_agree_on_simple_cases() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let word = vec![(PropSet::singleton(a), ActSet::empty())];
        let graph = lasso_graph(&[], &word);
        for spec in ["G a", "F !a", "a U b", "X a", "G F a"] {
            let phi = parse(spec, &v).unwrap();
            let expected = check_graph_fair(&graph, &phi, &[]).holds();
            for config in all_configs() {
                let (got, _) = check_with_config(&graph, &phi, &[], config);
                assert_eq!(expected, got, "{spec} under {config:?}");
            }
        }
    }

    fn arb_ltl() -> impl Strategy<Value = Ltl> {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
            Just(Ltl::act(s)),
        ];
        leaf.prop_recursive(3, 20, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    /// Random branching graphs (not just lassos). `max_nodes`/`max_edges`
    /// scale the instance size — the cross-backend differential runs on
    /// larger graphs than the config-equivalence tests.
    fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = LabelGraph> {
        (
            proptest::collection::vec(0u8..8, 1..max_nodes),
            proptest::collection::vec((0usize..max_nodes, 0usize..max_nodes), 1..max_edges),
        )
            .prop_map(|(labels_raw, edges)| {
                let v = vocab();
                let labels = decode(&labels_raw, &v);
                let n = labels.len();
                let mut succs = vec![Vec::new(); n];
                for (a, b) in edges {
                    let (a, b) = (a % n, b % n);
                    if !succs[a].contains(&b) {
                        succs[a].push(b);
                    }
                }
                // Ensure totality so both backends see infinite paths.
                for (i, s) in succs.iter_mut().enumerate() {
                    if s.is_empty() {
                        s.push(i);
                    }
                }
                LabelGraph {
                    origin: vec![ProductState { model: 0, ctrl: 0 }; n],
                    labels,
                    succs,
                    initial: vec![0],
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The explicit and symbolic backends agree on random graphs and
        /// formulas, with and without a justice assumption — on graphs
        /// up to 12 nodes / 40 edge draws (larger than the pre-partition
        /// generator's 6/12).
        #[test]
        fn backends_agree(graph in arb_graph(12, 40), phi in arb_ltl()) {
            let v = vocab();
            let explicit = check_graph_fair(&graph, &phi, &[]).holds();
            let symbolic = check_graph_fair_symbolic(&graph, &phi, &[]);
            prop_assert_eq!(explicit, symbolic, "no justice: {:?}", phi);

            let justice = [Justice::new("a io", parse("a", &v).unwrap()).unwrap()];
            let explicit = matches!(
                check_graph_fair(&graph, &phi, &justice),
                Verdict::Holds
            );
            let symbolic = check_graph_fair_symbolic(&graph, &phi, &justice);
            prop_assert_eq!(explicit, symbolic, "with justice: {:?}", phi);
        }

        /// The partitioned relation decides exactly what the monolithic
        /// conjunction decides, in both variable orders.
        #[test]
        fn partitioned_matches_monolithic(graph in arb_graph(8, 24), phi in arb_ltl()) {
            let v = vocab();
            let justice = [Justice::new("a io", parse("a", &v).unwrap()).unwrap()];
            for order in [VarOrder::Interleaved, VarOrder::Blocked] {
                let part = check_with_config(
                    &graph, &phi, &justice,
                    SymbolicConfig { order, partitioned: true },
                ).0;
                let mono = check_with_config(
                    &graph, &phi, &justice,
                    SymbolicConfig { order, partitioned: false },
                ).0;
                prop_assert_eq!(part, mono, "order {:?}: {:?}", order, phi);
            }
        }

        /// Interleaved and blocked variable orders give the same verdict
        /// (the order changes BDD sizes, never semantics).
        #[test]
        fn interleaved_matches_blocked(graph in arb_graph(8, 24), phi in arb_ltl()) {
            let inter = check_with_config(
                &graph, &phi, &[],
                SymbolicConfig { order: VarOrder::Interleaved, partitioned: true },
            ).0;
            let blocked = check_with_config(
                &graph, &phi, &[],
                SymbolicConfig { order: VarOrder::Blocked, partitioned: true },
            ).0;
            prop_assert_eq!(inter, blocked, "{:?}", phi);
        }
    }
}
