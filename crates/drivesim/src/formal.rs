//! The formal-verification side of each scenario: its world model and
//! its justice (weak-fairness) assumptions.
//!
//! This is the single source of truth for the scenario → model and
//! scenario → justice mappings. `dpo-af`'s feedback stage, `speclint`'s
//! presets and `certkit`'s certification gate all consume it, so the
//! model a controller is verified against is — by construction — the
//! model its verdicts are certified against.

use crate::ScenarioKind;
use autokit::presets::DrivingDomain;
use autokit::WorldModel;
use ltlcheck::{Justice, Ltl};

/// The scenario's world model (paper Figures 5, 6, 15, 16, 17).
pub fn scenario_model(d: &DrivingDomain, kind: ScenarioKind) -> WorldModel {
    match kind {
        ScenarioKind::TrafficLight => d.traffic_light_model(),
        ScenarioKind::LeftTurnSignal => d.left_turn_light_model(),
        ScenarioKind::WideMedian => d.wide_median_model(),
        ScenarioKind::TwoWayStop => d.two_way_stop_model(),
        ScenarioKind::Roundabout => d.roundabout_model(),
    }
}

/// The scenario's justice assumptions: infinitely often, the intersection
/// is clear (and its light, if any, is green) — i.e. the environment
/// eventually gives the vehicle a chance to move.
///
/// Mirrors NuSMV `JUSTICE` declarations; without them the liveness rules
/// Φ₇/Φ₁₀/Φ₁₃ are unsatisfiable against a fully adversarial environment.
// ALLOW: the justice conditions are propositional by construction.
#[allow(clippy::expect_used)]
pub fn scenario_justice(d: &DrivingDomain, kind: ScenarioKind) -> Vec<Justice> {
    let clear_of = |props: &[autokit::PropId]| -> Ltl {
        Ltl::all(props.iter().map(|&p| Ltl::not(Ltl::prop(p))))
    };
    let condition = match kind {
        ScenarioKind::TrafficLight => Ltl::and(
            Ltl::prop(d.green_tl),
            clear_of(&[d.car_left, d.opposite_car, d.ped_right, d.ped_front]),
        ),
        ScenarioKind::LeftTurnSignal => Ltl::and(
            Ltl::prop(d.green_ll),
            clear_of(&[d.opposite_car, d.ped_front]),
        ),
        ScenarioKind::WideMedian => clear_of(&[d.car_left, d.car_right]),
        ScenarioKind::TwoWayStop => clear_of(&[d.car_left, d.car_right, d.ped_front]),
        ScenarioKind::Roundabout => clear_of(&[d.car_left, d.ped_left, d.ped_right]),
    };
    vec![Justice::new("way eventually clears", condition).expect("propositional by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario's justice condition is realizable in its own model:
    /// some state satisfies it, so fairness never vacuously discharges
    /// the whole rule book.
    #[test]
    fn justice_realizable_in_every_scenario() {
        let d = DrivingDomain::new();
        for kind in ScenarioKind::all() {
            let model = scenario_model(&d, kind);
            let justice = scenario_justice(&d, kind);
            let witness = model.states().any(|s| {
                justice
                    .iter()
                    .all(|j| j.holds(model.label(s), autokit::ActSet::empty()))
            });
            assert!(witness, "justice unrealizable in {kind:?}");
        }
    }
}
