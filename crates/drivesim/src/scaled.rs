//! Scaled-up conservative world models for backend benchmarking.
//!
//! The paper's scenario models top out at a few dozen states — small
//! enough that the explicit checker wins on constant factors (ablation
//! A6). These builders parameterize the "conservative perspective"
//! (Algorithm 1 without pruning, every transition allowed) by the number
//! of distinct environment labels, producing traffic worlds 10–100×
//! larger whose products stress both verification backends and expose
//! the explicit-vs-symbolic crossover (`backend_compare --sweep`).
//!
//! The label set is nested: `scaled_conservative_model(d, 32)` is
//! exactly the A6 dense model (all masks over its five propositions),
//! and larger budgets extend the same enumeration over the rest of the
//! driving vocabulary, so every sweep point is a superset of the last.

use autokit::presets::DrivingDomain;
use autokit::{PropSet, WorldModel, WorldModelBuilder};

/// The fixed proposition order scaling enumerates over. The first five
/// match the A6 dense-model benchmark bit-for-bit; the remainder extend
/// the environment with the rest of the driving vocabulary.
fn scaling_props(d: &DrivingDomain) -> [autokit::PropId; 10] {
    [
        d.green_tl,
        d.car_left,
        d.opposite_car,
        d.ped_right,
        d.ped_front,
        d.car_right,
        d.ped_left,
        d.stop_sign,
        d.green_ll,
        d.flashing_ll,
    ]
}

/// The first `labels` environment labels of the nested enumeration.
///
/// # Panics
///
/// Panics if `labels` exceeds the `2^10` distinct labels the driving
/// vocabulary supports.
pub fn scaled_labels(d: &DrivingDomain, labels: usize) -> Vec<PropSet> {
    let props = scaling_props(d);
    assert!(
        labels <= 1 << props.len(),
        "at most {} distinct labels",
        1usize << props.len()
    );
    (0..labels as u32)
        .map(|mask| {
            let mut l = PropSet::empty();
            for (i, &p) in props.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    l.insert(p);
                }
            }
            l
        })
        .collect()
}

/// A conservative (fully connected, unpruned) traffic world over the
/// first `labels` environment labels. `labels = 32` reproduces the A6
/// dense model exactly; the product's label graph grows quadratically in
/// `labels`, which is what makes the sweep's crossover visible.
pub fn scaled_conservative_model(d: &DrivingDomain, labels: usize) -> WorldModel {
    WorldModelBuilder::new(&d.vocab)
        .name(format!("conservative traffic ({labels} labels)"))
        .restrict_labels(scaled_labels(d, labels))
        .allow_transitions(|_, _| true)
        .conservative()
        .build()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // ALLOW: test-only panics are the assertion mechanism.
    use super::*;

    #[test]
    fn labels_are_nested_and_distinct() {
        let d = DrivingDomain::new();
        let small = scaled_labels(&d, 32);
        let big = scaled_labels(&d, 128);
        assert_eq!(&big[..32], &small[..]);
        let mut dedup = big.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), big.len());
    }

    #[test]
    fn thirty_two_labels_match_the_a6_dense_model() {
        // The A6 benchmark enumerates all masks over these five props;
        // the nested enumeration must reproduce that set exactly.
        let d = DrivingDomain::new();
        let a6_props = [
            d.green_tl,
            d.car_left,
            d.opposite_car,
            d.ped_right,
            d.ped_front,
        ];
        let a6: Vec<PropSet> = (0..32u32)
            .map(|mask| {
                let mut l = PropSet::empty();
                for (i, &p) in a6_props.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        l.insert(p);
                    }
                }
                l
            })
            .collect();
        assert_eq!(scaled_labels(&d, 32), a6);
    }

    #[test]
    fn model_is_conservative_and_total() {
        let d = DrivingDomain::new();
        let m = scaled_conservative_model(&d, 48);
        assert_eq!(m.num_states(), 48);
        for s in m.states() {
            assert_eq!(m.successors(s).len(), 48);
        }
    }

    /// Both verification backends agree on a scaled model one step past
    /// the A6 size (a superset of its label space).
    #[test]
    fn backends_agree_on_a_scaled_model() {
        let d = DrivingDomain::new();
        let lex = glm2fsa::Lexicon::driving(&d);
        let ctrl = glm2fsa::synthesize(
            "turn right",
            &["If no car from the left and no pedestrian at your right, turn right."],
            &lex,
            glm2fsa::FsaOptions::default(),
        )
        .unwrap();
        let ctrl = glm2fsa::with_default_action(&ctrl, d.stop);
        let model = scaled_conservative_model(&d, 40);
        let graph =
            autokit::Product::build(&model, &ctrl).label_graph(autokit::DeadlockPolicy::Stutter);
        for spec in ltlcheck::specs::driving_specs(&d).iter().take(4) {
            let explicit = ltlcheck::check_graph_fair(&graph, &spec.formula, &[]).holds();
            let symbolic =
                ltlcheck::symbolic::check_graph_fair_symbolic(&graph, &spec.formula, &[]);
            assert_eq!(explicit, symbolic, "{}", spec.name);
        }
    }
}
