//! # drivesim — a discrete-time autonomous-driving scenario simulator
//!
//! The paper's **empirical evaluation** path (Section 4.2) runs
//! controllers in the Carla simulator and collects operation traces
//! `(2^P × 2^{P_A})^N` — sequences of perceived propositions and emitted
//! actions — which are then checked against the specifications to obtain
//! per-specification satisfaction rates `P_Φ` (its Figure 11).
//!
//! This crate is the reproduction's Carla stand-in. It simulates the same
//! five road scenarios the paper models (traffic-light intersection,
//! protected left turn, wide median, two-way stop, roundabout) as
//! stochastic processes over the `autokit` driving vocabulary:
//!
//! * traffic lights advance through their phases on configurable timers,
//! * cars and pedestrians arrive and depart as Bernoulli events,
//! * the controller observes the scene each tick, takes the transitions
//!   its guards enable, and its action is recorded alongside the
//!   observation — the grounding function `G(C, S)` of Equation 2.
//!
//! The returned [`autokit::Trace`]s plug directly into
//! `ltlcheck::finite::satisfaction_rate`.
//!
//! ## Example
//!
//! ```
//! use autokit::presets::DrivingDomain;
//! use drivesim::{ground, Scenario, ScenarioConfig, ScenarioKind};
//! use glm2fsa::{synthesize, FsaOptions, Lexicon};
//! use rand::SeedableRng;
//!
//! let d = DrivingDomain::new();
//! let lex = Lexicon::driving(&d);
//! let ctrl = synthesize(
//!     "turn right",
//!     &["If no car from the left and no pedestrian at your right, turn right."],
//!     &lex,
//!     FsaOptions::default(),
//! )?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
//! let trace = ground(&ctrl, &mut scenario, &d, &mut rng, 40);
//! assert_eq!(trace.len(), 40);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formal;
pub mod scaled;

mod incident;
mod route;
mod scenario;
mod sim;

pub use incident::{detect_incidents, detect_incidents_for, Incident, IncidentKind};
pub use route::{drive_route, MissionOutcome, Route, RouteLeg};
pub use scenario::{Scenario, ScenarioConfig, ScenarioKind};
pub use sim::{ground, ground_many, ExecutionPolicy};
