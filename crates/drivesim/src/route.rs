//! Multi-leg routes: drive through a sequence of scenarios, one
//! synthesized controller per leg.
//!
//! The paper's Section 5.3 argues verified controllers transfer to
//! real operation; a route is the operational composition of that claim —
//! an actual drive is a chain of intersections, stops and merges, each
//! handled by the controller synthesized for that situation. A leg
//! completes when the controller performs the leg's maneuver; a leg that
//! never completes within its tick budget stalls the mission.

use crate::incident::{detect_incidents_for, Incident};
use crate::{Scenario, ScenarioConfig, ScenarioKind};
use autokit::{presets::DrivingDomain, ActSet, Controller, Step, Trace};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One leg of a route: a scenario plus the action that completes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteLeg {
    /// Where this leg takes place.
    pub scenario: ScenarioKind,
    /// Performing any action in this set completes the leg (e.g.
    /// `turn right` at the first intersection).
    pub completes_on: ActSet,
}

/// A planned route.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Route {
    /// The legs, in driving order.
    pub legs: Vec<RouteLeg>,
}

/// The outcome of driving a route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionOutcome {
    /// Legs completed before the mission ended or stalled.
    pub legs_completed: usize,
    /// `true` iff every leg completed.
    pub completed: bool,
    /// Incidents across the whole drive, with the leg they occurred on.
    pub incidents: Vec<(usize, Incident)>,
    /// The concatenated observation/action trace.
    pub trace: Trace,
}

/// Drives a route: `controllers[i]` handles `route.legs[i]`.
///
/// Each leg runs in a fresh scenario instance for at most
/// `max_ticks_per_leg` ticks; the leg completes at the first tick whose
/// action intersects `completes_on`. A timed-out leg ends the mission
/// (the vehicle is stuck).
///
/// # Panics
///
/// Panics if `controllers.len() != route.legs.len()`.
pub fn drive_route(
    route: &Route,
    controllers: &[Controller],
    domain: &DrivingDomain,
    config: ScenarioConfig,
    rng: &mut impl Rng,
    max_ticks_per_leg: usize,
) -> MissionOutcome {
    assert_eq!(
        controllers.len(),
        route.legs.len(),
        "one controller per leg required"
    );
    let mut trace = Trace::new();
    let mut incidents = Vec::new();
    let mut legs_completed = 0;

    'legs: for (leg_idx, (leg, ctrl)) in route.legs.iter().zip(controllers).enumerate() {
        let mut scenario = Scenario::new(leg.scenario, config);
        let mut q = ctrl.initial();
        let leg_start = trace.len();
        for _ in 0..max_ticks_per_leg {
            let sigma = scenario.observe(domain);
            let enabled: Vec<_> = ctrl.enabled(q, sigma).collect();
            let (action, next) = match enabled.choose(rng) {
                Some(t) => (t.action, t.to),
                None => (ActSet::empty(), q),
            };
            trace.push(Step::new(sigma, action));
            q = next;
            scenario.advance(rng);
            if !action.is_disjoint(leg.completes_on) {
                // Leg done; attribute this leg's incidents and move on.
                attribute_incidents(
                    &trace,
                    leg_start,
                    leg_idx,
                    leg.scenario,
                    domain,
                    &mut incidents,
                );
                legs_completed += 1;
                continue 'legs;
            }
        }
        // Timed out: stuck on this leg.
        attribute_incidents(
            &trace,
            leg_start,
            leg_idx,
            leg.scenario,
            domain,
            &mut incidents,
        );
        break;
    }

    MissionOutcome {
        legs_completed,
        completed: legs_completed == route.legs.len(),
        incidents,
        trace,
    }
}

fn attribute_incidents(
    trace: &Trace,
    leg_start: usize,
    leg_idx: usize,
    scenario: crate::ScenarioKind,
    domain: &DrivingDomain,
    out: &mut Vec<(usize, Incident)>,
) {
    let leg_trace: Trace = trace.iter().skip(leg_start).copied().collect();
    for incident in detect_incidents_for(&leg_trace, domain, scenario) {
        out.push((
            leg_idx,
            Incident {
                step: leg_start + incident.step,
                kind: incident.kind,
            },
        ));
    }
}

impl Route {
    /// A representative commute: traffic light, stop sign, wide median,
    /// roundabout, protected left turn.
    pub fn commute(d: &DrivingDomain) -> Route {
        Route {
            legs: vec![
                RouteLeg {
                    scenario: ScenarioKind::TrafficLight,
                    completes_on: ActSet::singleton(d.turn_right),
                },
                RouteLeg {
                    scenario: ScenarioKind::TwoWayStop,
                    completes_on: ActSet::singleton(d.go_straight),
                },
                RouteLeg {
                    scenario: ScenarioKind::WideMedian,
                    completes_on: ActSet::singleton(d.go_straight),
                },
                RouteLeg {
                    scenario: ScenarioKind::Roundabout,
                    completes_on: ActSet::singleton(d.turn_right),
                },
                RouteLeg {
                    scenario: ScenarioKind::LeftTurnSignal,
                    completes_on: ActSet::singleton(d.turn_left),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::{ControllerBuilder, Guard};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domain() -> DrivingDomain {
        DrivingDomain::new()
    }

    /// A controller that performs `act` as soon as the way is clear.
    fn eager(d: &DrivingDomain, act: autokit::ActId) -> Controller {
        ControllerBuilder::new("eager", 1)
            .initial(0)
            .transition(
                0,
                Guard::always().forbids(d.car_left).forbids(d.ped_front),
                ActSet::singleton(act),
                0,
            )
            .transition(
                0,
                Guard::always().requires(d.car_left),
                ActSet::singleton(d.stop),
                0,
            )
            .transition(
                0,
                Guard::always().requires(d.ped_front),
                ActSet::singleton(d.stop),
                0,
            )
            .build()
            .unwrap()
    }

    /// A controller that only ever stops.
    fn frozen(d: &DrivingDomain) -> Controller {
        ControllerBuilder::new("frozen", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(d.stop), 0)
            .build()
            .unwrap()
    }

    #[test]
    fn eager_controllers_complete_the_commute() {
        let d = domain();
        let route = Route::commute(&d);
        let controllers: Vec<Controller> = route
            .legs
            .iter()
            .map(|leg| eager(&d, leg.completes_on.iter().next().unwrap()))
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = drive_route(
            &route,
            &controllers,
            &d,
            ScenarioConfig::default(),
            &mut rng,
            60,
        );
        assert!(outcome.completed, "{outcome:?}");
        assert_eq!(outcome.legs_completed, 5);
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn frozen_controller_stalls_the_mission() {
        let d = domain();
        let route = Route::commute(&d);
        let controllers: Vec<Controller> = route.legs.iter().map(|_| frozen(&d)).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = drive_route(
            &route,
            &controllers,
            &d,
            ScenarioConfig::default(),
            &mut rng,
            20,
        );
        assert_eq!(outcome.legs_completed, 0);
        assert!(!outcome.completed);
        // The trace covers exactly the stalled first leg.
        assert_eq!(outcome.trace.len(), 20);
    }

    #[test]
    fn incidents_are_attributed_to_their_leg() {
        let d = domain();
        // A reckless second leg: turns right unconditionally.
        let route = Route {
            legs: vec![
                RouteLeg {
                    scenario: ScenarioKind::WideMedian,
                    completes_on: ActSet::singleton(d.go_straight),
                },
                RouteLeg {
                    scenario: ScenarioKind::TrafficLight,
                    // Completion requires going straight, which the
                    // reckless controller never does — it spends the whole
                    // tick budget turning right into arriving hazards.
                    completes_on: ActSet::singleton(d.go_straight),
                },
            ],
        };
        let reckless = ControllerBuilder::new("reckless", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(d.turn_right), 0)
            .build()
            .unwrap();
        let go = ControllerBuilder::new("go", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(d.go_straight), 0)
            .build()
            .unwrap();
        // Run many seeds until a hazard coincides with the reckless turn.
        let mut attributed = false;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = drive_route(
                &route,
                &[go.clone(), reckless.clone()],
                &d,
                ScenarioConfig {
                    arrival: 0.9,
                    ..ScenarioConfig::default()
                },
                &mut rng,
                30,
            );
            if let Some(&(leg, inc)) = outcome.incidents.first() {
                assert_eq!(leg, 1, "incident on the reckless leg");
                assert!(inc.step >= 1, "leg 2 starts after leg 1's single tick");
                attributed = true;
                break;
            }
        }
        assert!(attributed, "high arrival rate should produce an incident");
    }

    #[test]
    #[should_panic(expected = "one controller per leg")]
    fn mismatched_controllers_panic() {
        let d = domain();
        let route = Route::commute(&d);
        let mut rng = StdRng::seed_from_u64(0);
        drive_route(&route, &[], &d, ScenarioConfig::default(), &mut rng, 10);
    }
}
