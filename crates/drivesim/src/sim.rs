use crate::Scenario;
use autokit::{presets::DrivingDomain, ActSet, Controller, Step, Trace};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the executor resolves controller non-determinism when several
/// transitions are enabled under one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionPolicy {
    /// Pick uniformly at random among enabled transitions (default; the
    /// paper runs controllers "multiple times" and aggregates).
    #[default]
    UniformRandom,
    /// Always take the first enabled transition in declaration order.
    FirstMatch,
}

/// The grounding function `G(C, S)` of the paper's Section 4.2: operates
/// controller `ctrl` in scenario `scenario` for `steps` ticks and returns
/// the observation/action trace in `(2^P × 2^{P_A})^N`.
///
/// Each tick:
/// 1. the vehicle perceives `σ = scenario.observe()`,
/// 2. the controller takes an enabled transition (resolving
///    non-determinism uniformly at random), emitting its action — or `ε`
///    while staying put if no transition is enabled,
/// 3. `(σ, a)` is recorded and the environment advances.
pub fn ground(
    ctrl: &Controller,
    scenario: &mut Scenario,
    domain: &DrivingDomain,
    rng: &mut impl Rng,
    steps: usize,
) -> Trace {
    ground_with_policy(
        ctrl,
        scenario,
        domain,
        rng,
        steps,
        ExecutionPolicy::default(),
    )
}

/// [`ground`] with an explicit non-determinism policy.
pub fn ground_with_policy(
    ctrl: &Controller,
    scenario: &mut Scenario,
    domain: &DrivingDomain,
    rng: &mut impl Rng,
    steps: usize,
    policy: ExecutionPolicy,
) -> Trace {
    let mut trace = Trace::new();
    let mut q = ctrl.initial();
    let mut epsilon_ticks = 0u64;
    for _ in 0..steps {
        let sigma = scenario.observe(domain);
        let enabled: Vec<_> = ctrl.enabled(q, sigma).collect();
        let (action, next) = match policy {
            ExecutionPolicy::UniformRandom => match enabled.choose(rng) {
                Some(t) => (t.action, t.to),
                None => (ActSet::empty(), q),
            },
            ExecutionPolicy::FirstMatch => match enabled.first() {
                Some(t) => (t.action, t.to),
                None => (ActSet::empty(), q),
            },
        };
        if enabled.is_empty() {
            epsilon_ticks += 1;
        }
        trace.push(Step::new(sigma, action));
        q = next;
        scenario.advance(rng);
    }
    if obskit::enabled() {
        obskit::counter_add("drivesim.episodes", 1);
        obskit::counter_add("drivesim.ticks", steps as u64);
        obskit::counter_add("drivesim.epsilon_ticks", epsilon_ticks);
        obskit::observe("drivesim.episode_ticks", steps as u64);
    }
    trace
}

/// Runs `runs` independent episodes (scenario reset each time) and
/// returns their traces — the sample set over which the paper computes
/// per-specification satisfaction rates.
pub fn ground_many(
    ctrl: &Controller,
    scenario: &mut Scenario,
    domain: &DrivingDomain,
    rng: &mut impl Rng,
    steps: usize,
    runs: usize,
) -> Vec<Trace> {
    let _rollout = obskit::span("drivesim.rollout");
    (0..runs)
        .map(|_| {
            scenario.reset();
            ground(ctrl, scenario, domain, rng, steps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioConfig, ScenarioKind};
    use autokit::{ControllerBuilder, Guard};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domain() -> DrivingDomain {
        DrivingDomain::new()
    }

    /// Stop on red / go on green.
    fn light_follower(d: &DrivingDomain) -> Controller {
        ControllerBuilder::new("follower", 1)
            .initial(0)
            .transition(
                0,
                Guard::always().requires(d.green_tl),
                ActSet::singleton(d.go_straight),
                0,
            )
            .transition(
                0,
                Guard::always().forbids(d.green_tl),
                ActSet::singleton(d.stop),
                0,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn trace_has_requested_length_and_valid_steps() {
        let d = domain();
        let ctrl = light_follower(&d);
        let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let trace = ground(&ctrl, &mut scenario, &d, &mut rng, 60);
        assert_eq!(trace.len(), 60);
        // The follower's action always matches the light.
        for step in &trace {
            if step.props.contains(d.green_tl) {
                assert!(step.acts.contains(d.go_straight));
            } else {
                assert!(step.acts.contains(d.stop));
            }
        }
    }

    #[test]
    fn deadlocked_controller_emits_epsilon() {
        let d = domain();
        // No transitions at all: always ε, never moves.
        let ctrl = ControllerBuilder::new("stuck", 1)
            .initial(0)
            .build()
            .unwrap();
        let mut scenario = Scenario::new(ScenarioKind::WideMedian, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let trace = ground(&ctrl, &mut scenario, &d, &mut rng, 10);
        assert!(trace.iter().all(|s| s.acts.is_empty()));
    }

    #[test]
    fn ground_many_resets_between_runs() {
        let d = domain();
        let ctrl = light_follower(&d);
        let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let traces = ground_many(&ctrl, &mut scenario, &d, &mut rng, 15, 8);
        assert_eq!(traces.len(), 8);
        // Every episode starts at the initial (green, clear) state.
        for t in &traces {
            let first = t.steps()[0];
            assert!(first.props.contains(d.green_tl));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = domain();
        let ctrl = light_follower(&d);
        let run = |seed| {
            let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            ground(&ctrl, &mut scenario, &d, &mut rng, 30)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn first_match_policy_is_deterministic_in_controller_order() {
        let d = domain();
        // Two always-enabled transitions; FirstMatch must take the first.
        let ctrl = ControllerBuilder::new("dual", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(d.stop), 0)
            .transition(0, Guard::always(), ActSet::singleton(d.go_straight), 0)
            .build()
            .unwrap();
        let mut scenario = Scenario::new(ScenarioKind::WideMedian, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let trace = ground_with_policy(
            &ctrl,
            &mut scenario,
            &d,
            &mut rng,
            20,
            ExecutionPolicy::FirstMatch,
        );
        assert!(trace.iter().all(|s| s.acts.contains(d.stop)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Traces have the requested length, observations are legal
            /// for the scenario, and actions come from the controller's
            /// alphabet.
            #[test]
            fn trace_invariants(
                seed in any::<u64>(),
                steps in 0usize..50,
                kind_idx in 0usize..5,
            ) {
                let d = domain();
                let ctrl = light_follower(&d);
                let kind = ScenarioKind::all()[kind_idx];
                let mut scenario = Scenario::new(kind, ScenarioConfig::default());
                let mut rng = StdRng::seed_from_u64(seed);
                let trace = ground(&ctrl, &mut scenario, &d, &mut rng, steps);
                prop_assert_eq!(trace.len(), steps);
                let alphabet = ctrl.action_alphabet();
                for step in &trace {
                    prop_assert!(alphabet.is_superset(step.acts));
                    if kind == ScenarioKind::TwoWayStop {
                        prop_assert!(step.props.contains(d.stop_sign));
                    }
                    if kind == ScenarioKind::Roundabout {
                        prop_assert_eq!(
                            step.props.contains(d.ped_left),
                            step.props.contains(d.ped_right)
                        );
                    }
                }
            }

            /// Scenario observations always stay within the scenario's
            /// world-model label set (the simulator respects the model).
            #[test]
            fn observations_are_model_labels(
                seed in any::<u64>(),
                kind_idx in 0usize..5,
            ) {
                let d = domain();
                let kind = ScenarioKind::all()[kind_idx];
                // The matching preset world model.
                let model = match kind {
                    ScenarioKind::TrafficLight => d.traffic_light_model(),
                    ScenarioKind::LeftTurnSignal => d.left_turn_light_model(),
                    ScenarioKind::WideMedian => d.wide_median_model(),
                    ScenarioKind::TwoWayStop => d.two_way_stop_model(),
                    ScenarioKind::Roundabout => d.roundabout_model(),
                };
                let labels: std::collections::HashSet<u32> =
                    model.states().map(|s| model.label(s).bits()).collect();
                let mut scenario = Scenario::new(kind, ScenarioConfig::default());
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..60 {
                    let obs = scenario.observe(&d);
                    prop_assert!(
                        labels.contains(&obs.bits()),
                        "{kind:?}: observation {:?} is not a model label",
                        obs
                    );
                    scenario.advance(&mut rng);
                }
            }
        }
    }

    #[test]
    fn finite_monitoring_integrates() {
        // End-to-end: sim traces → LTLf satisfaction rates.
        let d = domain();
        let ctrl = light_follower(&d);
        let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let traces = ground_many(&ctrl, &mut scenario, &d, &mut rng, 40, 20);
        let specs = ltlcheck::specs::driving_specs(&d);
        // Φ₃ = □(¬green → ¬go straight): the follower always satisfies it.
        let phi3 = &specs[2].formula;
        let rate = ltlcheck::finite::satisfaction_rate(traces.iter(), phi3);
        assert_eq!(rate, 1.0);
        // Φ₁₄ = □(go straight → ¬ped in front): the follower ignores
        // pedestrians, so some traces should violate it.
        let phi14 = &specs[13].formula;
        let rate14 = ltlcheck::finite::satisfaction_rate(traces.iter(), phi14);
        assert!(
            rate14 < 1.0,
            "follower should sometimes hit phi_14: {rate14}"
        );
    }
}
