use autokit::{presets::DrivingDomain, PropSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which road scenario the simulator plays out — one per world model in
/// the paper's Figures 5, 6, 15, 16 and 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Regular traffic-light intersection (Figure 5).
    TrafficLight,
    /// Intersection with a protected left-turn signal (Figure 15).
    LeftTurnSignal,
    /// Yield-based wide median (Figure 6).
    WideMedian,
    /// Two-way stop sign (Figure 16).
    TwoWayStop,
    /// Roundabout (Figure 17).
    Roundabout,
}

impl ScenarioKind {
    /// All five scenarios.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::TrafficLight,
            ScenarioKind::LeftTurnSignal,
            ScenarioKind::WideMedian,
            ScenarioKind::TwoWayStop,
            ScenarioKind::Roundabout,
        ]
    }
}

/// Stochastic-dynamics parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Per-tick probability that an absent car/pedestrian arrives.
    pub arrival: f64,
    /// Per-tick probability that a present car/pedestrian departs.
    pub departure: f64,
    /// Ticks the (traffic or left-turn) light stays green.
    pub green_ticks: u32,
    /// Ticks the light stays non-green (red).
    pub red_ticks: u32,
    /// Ticks of the flashing left-turn phase.
    pub flashing_ticks: u32,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            arrival: 0.2,
            departure: 0.45,
            green_ticks: 6,
            red_ticks: 6,
            flashing_ticks: 3,
        }
    }
}

/// Mutable simulation state of one scenario instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    kind: ScenarioKind,
    cfg: ScenarioConfig,
    /// Remaining ticks in the current light phase.
    phase_left: u32,
    /// Current light phase index (meaning depends on `kind`).
    phase: u8,
    car_left: bool,
    car_right: bool,
    opposite: bool,
    ped_left: bool,
    ped_right: bool,
    ped_front: bool,
}

impl Scenario {
    /// Creates a scenario in its initial state (light green, roads clear).
    pub fn new(kind: ScenarioKind, cfg: ScenarioConfig) -> Self {
        Scenario {
            kind,
            cfg,
            phase_left: cfg.green_ticks,
            phase: 0,
            car_left: false,
            car_right: false,
            opposite: false,
            ped_left: false,
            ped_right: false,
            ped_front: false,
        }
    }

    /// The scenario's kind.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        *self = Scenario::new(self.kind, self.cfg);
    }

    /// The current observation `σ ∈ 2^P` under a driving vocabulary.
    pub fn observe(&self, d: &DrivingDomain) -> PropSet {
        let mut sigma = PropSet::empty();
        match self.kind {
            ScenarioKind::TrafficLight => {
                if self.phase == 0 {
                    sigma.insert(d.green_tl);
                }
                if self.car_left {
                    sigma.insert(d.car_left);
                }
                if self.opposite {
                    sigma.insert(d.opposite_car);
                }
                if self.ped_right {
                    sigma.insert(d.ped_right);
                }
                if self.ped_front {
                    sigma.insert(d.ped_front);
                }
            }
            ScenarioKind::LeftTurnSignal => {
                match self.phase {
                    0 => sigma.insert(d.green_ll),
                    1 => sigma.insert(d.flashing_ll),
                    _ => {}
                }
                if self.opposite {
                    sigma.insert(d.opposite_car);
                }
                if self.ped_front {
                    sigma.insert(d.ped_front);
                }
            }
            ScenarioKind::WideMedian => {
                if self.car_left {
                    sigma.insert(d.car_left);
                }
                if self.car_right {
                    sigma.insert(d.car_right);
                }
            }
            ScenarioKind::TwoWayStop => {
                sigma.insert(d.stop_sign);
                if self.car_left {
                    sigma.insert(d.car_left);
                }
                if self.car_right {
                    sigma.insert(d.car_right);
                }
                if self.ped_front {
                    sigma.insert(d.ped_front);
                }
            }
            ScenarioKind::Roundabout => {
                if self.car_left {
                    sigma.insert(d.car_left);
                }
                if self.ped_left {
                    // Roundabout pedestrians occupy both crosswalk sides
                    // (paper Figure 17's `ped` abbreviation).
                    sigma.insert(d.ped_left);
                    sigma.insert(d.ped_right);
                }
            }
        }
        sigma
    }

    /// Advances the environment by one tick.
    pub fn advance(&mut self, rng: &mut impl Rng) {
        // Light phase timers.
        let phases: &[u32] = match self.kind {
            ScenarioKind::TrafficLight => &[self.cfg.green_ticks, self.cfg.red_ticks],
            ScenarioKind::LeftTurnSignal => &[
                self.cfg.green_ticks,
                self.cfg.flashing_ticks,
                self.cfg.red_ticks,
            ],
            _ => &[],
        };
        if !phases.is_empty() {
            if self.phase_left <= 1 {
                self.phase = (self.phase + 1) % phases.len() as u8;
                self.phase_left = phases[self.phase as usize].max(1);
            } else {
                self.phase_left -= 1;
            }
        }

        // Bernoulli arrivals/departures per participant.
        let cfg = self.cfg;
        let flip = |present: &mut bool, rng: &mut dyn rand::RngCore| {
            let p: f64 = rng.gen();
            if *present {
                if p < cfg.departure {
                    *present = false;
                }
            } else if p < cfg.arrival {
                *present = true;
            }
        };
        match self.kind {
            ScenarioKind::TrafficLight => {
                flip(&mut self.car_left, rng);
                flip(&mut self.opposite, rng);
                flip(&mut self.ped_right, rng);
                flip(&mut self.ped_front, rng);
            }
            ScenarioKind::LeftTurnSignal => {
                flip(&mut self.opposite, rng);
                flip(&mut self.ped_front, rng);
            }
            ScenarioKind::WideMedian => {
                flip(&mut self.car_left, rng);
                flip(&mut self.car_right, rng);
            }
            ScenarioKind::TwoWayStop => {
                flip(&mut self.car_left, rng);
                flip(&mut self.car_right, rng);
                flip(&mut self.ped_front, rng);
            }
            ScenarioKind::Roundabout => {
                flip(&mut self.car_left, rng);
                flip(&mut self.ped_left, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_state_is_green_and_clear() {
        let d = DrivingDomain::new();
        let s = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let sigma = s.observe(&d);
        assert!(sigma.contains(d.green_tl));
        assert_eq!(sigma.len(), 1);
    }

    #[test]
    fn light_cycles_with_configured_period() {
        let d = DrivingDomain::new();
        let cfg = ScenarioConfig {
            green_ticks: 2,
            red_ticks: 3,
            arrival: 0.0,
            ..ScenarioConfig::default()
        };
        let mut s = Scenario::new(ScenarioKind::TrafficLight, cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let mut greens = Vec::new();
        for _ in 0..10 {
            greens.push(s.observe(&d).contains(d.green_tl));
            s.advance(&mut rng);
        }
        assert_eq!(
            greens,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn left_turn_light_has_three_phases() {
        let d = DrivingDomain::new();
        let cfg = ScenarioConfig {
            green_ticks: 1,
            flashing_ticks: 1,
            red_ticks: 1,
            arrival: 0.0,
            ..ScenarioConfig::default()
        };
        let mut s = Scenario::new(ScenarioKind::LeftTurnSignal, cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let sigma = s.observe(&d);
            seen.push((sigma.contains(d.green_ll), sigma.contains(d.flashing_ll)));
            s.advance(&mut rng);
        }
        assert_eq!(
            seen,
            vec![
                (true, false),
                (false, true),
                (false, false),
                (true, false),
                (false, true),
                (false, false)
            ]
        );
    }

    #[test]
    fn stop_sign_always_present() {
        let d = DrivingDomain::new();
        let mut s = Scenario::new(ScenarioKind::TwoWayStop, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert!(s.observe(&d).contains(d.stop_sign));
            s.advance(&mut rng);
        }
    }

    #[test]
    fn roundabout_pedestrians_paired() {
        let d = DrivingDomain::new();
        let mut s = Scenario::new(
            ScenarioKind::Roundabout,
            ScenarioConfig {
                arrival: 0.8,
                ..ScenarioConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_ped = false;
        for _ in 0..50 {
            let sigma = s.observe(&d);
            assert_eq!(sigma.contains(d.ped_left), sigma.contains(d.ped_right));
            seen_ped |= sigma.contains(d.ped_left);
            s.advance(&mut rng);
        }
        assert!(seen_ped, "high arrival rate should produce pedestrians");
    }

    #[test]
    fn arrivals_and_departures_both_occur() {
        let d = DrivingDomain::new();
        let mut s = Scenario::new(ScenarioKind::WideMedian, ScenarioConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut present_ticks = 0;
        let mut absent_ticks = 0;
        for _ in 0..300 {
            if s.observe(&d).contains(d.car_left) {
                present_ticks += 1;
            } else {
                absent_ticks += 1;
            }
            s.advance(&mut rng);
        }
        assert!(present_ticks > 20, "cars should arrive: {present_ticks}");
        assert!(absent_ticks > 20, "cars should depart: {absent_ticks}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let d = DrivingDomain::new();
        let mut s = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let initial = s.observe(&d);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            s.advance(&mut rng);
        }
        s.reset();
        assert_eq!(s.observe(&d), initial);
    }
}
