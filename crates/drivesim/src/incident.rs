use crate::ScenarioKind;
use autokit::{presets::DrivingDomain, Trace};
use serde::{Deserialize, Serialize};

/// Safety-relevant events detected in an execution trace.
///
/// These are the operational analogue of specification violations: a
/// right turn across approaching traffic is what the paper's Φ₅
/// counterexample "can lead to an accident" refers to. The simulator
/// reports them independently of LTLf monitoring so examples can show the
/// *physical* consequence of an unverified controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncidentKind {
    /// Turned right while a car approached from the left or a pedestrian
    /// occupied the right side.
    UnsafeRightTurn,
    /// Turned left into oncoming traffic without a protected signal.
    UnsafeLeftTurn,
    /// Drove straight against a red light.
    RanRedLight,
    /// Drove straight at a pedestrian in front.
    PedestrianConflict,
}

/// One detected incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Incident {
    /// Trace position (tick) of the event.
    pub step: usize,
    /// What happened.
    pub kind: IncidentKind,
}

/// Scans a trace for incidents.
///
/// # Example
///
/// ```
/// use autokit::{presets::DrivingDomain, ActSet, PropSet, Step, Trace};
/// use drivesim::{detect_incidents, IncidentKind};
///
/// let d = DrivingDomain::new();
/// let mut trace = Trace::new();
/// trace.push(Step::new(
///     PropSet::singleton(d.car_left),
///     ActSet::singleton(d.turn_right),
/// ));
/// let incidents = detect_incidents(&trace, &d);
/// assert_eq!(incidents[0].kind, IncidentKind::UnsafeRightTurn);
/// ```
pub fn detect_incidents(trace: &Trace, d: &DrivingDomain) -> Vec<Incident> {
    // Without scenario context, a light is assumed wherever no stop sign
    // is observed; [`detect_incidents_for`] is exact.
    detect(trace, d, None)
}

/// Scenario-aware incident scan: red-light running is only reported in
/// scenarios that actually have a traffic light.
pub fn detect_incidents_for(
    trace: &Trace,
    d: &DrivingDomain,
    scenario: ScenarioKind,
) -> Vec<Incident> {
    detect(trace, d, Some(scenario))
}

fn detect(trace: &Trace, d: &DrivingDomain, scenario: Option<ScenarioKind>) -> Vec<Incident> {
    let has_light = match scenario {
        Some(ScenarioKind::TrafficLight) => true,
        Some(_) => false,
        None => true, // approximated per step below
    };
    let mut out = Vec::new();
    for (i, step) in trace.iter().enumerate() {
        let obs = step.props;
        let act = step.acts;
        if act.contains(d.turn_right) && (obs.contains(d.car_left) || obs.contains(d.ped_right)) {
            out.push(Incident {
                step: i,
                kind: IncidentKind::UnsafeRightTurn,
            });
        }
        if act.contains(d.turn_left) && obs.contains(d.opposite_car) && !obs.contains(d.green_ll) {
            out.push(Incident {
                step: i,
                kind: IncidentKind::UnsafeLeftTurn,
            });
        }
        let light_here = has_light && (scenario.is_some() || !obs.contains(d.stop_sign));
        if act.contains(d.go_straight) && !obs.contains(d.green_tl) && light_here {
            out.push(Incident {
                step: i,
                kind: IncidentKind::RanRedLight,
            });
        }
        if act.contains(d.go_straight) && obs.contains(d.ped_front) {
            out.push(Incident {
                step: i,
                kind: IncidentKind::PedestrianConflict,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::{ActSet, PropSet, Step};

    #[test]
    fn clean_trace_has_no_incidents() {
        let d = DrivingDomain::new();
        let mut trace = Trace::new();
        trace.push(Step::new(
            PropSet::singleton(d.green_tl),
            ActSet::singleton(d.go_straight),
        ));
        trace.push(Step::new(PropSet::empty(), ActSet::singleton(d.stop)));
        assert!(detect_incidents(&trace, &d).is_empty());
    }

    #[test]
    fn unsafe_left_turn_requires_missing_protection() {
        let d = DrivingDomain::new();
        let mut protected = Trace::new();
        protected.push(Step::new(
            PropSet::singleton(d.opposite_car).with(d.green_ll),
            ActSet::singleton(d.turn_left),
        ));
        assert!(detect_incidents(&protected, &d).is_empty());
        let mut unprotected = Trace::new();
        unprotected.push(Step::new(
            PropSet::singleton(d.opposite_car),
            ActSet::singleton(d.turn_left),
        ));
        assert_eq!(
            detect_incidents(&unprotected, &d)[0].kind,
            IncidentKind::UnsafeLeftTurn
        );
    }

    #[test]
    fn red_light_running_detected_only_at_lights() {
        let d = DrivingDomain::new();
        let mut at_light = Trace::new();
        at_light.push(Step::new(
            PropSet::empty(),
            ActSet::singleton(d.go_straight),
        ));
        assert_eq!(
            detect_incidents(&at_light, &d)[0].kind,
            IncidentKind::RanRedLight
        );
        // At a stop-sign intersection there is no red light to run.
        let mut at_sign = Trace::new();
        at_sign.push(Step::new(
            PropSet::singleton(d.stop_sign),
            ActSet::singleton(d.go_straight),
        ));
        assert!(detect_incidents(&at_sign, &d).is_empty());
    }

    #[test]
    fn multiple_incidents_reported_in_order() {
        let d = DrivingDomain::new();
        let mut trace = Trace::new();
        trace.push(Step::new(
            PropSet::singleton(d.ped_right),
            ActSet::singleton(d.turn_right),
        ));
        trace.push(Step::new(
            PropSet::singleton(d.ped_front).with(d.green_tl),
            ActSet::singleton(d.go_straight),
        ));
        let incidents = detect_incidents(&trace, &d);
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].step, 0);
        assert_eq!(incidents[1].kind, IncidentKind::PedestrianConflict);
    }
}
