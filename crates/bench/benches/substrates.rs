//! Micro-benchmarks for the verification and simulation substrates:
//! LTL→Büchi translation, product construction, full 15-spec
//! verification (the per-response cost of automated feedback), GLM2FSA
//! synthesis, LTLf monitoring and simulator throughput.

// ALLOW: benchmark harness — panicking on a broken setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use autokit::Product;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE};
use dpo_af::feedback::{justice_for, scenario_model, score_response};
use drivesim::{ground, Scenario, ScenarioConfig, ScenarioKind};
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::specs::driving_specs;
use ltlcheck::{verify_all_fair, Buchi, Ltl};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_buchi(c: &mut Criterion) {
    let bundle = DomainBundle::new();
    let specs = driving_specs(&bundle.driving);
    c.bench_function("buchi/translate_15_specs", |b| {
        b.iter(|| {
            for s in &specs {
                let neg = Ltl::not(s.formula.clone());
                std::hint::black_box(Buchi::from_ltl(&neg));
            }
        })
    });
    // The largest single spec.
    let phi12 = specs
        .iter()
        .max_by_key(|s| s.formula.size())
        .expect("non-empty");
    c.bench_function("buchi/translate_largest_spec", |b| {
        b.iter(|| std::hint::black_box(Buchi::from_ltl(&Ltl::not(phi12.formula.clone()))))
    });
}

fn demo_controller(bundle: &DomainBundle) -> autokit::Controller {
    let ctrl = synthesize(
        "turn right",
        &RIGHT_TURN_AFTER,
        &bundle.lexicon,
        FsaOptions::default(),
    )
    .expect("demo aligns");
    with_default_action(&ctrl, bundle.driving.stop)
}

fn bench_product_and_verify(c: &mut Criterion) {
    let bundle = DomainBundle::new();
    let ctrl = demo_controller(&bundle);
    let model = scenario_model(&bundle.driving, ScenarioKind::TrafficLight);
    c.bench_function("product/traffic_light_x_right_turn", |b| {
        b.iter(|| std::hint::black_box(Product::build(&model, &ctrl)))
    });

    let specs = driving_specs(&bundle.driving);
    let justice = justice_for(&bundle.driving, ScenarioKind::TrafficLight);
    c.bench_function("verify/15_specs_with_fairness", |b| {
        b.iter(|| {
            std::hint::black_box(verify_all_fair(
                &model,
                &ctrl,
                specs.iter().map(|s| (s.name.as_str(), &s.formula)),
                &justice,
            ))
        })
    });

    // The full per-response feedback cost, including alignment + parsing.
    let text = RIGHT_TURN_BEFORE.join(" ; ");
    let task = &bundle.tasks[0];
    c.bench_function("feedback/score_one_response", |b| {
        b.iter(|| std::hint::black_box(score_response(&bundle, task, &text)))
    });
}

fn bench_glm2fsa(c: &mut Criterion) {
    let bundle = DomainBundle::new();
    c.bench_function("glm2fsa/synthesize_right_turn", |b| {
        b.iter(|| {
            std::hint::black_box(synthesize(
                "turn right",
                &RIGHT_TURN_BEFORE,
                &bundle.lexicon,
                FsaOptions::default(),
            ))
        })
    });
    c.bench_function("glm2fsa/align_one_step", |b| {
        b.iter(|| {
            std::hint::black_box(
                bundle
                    .lexicon
                    .align("If there is no oncoming traffic, make a left turn."),
            )
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let bundle = DomainBundle::new();
    let ctrl = demo_controller(&bundle);
    c.bench_function("drivesim/ground_100_steps", |b| {
        b.iter_batched(
            || {
                (
                    Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default()),
                    StdRng::seed_from_u64(7),
                )
            },
            |(mut scenario, mut rng)| {
                std::hint::black_box(ground(&ctrl, &mut scenario, &bundle.driving, &mut rng, 100))
            },
            BatchSize::SmallInput,
        )
    });

    // LTLf monitoring cost for one 100-step trace against all 15 specs.
    let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let trace = ground(&ctrl, &mut scenario, &bundle.driving, &mut rng, 100);
    let specs = driving_specs(&bundle.driving);
    c.bench_function("ltlf/monitor_trace_15_specs", |b| {
        b.iter(|| {
            for s in &specs {
                std::hint::black_box(ltlcheck::finite::satisfies(&trace, &s.formula));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_buchi,
    bench_product_and_verify,
    bench_glm2fsa,
    bench_simulator
);
criterion_main!(benches);
