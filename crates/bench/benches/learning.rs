//! Micro-benchmarks for the learning substrate: language-model sampling,
//! sequence log-likelihood gradients (the dominant DPO cost) and one DPO
//! pair step, under full fine-tuning and LoRA.

// ALLOW: benchmark harness — panicking on a broken setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use dpo::{dpo_loss_grad, PreferencePair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinylm::{AdaptMode, CondLm, LmConfig, SampleOptions};

fn model(adapt: AdaptMode) -> CondLm {
    let cfg = LmConfig {
        vocab_size: 200,
        num_tasks: 10,
        adapt,
        ..LmConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    CondLm::new(cfg, &mut rng)
}

fn sample_response(lm: &CondLm) -> Vec<tinylm::Token> {
    let mut rng = StdRng::seed_from_u64(5);
    lm.sample(
        0,
        &mut rng,
        SampleOptions {
            temperature: 1.0,
            max_len: 40,
            ..SampleOptions::default()
        },
    )
    .expect("task 0 exists")
}

fn bench_lm(c: &mut Criterion) {
    let lm = model(AdaptMode::Full);
    c.bench_function("tinylm/sample_40_tokens", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            std::hint::black_box(
                lm.sample(
                    0,
                    &mut rng,
                    SampleOptions {
                        temperature: 1.0,
                        max_len: 40,
                        ..SampleOptions::default()
                    },
                )
                .expect("task 0"),
            )
        })
    });

    let resp = sample_response(&lm);
    c.bench_function("tinylm/log_prob_fast", |b| {
        b.iter(|| std::hint::black_box(lm.log_prob(0, &resp).expect("in range")))
    });
    c.bench_function("tinylm/log_prob_grad_full", |b| {
        b.iter(|| std::hint::black_box(lm.log_prob_grad(0, &resp).expect("in range")))
    });
    let lora = model(AdaptMode::Lora { rank: 4 });
    c.bench_function("tinylm/log_prob_grad_lora_r4", |b| {
        b.iter(|| std::hint::black_box(lora.log_prob_grad(0, &resp).expect("in range")))
    });
}

fn bench_dpo(c: &mut Criterion) {
    for (label, adapt) in [
        ("full", AdaptMode::Full),
        ("lora_r4", AdaptMode::Lora { rank: 4 }),
    ] {
        let policy = model(adapt);
        let reference = policy.clone();
        let winner = sample_response(&policy);
        let mut loser = winner.clone();
        loser.truncate(loser.len().saturating_sub(3).max(1));
        let pair = PreferencePair {
            task: 0,
            winner,
            loser,
        };
        c.bench_function(&format!("dpo/pair_loss_grad_{label}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    dpo_loss_grad(&policy, &reference, &pair, 0.5).expect("in range"),
                )
            })
        });
    }
}

criterion_group!(benches, bench_lm, bench_dpo);
criterion_main!(benches);
