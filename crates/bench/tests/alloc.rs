//! End-to-end allocation-profiling test against the *real* installed
//! tracking allocator (`bench`'s `#[global_allocator]`) and the real
//! process-global recorder — which is why this binary holds exactly one
//! test function (see DESIGN.md §7 on the one-test-per-binary rule for
//! global-recorder tests).

// ALLOW: test-only panics are the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use obskit::report::{validate, Requirements};

fn find<'a>(nodes: &'a [obskit::SpanNode], name: &str) -> Option<&'a obskit::SpanNode> {
    for node in nodes {
        if node.name == name {
            return Some(node);
        }
        if let Some(hit) = find(&node.children, name) {
            return Some(hit);
        }
    }
    None
}

#[test]
fn alloc_tracking_attributes_to_spans_and_lands_in_artifacts() {
    let dir = std::env::temp_dir().join(format!("bench_alloc_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("BENCH_alloctest.json");
    let trace = dir.join("trace.json");
    let flame = dir.join("flame.folded");
    let cli = bench::BenchCli::from_args(
        "alloctest",
        vec![
            "--alloc".into(),
            "--quiet".into(),
            "--metrics-out".into(),
            metrics.to_string_lossy().into_owned(),
            "--trace-out".into(),
            trace.to_string_lossy().into_owned(),
            "--flame-out".into(),
            flame.to_string_lossy().into_owned(),
        ],
    );
    assert!(cli.alloc);
    assert!(obskit::alloc::tracking());

    {
        let _outer = obskit::span("test.outer");
        obskit::counter_add("test.work", 1);
        let big: Vec<u8> = Vec::with_capacity(1 << 16);
        std::hint::black_box(&big);
        {
            let _inner = obskit::span("test.inner");
            let small: Vec<u8> = Vec::with_capacity(1 << 12);
            std::hint::black_box(&small);
            obskit::recorder::force_tick();
        }
    }

    let snapshot = cli.finish();
    obskit::alloc::set_tracking(false);
    obskit::disable();

    // Global totals: both Vecs were counted and freed again.
    let totals = snapshot.alloc.expect("tracking was on");
    assert!(totals.allocs >= 2, "{totals:?}");
    assert!(
        totals.bytes_allocated >= (1 << 16) + (1 << 12),
        "{totals:?}"
    );
    assert!(totals.frees > 0, "{totals:?}");
    assert!(totals.peak_bytes >= (1 << 16), "{totals:?}");

    // Attribution: each Vec is billed to the span that was innermost
    // when it was allocated (not to the parent of that span).
    let outer = find(&snapshot.spans, "test.outer").expect("outer span");
    let inner = find(&snapshot.spans, "test.inner").expect("inner span");
    assert!(outer.alloc_bytes >= 1 << 16, "outer {outer:?}");
    assert!(inner.alloc_bytes >= 1 << 12, "inner {inner:?}");
    assert!(outer.alloc_count >= 1);
    assert!(inner.alloc_count >= 1);
    assert!(
        outer.alloc_bytes < (1 << 16) + (1 << 12),
        "inner allocation must not be billed to outer: {outer:?}"
    );

    // The allocator's metrics surface as counters/gauges, the flight
    // recorder's forced sample as a snapshot entry.
    assert!(snapshot
        .metrics
        .counters
        .iter()
        .any(|(k, v)| k == "alloc.allocs" && *v > 0));
    assert!(!snapshot.samples.is_empty());

    // Written artifacts: a valid v2 report carrying the alloc metrics…
    let report = std::fs::read_to_string(&metrics).expect("report written");
    assert!(report.contains("\"obskit.bench.v2\""));
    let req = Requirements {
        metrics: vec![
            "alloc.allocs".into(),
            "alloc.bytes_allocated".into(),
            "alloc.peak_bytes".into(),
        ],
        spans: vec!["test.outer".into(), "test.inner".into()],
    };
    assert_eq!(validate(&report, &req), Ok(()));

    // …a folded flamegraph with the nested name path…
    let folded = std::fs::read_to_string(&flame).expect("flame written");
    assert!(folded.contains("test.outer;test.inner "), "{folded}");

    // …and a Chrome trace with counter tracks from the forced sample.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    let doc = obskit::json::parse(&trace_text).expect("trace parses");
    let entries = doc
        .get("traceEvents")
        .and_then(obskit::json::Value::as_arr)
        .expect("traceEvents");
    assert!(entries
        .iter()
        .any(|e| e.get("ph").and_then(obskit::json::Value::as_str) == Some("C")));

    let _ = std::fs::remove_dir_all(&dir);
}
