//! Golden-file test for the `BENCH_<name>.json` schema.
//!
//! The serialized report is byte-compared against a committed golden
//! file: any change to key order, number formatting, or structure is a
//! schema change and must be deliberate (bump `obskit::report::SCHEMA`
//! or regenerate the golden with `UPDATE_GOLDEN=1 cargo test -p bench`).

// ALLOW: test-only panics are the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use obskit::metrics::{BucketCount, HistogramSnapshot, MetricsSnapshot};
use obskit::report::{validate, Requirements};
use obskit::{BenchReport, SpanNode};

/// A fully deterministic report (no clocks, no registry).
fn sample_report() -> BenchReport {
    BenchReport {
        bench: "golden".into(),
        args: vec!["--fast".into()],
        wall_ms: 125.5,
        metrics: MetricsSnapshot {
            counters: vec![
                ("ltlcheck.product_states".into(), 420),
                ("pipeline.pairs_formed".into(), 96),
            ],
            gauges: vec![("pretrain.tokens_per_sec".into(), 81000.0)],
            histograms: vec![(
                "ltlcheck.lasso_len".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 21,
                    min: Some(3),
                    max: Some(12),
                    buckets: vec![
                        BucketCount {
                            lo: 2,
                            hi: 4,
                            count: 1,
                        },
                        BucketCount {
                            lo: 4,
                            hi: 8,
                            count: 1,
                        },
                        BucketCount {
                            lo: 8,
                            hi: 16,
                            count: 1,
                        },
                    ],
                },
            )],
        },
        spans: vec![SpanNode {
            name: "pipeline.run".into(),
            count: 1,
            total_us: 120_000,
            max_us: 120_000,
            alloc_count: 12,
            alloc_bytes: 4_096,
            children: vec![SpanNode {
                name: "pipeline.verify".into(),
                count: 30,
                total_us: 90_000,
                max_us: 9_000,
                alloc_count: 0,
                alloc_bytes: 0,
                children: Vec::new(),
            }],
        }],
    }
}

#[test]
fn report_matches_golden_file() {
    let rendered = sample_report().to_json();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/BENCH_golden.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("golden file writable");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "BENCH report serialization drifted from the golden file; if the \
         schema change is deliberate, regenerate with UPDATE_GOLDEN=1 and \
         review the diff"
    );
}

#[test]
fn golden_file_validates_against_schema() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/BENCH_golden.json"
    ))
    .expect("golden file present");
    let req = Requirements {
        metrics: vec![
            "ltlcheck.product_states".into(),
            "pipeline.pairs_formed".into(),
            "ltlcheck.lasso_len".into(),
        ],
        spans: vec!["pipeline.run".into(), "pipeline.verify".into()],
    };
    assert_eq!(validate(&golden, &req), Ok(()));
}

/// Committed `obskit.bench.v1` baselines (pre-quantile, pre-allocation
/// reports) must keep validating and must stay diffable against v2
/// candidates — the perf gate's baseline can lag the writer's schema.
#[test]
fn v1_fixture_still_validates_and_diffs_against_v2() {
    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/BENCH_v1_fixture.json"
    ))
    .expect("v1 fixture present");
    assert!(fixture.contains("obskit.bench.v1"));
    assert_eq!(validate(&fixture, &Requirements::default()), Ok(()));

    // The v2 golden is the same run re-reported under the new schema;
    // diffing v1 baseline against v2 candidate must pass cleanly.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/BENCH_golden.json"
    ))
    .expect("golden file present");
    let baseline = obskit::json::parse(&fixture).expect("fixture parses");
    let candidate = obskit::json::parse(&golden).expect("golden parses");
    let diff = bench::diff::diff_reports(&baseline, &candidate, &bench::diff::Budgets::defaults())
        .expect("diff runs");
    assert!(diff.pass(), "{}", diff.render_human());
}
