//! # bench — benchmark harness and experiment binaries
//!
//! This crate regenerates every table and figure of the paper's
//! evaluation section:
//!
//! | Binary            | Paper artifact |
//! |-------------------|----------------|
//! | `demo`            | §5.1 + Appendix C/D: before/after controllers, Φ₅/Φ₁₂ counterexamples, NuSMV exports |
//! | `fig8`            | Figure 8: DPO loss / accuracy / marginal preference over epochs, 5 seeds |
//! | `fig9`            | Figure 9: #specifications satisfied vs DPO epoch (train/validation) |
//! | `fig11`           | Figure 11: per-specification satisfaction rates in the simulator, before/after |
//! | `fig12`           | Figure 12: detector confidence→accuracy curves, sim vs real |
//! | `fig13`           | Figure 13: per-condition (weather/light) detection accuracy |
//! | `headline`        | Abstract/§1: % specifications satisfied, ~60% → 90%+ |
//! | `ablation_feedback` | A1: formal-verification vs empirical (simulator) ranking consistency, plus end-to-end fine-tuning under each source |
//! | `ablation_lora`   | A2: LoRA rank sweep vs DPO metrics and wall time |
//! | `ablation_m`      | A3: responses-per-prompt `m` vs preference-pair yield and quality |
//! | `ablation_conservative` | A4: pruned vs conservative world-model construction (Algorithm 1) |
//! | `ablation_ipo`    | A5: DPO vs IPO objective on the same dataset |
//! | `backend_compare` | A6: explicit-state vs symbolic (BDD) verification backends |
//! | `spec_lint`       | rule-book satisfiability / tautology / vacuity lint |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the substrate costs:
//! Büchi construction, product construction, 15-spec verification, DPO
//! gradient steps, simulator throughput and GLM2FSA synthesis.
//!
//! Run an experiment with `cargo run --release -p bench --bin fig9`.
//! Every binary accepts `--fast` to run a reduced configuration.

pub mod audit;
pub mod diff;

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Every bench binary runs under the obskit tracking allocator. It
/// forwards straight to the system allocator until
/// `obskit::alloc::set_tracking(true)` (the `--alloc` flag) turns the
/// accounting on, so artifact bytes and headline numbers are identical
/// whether or not a run profiles allocations.
#[global_allocator]
static ALLOC: obskit::alloc::TrackingAlloc = obskit::alloc::TrackingAlloc::new();

/// Shared command-line handling for every experiment binary.
///
/// All binaries accept the same observability flags on top of their own:
///
/// | Flag                 | Effect |
/// |----------------------|--------|
/// | `--fast`             | reduced configuration (seconds instead of minutes) |
/// | `--metrics-out <p>`  | write a `BENCH_<name>.json` report ([`obskit::report`] schema) |
/// | `--trace-out <p>`    | write a Chrome trace (open in `chrome://tracing` / Perfetto) |
/// | `--flame-out <p>`    | write a collapsed-stack flamegraph (self-time µs, `flamegraph.pl` format) |
/// | `--alloc`            | turn on allocation accounting (per-span counts/bytes in the report) |
/// | `--no-obs`           | keep the no-op recorder (overhead baseline; also silences progress) |
/// | `--quiet`            | drop the stderr progress sink, keep recording |
/// | `--threads <n>`      | scoring fan-out width (0/omitted = `PARKIT_THREADS` or the machine) |
/// | `--no-cache`         | disable the verification memo-cache |
/// | `--no-ref-cache`     | disable the DPO reference-logprob cache |
/// | `--no-semantic-preflight` | skip the semantic rule-book gate |
/// | `--kernel-mode <m>`  | tape kernel arithmetic: `reference` (default) or `fast` |
/// | `--pool-backward`    | fan the DPO backward's matmul gradients over the pool |
///
/// `--threads`, `--no-cache`, `--no-ref-cache`, `--pool-backward` and
/// `--no-semantic-preflight` are pure performance/gating knobs — results
/// are byte-identical whatever you pass (see DESIGN.md §8–§10, §13).
/// `--kernel-mode fast` is the exception: it reassociates kernel
/// accumulation, so artifacts deviate within the `kernel_gate` tolerance
/// instead of matching byte-for-byte (DESIGN.md §13).
///
/// [`BenchCli::parse`] enables the global `obskit` recorder (unless
/// `--no-obs`), and [`BenchCli::finish`] snapshots it and writes the
/// requested artifacts.
#[derive(Debug)]
pub struct BenchCli {
    /// Bench name, stamped into the report (`headline`, `fig9`, …).
    pub bench: String,
    /// `--fast` was passed.
    pub fast: bool,
    /// Where to write the `BENCH_<name>.json` report, if anywhere.
    pub metrics_out: Option<PathBuf>,
    /// Where to write the Chrome trace, if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Where to write the collapsed-stack flamegraph, if anywhere.
    pub flame_out: Option<PathBuf>,
    /// `--alloc` was passed: turn on allocation accounting.
    pub alloc: bool,
    /// `--no-obs` was passed: leave the no-op recorder selected.
    pub no_obs: bool,
    /// `--threads` value (0 = auto-resolve, the default).
    pub threads: usize,
    /// `--no-cache` was passed: disable verification memoization.
    pub no_cache: bool,
    /// `--no-ref-cache` was passed: disable the DPO reference-logprob
    /// cache (recompute reference forwards per pair visit).
    pub no_ref_cache: bool,
    /// `--no-semantic-preflight` was passed: skip the semantic rule-book
    /// gate (used by CI to prove the gate never changes artifacts).
    pub no_semantic_preflight: bool,
    /// `--kernel-mode` value (`reference` unless `fast` was requested).
    pub kernel_mode: tinylm::KernelMode,
    /// `--pool-backward` was passed: fan the DPO backward pass's matmul
    /// gradient work over the worker pool.
    pub pool_backward: bool,
    /// The raw argument list (recorded in the report for provenance).
    pub args: Vec<String>,
    started: Instant,
}

impl BenchCli {
    /// Parses `std::env::args`, then turns the recorder on (unless
    /// `--no-obs`). Unknown flags are kept for the binary's own parsing.
    pub fn parse(bench: &str) -> BenchCli {
        Self::from_args(bench, std::env::args().skip(1).collect())
    }

    /// [`BenchCli::parse`] over an explicit argument list (for tests).
    pub fn from_args(bench: &str, args: Vec<String>) -> BenchCli {
        let mut cli = BenchCli {
            bench: bench.to_owned(),
            fast: false,
            metrics_out: None,
            trace_out: None,
            flame_out: None,
            alloc: false,
            no_obs: false,
            threads: 0,
            no_cache: false,
            no_ref_cache: false,
            no_semantic_preflight: false,
            kernel_mode: tinylm::KernelMode::Reference,
            pool_backward: false,
            args: args.clone(),
            started: Instant::now(),
        };
        let mut quiet = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fast" => cli.fast = true,
                "--alloc" => cli.alloc = true,
                "--no-obs" => cli.no_obs = true,
                "--quiet" => quiet = true,
                "--no-cache" => cli.no_cache = true,
                "--no-ref-cache" => cli.no_ref_cache = true,
                "--no-semantic-preflight" => cli.no_semantic_preflight = true,
                "--pool-backward" => cli.pool_backward = true,
                "--kernel-mode" => {
                    cli.kernel_mode = it
                        .next()
                        .as_deref()
                        .and_then(tinylm::KernelMode::parse)
                        .unwrap_or_default();
                }
                "--metrics-out" => cli.metrics_out = it.next().map(PathBuf::from),
                "--trace-out" => cli.trace_out = it.next().map(PathBuf::from),
                "--flame-out" => cli.flame_out = it.next().map(PathBuf::from),
                "--threads" => {
                    cli.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                }
                _ => {}
            }
        }
        if !cli.no_obs {
            obskit::enable();
            obskit::set_console(!quiet);
            obskit::recorder::install_panic_hook();
            if cli.alloc {
                obskit::alloc::set_tracking(true);
            }
        }
        cli
    }

    /// Snapshots the recorder and writes the artifacts requested on the
    /// command line. Returns the snapshot so binaries can print from it.
    ///
    /// # Panics
    ///
    /// Panics when a requested output file cannot be written — a bench
    /// run that silently drops its report would poison the perf record.
    // ALLOW: a bench run that silently drops its report would poison the perf record.
    #[allow(clippy::expect_used)]
    pub fn finish(&self) -> obskit::Snapshot {
        let mut snapshot = obskit::snapshot();
        // The recorder anchor predates parse() by process-startup time;
        // the bench's own clock is the honest wall figure.
        snapshot.wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        if let Some(path) = &self.metrics_out {
            let report = obskit::BenchReport::from_snapshot(&self.bench, &self.args, &snapshot);
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
            eprintln!("metrics report written to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            let trace = obskit::chrome::chrome_trace_full(
                &snapshot.span_records,
                &snapshot.events,
                &snapshot.thread_names,
                &snapshot.samples,
                Some(&format!("bench_{}", self.bench)),
            );
            std::fs::write(path, trace)
                .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
            eprintln!(
                "chrome trace written to {} (open in chrome://tracing)",
                path.display()
            );
        }
        if let Some(path) = &self.flame_out {
            let flame = obskit::flame::folded(&snapshot.span_records);
            std::fs::write(path, flame)
                .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
            eprintln!("folded flamegraph written to {}", path.display());
        }
        snapshot
    }

    /// The pipeline configuration implied by this command line: the
    /// shared [`pipeline_config`] reduction for `--fast`, with the
    /// `--threads` / `--no-cache` performance knobs applied.
    pub fn pipeline_config(&self) -> dpo_af::pipeline::PipelineConfig {
        let mut cfg = pipeline_config(self.fast);
        cfg.threads = self.threads;
        cfg.verify_cache = !self.no_cache;
        cfg.ref_cache = !self.no_ref_cache;
        cfg.semantic_preflight = !self.no_semantic_preflight;
        cfg.kernel_mode = self.kernel_mode;
        cfg.pool_backward = self.pool_backward;
        cfg
    }
}

/// Formats a two-column table of `(label, value)` rows.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title}");
    let hdr: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
        .collect();
    let _ = writeln!(out, "{}", hdr.join("  "));
    let _ = writeln!(
        out,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        let _ = writeln!(out, "{}", cells.join("  "));
    }
    out
}

/// The standard `--fast` reduction of the pipeline configuration: the
/// same run shape at a fraction of the epochs/corpus, shared by every
/// binary that drives the full DPO-AF pipeline so "fast mode" means the
/// same thing everywhere.
pub fn pipeline_config(fast: bool) -> dpo_af::pipeline::PipelineConfig {
    let mut cfg = dpo_af::pipeline::PipelineConfig::default();
    if fast {
        cfg.train.epochs = 10;
        cfg.iterations = 2;
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
        cfg.eval_samples = 2;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All flag parsing, with `--no-obs` so the test does not touch the
    /// process-global recorder (parallel tests must not toggle it).
    #[test]
    fn cli_parses_observability_flags() {
        let cli = BenchCli::from_args(
            "headline",
            [
                "--fast",
                "--no-obs",
                "--metrics-out",
                "out/BENCH_headline.json",
                "--trace-out",
                "/tmp/headline.trace.json",
                "--flame-out",
                "/tmp/headline.folded",
                "--alloc",
                "--threads",
                "4",
                "--no-cache",
                "--no-ref-cache",
                "--kernel-mode",
                "fast",
                "--pool-backward",
                "--seeds=3", // unknown flags are left for the binary
            ]
            .map(str::to_owned)
            .to_vec(),
        );
        assert_eq!(cli.bench, "headline");
        assert!(cli.fast);
        assert!(cli.no_obs);
        assert_eq!(
            cli.metrics_out.as_deref(),
            Some(std::path::Path::new("out/BENCH_headline.json"))
        );
        assert_eq!(
            cli.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/headline.trace.json"))
        );
        assert_eq!(
            cli.flame_out.as_deref(),
            Some(std::path::Path::new("/tmp/headline.folded"))
        );
        assert!(cli.alloc);
        assert_eq!(cli.threads, 4);
        assert!(cli.no_cache);
        assert!(cli.no_ref_cache);
        assert_eq!(cli.kernel_mode, tinylm::KernelMode::Fast);
        assert!(cli.pool_backward);
        assert_eq!(cli.args.len(), 17);

        // The performance knobs land in the pipeline configuration.
        let cfg = cli.pipeline_config();
        assert_eq!(cfg.threads, 4);
        assert!(!cfg.verify_cache);
        assert!(!cfg.ref_cache);
        assert_eq!(cfg.kernel_mode, tinylm::KernelMode::Fast);
        assert!(cfg.pool_backward);
        let defaults = BenchCli::from_args("headline", vec!["--no-obs".to_owned()]);
        assert_eq!(defaults.threads, 0);
        let cfg = defaults.pipeline_config();
        assert_eq!(cfg.threads, 0);
        assert!(cfg.verify_cache);
        assert!(cfg.ref_cache);
        assert_eq!(cfg.kernel_mode, tinylm::KernelMode::Reference);
        assert!(!cfg.pool_backward);
    }

    #[test]
    fn fast_config_shrinks_the_schedule() {
        let full = pipeline_config(false);
        let fast = pipeline_config(true);
        assert_eq!(full, dpo_af::pipeline::PipelineConfig::default());
        assert!(fast.train.epochs < full.train.epochs);
        assert!(fast.corpus_size < full.corpus_size);
        assert!(fast.iterations < full.iterations);
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            "demo",
            &["spec", "before", "after"],
            &[
                vec!["phi_1".into(), "1.00".into(), "1.00".into()],
                vec!["phi_10".into(), "0.50".into(), "0.97".into()],
            ],
        );
        assert!(t.contains("== demo"));
        let lines: Vec<&str> = t.lines().collect();
        // Header and rows start with aligned columns.
        assert!(lines[1].starts_with("spec  "));
        assert!(lines[3].starts_with("phi_1 "));
    }
}
