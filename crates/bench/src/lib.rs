//! # bench — benchmark harness and experiment binaries
//!
//! This crate regenerates every table and figure of the paper's
//! evaluation section:
//!
//! | Binary            | Paper artifact |
//! |-------------------|----------------|
//! | `demo`            | §5.1 + Appendix C/D: before/after controllers, Φ₅/Φ₁₂ counterexamples, NuSMV exports |
//! | `fig8`            | Figure 8: DPO loss / accuracy / marginal preference over epochs, 5 seeds |
//! | `fig9`            | Figure 9: #specifications satisfied vs DPO epoch (train/validation) |
//! | `fig11`           | Figure 11: per-specification satisfaction rates in the simulator, before/after |
//! | `fig12`           | Figure 12: detector confidence→accuracy curves, sim vs real |
//! | `fig13`           | Figure 13: per-condition (weather/light) detection accuracy |
//! | `headline`        | Abstract/§1: % specifications satisfied, ~60% → 90%+ |
//! | `ablation_feedback` | A1: formal-verification vs empirical (simulator) ranking consistency, plus end-to-end fine-tuning under each source |
//! | `ablation_lora`   | A2: LoRA rank sweep vs DPO metrics and wall time |
//! | `ablation_m`      | A3: responses-per-prompt `m` vs preference-pair yield and quality |
//! | `ablation_conservative` | A4: pruned vs conservative world-model construction (Algorithm 1) |
//! | `ablation_ipo`    | A5: DPO vs IPO objective on the same dataset |
//! | `backend_compare` | A6: explicit-state vs symbolic (BDD) verification backends |
//! | `spec_lint`       | rule-book satisfiability / tautology / vacuity lint |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the substrate costs:
//! Büchi construction, product construction, 15-spec verification, DPO
//! gradient steps, simulator throughput and GLM2FSA synthesis.
//!
//! Run an experiment with `cargo run --release -p bench --bin fig9`.
//! Every binary accepts `--fast` to run a reduced configuration.

use std::fmt::Write as _;

/// Formats a two-column table of `(label, value)` rows.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title}");
    let hdr: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
        .collect();
    let _ = writeln!(out, "{}", hdr.join("  "));
    let _ = writeln!(
        out,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        let _ = writeln!(out, "{}", cells.join("  "));
    }
    out
}

/// `true` if `--fast` was passed on the command line.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            "demo",
            &["spec", "before", "after"],
            &[
                vec!["phi_1".into(), "1.00".into(), "1.00".into()],
                vec!["phi_10".into(), "0.50".into(), "0.97".into()],
            ],
        );
        assert!(t.contains("== demo"));
        let lines: Vec<&str> = t.lines().collect();
        // Header and rows start with aligned columns.
        assert!(lines[1].starts_with("spec  "));
        assert!(lines[3].starts_with("phi_1 "));
    }
}
