//! Unsafe-code audit: enumerate every `unsafe` site in the workspace's
//! own sources and require each to carry a `// SAFETY:` justification.
//!
//! Every first-party crate except `parkit` carries
//! `#![forbid(unsafe_code)]`; parkit's scoped pool needs exactly one
//! lifetime-erasing transmute (see DESIGN.md's unsafe-code policy).
//! This audit keeps that whitelist honest: a new `unsafe` block, fn,
//! impl or trait anywhere under `crates/` fails CI unless a `SAFETY:`
//! comment within the eight preceding non-empty lines explains why it is
//! sound. Vendored third-party sources (`vendor/`) and build output
//! (`target/`) are out of scope — we audit our code, not our
//! dependencies'.
//!
//! The scanner is a small lexer, not a parser: it strips line comments,
//! block comments, string and char literals, then looks for the `unsafe`
//! keyword at word boundaries. That is exact for the token stream —
//! `unsafe_code` in a `forbid` attribute or `unsafe` inside a string or
//! comment never matches.

use std::path::{Path, PathBuf};

/// One `unsafe` occurrence in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Path as reported (relative to the scan root).
    pub file: String,
    /// 1-based line number of the `unsafe` token.
    pub line: usize,
    /// Whether a `SAFETY:` comment precedes the site.
    pub documented: bool,
}

/// Strips comments and string/char literals from Rust source, preserving
/// line structure (every removed character becomes a space, newlines
/// survive), so token positions stay on their original lines.
fn strip_non_code(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is '<ident>
                    // with no closing quote right after.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        state = State::Char;
                        out.push(' ');
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut matched = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        state = State::Code;
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

fn has_unsafe_token(code_line: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut rest = code_line;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0 || !rest[..pos].chars().next_back().is_some_and(is_ident);
        let after_ok = !rest[pos + 6..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + 6..];
    }
    false
}

/// How many non-empty lines above an `unsafe` token the `SAFETY:`
/// comment may start. Large enough for a thorough multi-line
/// justification, small enough that the comment is adjacent to the site.
pub const SAFETY_COMMENT_WINDOW: usize = 8;

/// Scans one file's source text for `unsafe` sites. `file` is the label
/// recorded in the findings.
pub fn scan_source(file: &str, source: &str) -> Vec<UnsafeSite> {
    let stripped = strip_non_code(source);
    let code_lines: Vec<&str> = stripped.lines().collect();
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut sites = Vec::new();
    for (idx, code_line) in code_lines.iter().enumerate() {
        if !has_unsafe_token(code_line) {
            continue;
        }
        // Look for `SAFETY:` in the original text (it lives in comments,
        // which the stripped view erased) within the preceding window of
        // non-empty lines.
        let mut documented = false;
        let mut seen = 0;
        for back in raw_lines[..idx].iter().rev() {
            if back.trim().is_empty() {
                continue;
            }
            if back.contains("SAFETY:") {
                documented = true;
                break;
            }
            seen += 1;
            if seen >= SAFETY_COMMENT_WINDOW {
                break;
            }
        }
        sites.push(UnsafeSite {
            file: file.to_owned(),
            line: idx + 1,
            documented,
        });
    }
    sites
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Audits every `.rs` file under `root` (skipping `vendor/`, `target/`
/// and hidden directories). Paths in the findings are relative to
/// `root`. Files are visited in sorted order, so output is
/// deterministic.
///
/// # Errors
///
/// Propagates I/O errors from traversal or reading.
pub fn audit_tree(root: &Path) -> std::io::Result<Vec<UnsafeSite>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut sites = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        sites.extend(scan_source(&label, &source));
    }
    Ok(sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_undocumented_unsafe_block() {
        let src = "fn f() {\n    let x = unsafe { danger() };\n}\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 2);
        assert!(!sites[0].documented);
    }

    #[test]
    fn accepts_documented_unsafe_block() {
        let src = "fn f() {\n    // SAFETY: the pointer is valid for the call.\n    let x = unsafe { danger() };\n}\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn safety_comment_beyond_window_does_not_count() {
        let mut src = String::from("// SAFETY: too far away.\n");
        for i in 0..SAFETY_COMMENT_WINDOW + 1 {
            src.push_str(&format!("let filler_{i} = {i};\n"));
        }
        src.push_str("unsafe { danger() };\n");
        let sites = scan_source("x.rs", &src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].documented);
    }

    #[test]
    fn ignores_unsafe_in_comments_strings_and_identifiers() {
        let src = concat!(
            "#![forbid(unsafe_code)]\n",
            "// this comment says unsafe { }\n",
            "/* unsafe here too */\n",
            "let s = \"unsafe in a string\";\n",
            "let r = r#\"unsafe raw\"#;\n",
            "fn unsafe_sounding_name() {}\n",
            "let c = 'u'; let lt: &'static str = \"x\";\n",
        );
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn catches_unsafe_fn_impl_and_trait() {
        let src = "unsafe fn f() {}\nunsafe impl Send for T {}\nunsafe trait U {}\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 3);
        assert_eq!(
            sites.iter().map(|s| s.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn multiline_safety_comment_documents_the_site() {
        let src = "\
// SAFETY: a long justification that spans
// several comment lines before the block
// and still counts as adjacent.
unsafe { danger() };
";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }
}
