//! Source audit: enumerate every scrutiny-worthy site in the
//! workspace's own sources and require each to carry an adjacent
//! justification comment.
//!
//! Four kinds of site are tracked:
//!
//! * **`unsafe`** (block, fn, impl, trait) — requires `// SAFETY:`.
//!   Every first-party crate except `parkit` carries
//!   `#![forbid(unsafe_code)]`; parkit's scoped pool needs exactly one
//!   lifetime-erasing transmute (see DESIGN.md's unsafe-code policy).
//! * **`static mut`** — requires `// SAFETY:`. The most race-prone
//!   shape of shared state; the steady-state count is zero.
//! * **`transmute`** — requires `// SAFETY:`, *in addition to* the
//!   `unsafe` block it necessarily sits in: the justification must
//!   cover the reinterpretation itself, not just the block.
//! * **`#[allow(clippy::…)]`** — requires `// ALLOW:`. Lint opt-outs
//!   are policy exceptions; each must say why the lint does not apply,
//!   so the exception list stays reviewable instead of accreting.
//!
//! The justification may sit on the same line (a trailing comment) or
//! within the [`SAFETY_COMMENT_WINDOW`] preceding non-empty lines.
//! Vendored third-party sources (`vendor/`) and build output
//! (`target/`) are out of scope — we audit our code, not our
//! dependencies'.
//!
//! The scanner is a small lexer, not a parser: it strips line comments,
//! block comments, string and char literals, then looks for the tokens
//! at word boundaries. That is exact for the token stream — `unsafe`
//! inside a string or comment never matches, and `unsafe_code` in a
//! `forbid` attribute or `transmute_copy` never word-boundary-match.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What kind of scrutiny-worthy construct a [`Site`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// An `unsafe` block, fn, impl or trait.
    Unsafe,
    /// A `static mut` item.
    StaticMut,
    /// A `transmute` call (audited independently of its `unsafe` block).
    Transmute,
    /// A `#[allow(clippy::…)]` / `#![allow(clippy::…)]` lint opt-out.
    ClippyAllow,
}

impl SiteKind {
    /// The comment token that justifies this kind of site.
    pub fn required_token(self) -> &'static str {
        match self {
            SiteKind::Unsafe | SiteKind::StaticMut | SiteKind::Transmute => "SAFETY:",
            SiteKind::ClippyAllow => "ALLOW:",
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SiteKind::Unsafe => "unsafe",
            SiteKind::StaticMut => "static-mut",
            SiteKind::Transmute => "transmute",
            SiteKind::ClippyAllow => "clippy-allow",
        }
    }
}

/// One audited occurrence in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Path as reported (relative to the scan root).
    pub file: String,
    /// 1-based line number of the token.
    pub line: usize,
    /// The construct found there.
    pub kind: SiteKind,
    /// Whether the required justification comment is adjacent.
    pub documented: bool,
}

impl Site {
    /// The crate this site belongs to: `crates/<name>/…` maps to
    /// `<name>`, anything else to the root package.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.file.split(['/', '\\']);
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => name,
            _ => "formal-feedback",
        }
    }
}

/// Per-crate tallies of `(total, undocumented)` sites by kind.
pub fn per_crate_counts(sites: &[Site]) -> BTreeMap<String, BTreeMap<SiteKind, (usize, usize)>> {
    let mut out: BTreeMap<String, BTreeMap<SiteKind, (usize, usize)>> = BTreeMap::new();
    for site in sites {
        let entry = out
            .entry(site.crate_name().to_owned())
            .or_default()
            .entry(site.kind)
            .or_insert((0, 0));
        entry.0 += 1;
        if !site.documented {
            entry.1 += 1;
        }
    }
    out
}

/// Strips comments and string/char literals from Rust source, preserving
/// line structure (every removed character becomes a space, newlines
/// survive), so token positions stay on their original lines.
fn strip_non_code(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is '<ident>
                    // with no closing quote right after.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        state = State::Char;
                        out.push(' ');
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut matched = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        state = State::Code;
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Whether `code_line` contains `word` at identifier boundaries.
fn has_word(code_line: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut rest = code_line;
    while let Some(pos) = rest.find(word) {
        let before_ok = pos == 0 || !rest[..pos].chars().next_back().is_some_and(is_ident);
        let after_ok = !rest[pos + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + word.len()..];
    }
    false
}

/// A word-boundary `static` directly followed (modulo whitespace) by a
/// word-boundary `mut` on one stripped line.
fn has_static_mut(code_line: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut offset = 0;
    while let Some(pos) = code_line[offset..].find("static") {
        let abs = offset + pos;
        let before_ok = abs == 0 || !code_line[..abs].chars().next_back().is_some_and(is_ident);
        let after = &code_line[abs + 6..];
        if before_ok && !after.chars().next().is_some_and(is_ident) {
            let rest = after.trim_start();
            if rest.starts_with("mut") && !rest.chars().nth(3).is_some_and(is_ident) {
                return true;
            }
        }
        offset = abs + 6;
    }
    false
}

/// Detects the site kinds present on one stripped code line.
fn kinds_on_line(code_line: &str) -> Vec<SiteKind> {
    let mut kinds = Vec::new();
    if has_word(code_line, "unsafe") {
        kinds.push(SiteKind::Unsafe);
    }
    if has_static_mut(code_line) {
        kinds.push(SiteKind::StaticMut);
    }
    if has_word(code_line, "transmute") {
        kinds.push(SiteKind::Transmute);
    }
    if code_line.contains("allow(clippy::") {
        kinds.push(SiteKind::ClippyAllow);
    }
    kinds
}

/// How many non-empty lines above a site the justification comment may
/// start. Large enough for a thorough multi-line justification, small
/// enough that the comment is adjacent to the site.
pub const SAFETY_COMMENT_WINDOW: usize = 8;

/// Scans one file's source text for audited sites. `file` is the label
/// recorded in the findings.
pub fn scan_source(file: &str, source: &str) -> Vec<Site> {
    let stripped = strip_non_code(source);
    let code_lines: Vec<&str> = stripped.lines().collect();
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut sites = Vec::new();
    for (idx, code_line) in code_lines.iter().enumerate() {
        for kind in kinds_on_line(code_line) {
            // Look for the justification token in the original text (it
            // lives in comments, which the stripped view erased): first
            // as a trailing comment on the site's own line, then within
            // the preceding window of non-empty lines.
            let token = kind.required_token();
            let mut documented = raw_lines.get(idx).is_some_and(|l| l.contains(token));
            let mut seen = 0;
            for back in raw_lines[..idx].iter().rev() {
                if documented {
                    break;
                }
                if back.trim().is_empty() {
                    continue;
                }
                if back.contains(token) {
                    documented = true;
                    break;
                }
                seen += 1;
                if seen >= SAFETY_COMMENT_WINDOW {
                    break;
                }
            }
            sites.push(Site {
                file: file.to_owned(),
                line: idx + 1,
                kind,
                documented,
            });
        }
    }
    sites
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Audits every `.rs` file under `root` (skipping `vendor/`, `target/`
/// and hidden directories). Paths in the findings are relative to
/// `root`. Files are visited in sorted order, so output is
/// deterministic.
///
/// # Errors
///
/// Propagates I/O errors from traversal or reading.
pub fn audit_tree(root: &Path) -> std::io::Result<Vec<Site>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut sites = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        sites.extend(scan_source(&label, &source));
    }
    Ok(sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_undocumented_unsafe_block() {
        let src = "fn f() {\n    let x = unsafe { danger() };\n}\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[0].kind, SiteKind::Unsafe);
        assert!(!sites[0].documented);
    }

    #[test]
    fn flags_static_mut_and_transmute_separately() {
        let src = "static mut COUNTER: u32 = 0;\n\
                   let y = unsafe { std::mem::transmute::<A, B>(x) };\n";
        let sites = scan_source("x.rs", src);
        let kinds: Vec<(SiteKind, usize)> = sites.iter().map(|s| (s.kind, s.line)).collect();
        assert_eq!(
            kinds,
            vec![
                (SiteKind::StaticMut, 1),
                (SiteKind::Unsafe, 2),
                (SiteKind::Transmute, 2),
            ]
        );
        assert!(sites.iter().all(|s| !s.documented));
    }

    #[test]
    fn static_without_mut_and_mutex_do_not_match() {
        let src = "static OK: u32 = 0;\n\
                   static LOCK: Mutex<u32> = Mutex::new(0);\n\
                   static mutex_like: u8 = 0;\n\
                   let transmuted = 1;\n";
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn clippy_allow_requires_allow_comment() {
        let bare = "#[allow(clippy::unwrap_used)]\nfn f() {}\n";
        let sites = scan_source("x.rs", bare);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, SiteKind::ClippyAllow);
        assert!(!sites[0].documented);

        let tagged = "// ALLOW: test helper, panics are the point.\n\
                      #[allow(clippy::unwrap_used)]\nfn f() {}\n";
        let sites = scan_source("x.rs", tagged);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);

        // A SAFETY: comment does not satisfy an ALLOW site.
        let wrong = "// SAFETY: not the right token.\n\
                     #[allow(clippy::unwrap_used)]\nfn f() {}\n";
        assert!(!scan_source("x.rs", wrong)[0].documented);

        // Non-clippy allows (rustc lints) are not audited.
        let rustc = "#[allow(dead_code)]\nfn f() {}\n";
        assert!(scan_source("x.rs", rustc).is_empty());
    }

    #[test]
    fn trailing_comment_on_the_same_line_counts() {
        let src = "#![allow(clippy::expect_used)] // ALLOW: bin entrypoint.\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn per_crate_counts_split_by_crate_and_kind() {
        let sites = vec![
            Site {
                file: "crates/parkit/src/pool.rs".into(),
                line: 1,
                kind: SiteKind::Unsafe,
                documented: true,
            },
            Site {
                file: "crates/parkit/src/pool.rs".into(),
                line: 2,
                kind: SiteKind::Transmute,
                documented: false,
            },
            Site {
                file: "src/main.rs".into(),
                line: 3,
                kind: SiteKind::ClippyAllow,
                documented: true,
            },
        ];
        let counts = per_crate_counts(&sites);
        assert_eq!(counts["parkit"][&SiteKind::Unsafe], (1, 0));
        assert_eq!(counts["parkit"][&SiteKind::Transmute], (1, 1));
        assert_eq!(counts["formal-feedback"][&SiteKind::ClippyAllow], (1, 0));
    }

    #[test]
    fn accepts_documented_unsafe_block() {
        let src = "fn f() {\n    // SAFETY: the pointer is valid for the call.\n    let x = unsafe { danger() };\n}\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn safety_comment_beyond_window_does_not_count() {
        let mut src = String::from("// SAFETY: too far away.\n");
        for i in 0..SAFETY_COMMENT_WINDOW + 1 {
            src.push_str(&format!("let filler_{i} = {i};\n"));
        }
        src.push_str("unsafe { danger() };\n");
        let sites = scan_source("x.rs", &src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].documented);
    }

    #[test]
    fn ignores_unsafe_in_comments_strings_and_identifiers() {
        let src = concat!(
            "#![forbid(unsafe_code)]\n",
            "// this comment says unsafe { }\n",
            "/* unsafe here too */\n",
            "let s = \"unsafe in a string\";\n",
            "let r = r#\"unsafe raw\"#;\n",
            "fn unsafe_sounding_name() {}\n",
            "let c = 'u'; let lt: &'static str = \"x\";\n",
        );
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn catches_unsafe_fn_impl_and_trait() {
        let src = "unsafe fn f() {}\nunsafe impl Send for T {}\nunsafe trait U {}\n";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 3);
        assert_eq!(
            sites.iter().map(|s| s.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn multiline_safety_comment_documents_the_site() {
        let src = "\
// SAFETY: a long justification that spans
// several comment lines before the block
// and still counts as adjacent.
unsafe { danger() };
";
        let sites = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }
}
