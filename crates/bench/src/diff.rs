//! Noise-aware comparison of two bench reports — the engine behind the
//! `bench_diff` binary and the CI perf-regression gate.
//!
//! Comparing wall-clock numbers across machines (or across a busy CI
//! host) is hopeless, so metrics are split into tolerance classes:
//!
//! * **Counters** are workload measures (pairs trained, states
//!   explored, cache hits). The pipeline is deterministic at
//!   `--threads 1`, so counters must match **exactly** — any drift
//!   means the work itself changed, which no timing noise explains.
//! * **Gauges** are likewise compared exactly, except those matched by
//!   an ignore pattern (throughput readings and allocator live-bytes
//!   are machine- or schedule-dependent by nature).
//! * **Span times** are compared as **shares of the run's own wall
//!   clock**. A uniformly slower machine scales every span and the
//!   wall together, leaving shares unchanged; a genuine regression in
//!   one phase moves that phase's share. Each span gets a relative
//!   share budget (default plus per-span overrides from
//!   `results/PERF_BUDGETS.json`); spans below a minimum share of the
//!   wall are too noisy to judge and are skipped.
//!
//! Missing counters or spans in the candidate are regressions; metrics
//! that only exist in the candidate are informational (new
//! instrumentation must not fail old baselines, which is also what
//! keeps v1-schema baselines diffable against v2 candidates).

use obskit::json::{self, Value};

/// Tolerance configuration for [`diff_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct Budgets {
    /// Relative share-of-wall increase allowed for any span without an
    /// override (0.08 = a span may grow its wall share by 8%).
    pub default_share_tolerance: f64,
    /// Spans whose baseline share of wall is below this percentage are
    /// skipped — their timing is dominated by scheduler noise.
    pub min_share_pct: f64,
    /// Per-span tolerance overrides; patterns match the span name or
    /// its full `;`-joined path, `*` wildcards allowed.
    pub spans: Vec<(String, f64)>,
    /// Metric-name patterns exempt from comparison (`*` wildcards).
    pub ignore: Vec<String>,
}

impl Budgets {
    /// The built-in tolerances used when no budgets file is given.
    pub fn defaults() -> Budgets {
        Budgets {
            default_share_tolerance: 0.08,
            min_share_pct: 1.0,
            spans: Vec::new(),
            ignore: vec![
                "alloc.*".into(),
                "pool.steals".into(),
                "pool.threads".into(),
                "*.tokens_per_sec".into(),
                "*_per_sec".into(),
            ],
        }
    }

    /// Parses a `bench.budgets.v1` JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Budgets, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(Value::as_str) {
            Some("bench.budgets.v1") => {}
            Some(other) => return Err(format!("unknown budgets schema `{other}`")),
            None => return Err("budgets file lacks a `schema` marker".into()),
        }
        let mut budgets = Budgets::defaults();
        if let Some(v) = doc.get("default_share_tolerance").and_then(Value::as_num) {
            budgets.default_share_tolerance = v;
        }
        if let Some(v) = doc.get("min_share_pct").and_then(Value::as_num) {
            budgets.min_share_pct = v;
        }
        if let Some(spans) = doc.get("spans").and_then(Value::as_obj) {
            budgets.spans = spans
                .iter()
                .map(|(name, v)| {
                    v.as_num()
                        .map(|t| (name.clone(), t))
                        .ok_or_else(|| format!("span budget `{name}` is not a number"))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(ignore) = doc.get("ignore").and_then(Value::as_arr) {
            budgets.ignore = ignore
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "ignore entry is not a string".to_owned())
                })
                .collect::<Result<_, _>>()?;
        }
        Ok(budgets)
    }

    fn ignored(&self, name: &str) -> bool {
        self.ignore.iter().any(|p| glob_match(p, name))
    }

    fn span_tolerance(&self, path: &str, leaf: &str) -> f64 {
        self.spans
            .iter()
            .find(|(p, _)| glob_match(p, path) || glob_match(p, leaf))
            .map(|(_, t)| *t)
            .unwrap_or(self.default_share_tolerance)
    }
}

/// `*`-wildcard match (no character classes), anchored at both ends.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut rest = text;
    let last = parts.len() - 1;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            let Some(tail) = rest.strip_prefix(part) else {
                return false;
            };
            rest = tail;
        } else if i == last {
            return rest.ends_with(part);
        } else if let Some(pos) = rest.find(part) {
            rest = &rest[pos + part.len()..];
        } else {
            return false;
        }
    }
    true
}

/// How bad one observed difference is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Worth a human glance, never fails the gate (new metrics,
    /// improvements, wall-clock delta).
    Info,
    /// Fails the gate.
    Regression,
}

/// One observed difference between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Gate impact.
    pub severity: Severity,
    /// The metric or span the finding is about.
    pub metric: String,
    /// Human-readable explanation with both values.
    pub detail: String,
}

/// The full comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct Diff {
    /// Everything observed, regressions first.
    pub findings: Vec<Finding>,
}

impl Diff {
    /// Number of gate-failing findings.
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .count()
    }

    /// True when the candidate is within budget.
    pub fn pass(&self) -> bool {
        self.regressions() == 0
    }

    /// Multi-line human verdict.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Info => "info",
                Severity::Regression => "REGRESSION",
            };
            out.push_str(&format!("{tag:>10}  {}  {}\n", f.metric, f.detail));
        }
        if self.pass() {
            out.push_str("PASS: candidate within perf budgets\n");
        } else {
            out.push_str(&format!(
                "FAIL: {} perf regression(s) over budget\n",
                self.regressions()
            ));
        }
        out
    }

    /// Machine verdict (`bench.diff.v1`).
    pub fn to_json(&self) -> String {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    (
                        "severity".into(),
                        Value::Str(
                            match f.severity {
                                Severity::Info => "info",
                                Severity::Regression => "regression",
                            }
                            .into(),
                        ),
                    ),
                    ("metric".into(), Value::Str(f.metric.clone())),
                    ("detail".into(), Value::Str(f.detail.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str("bench.diff.v1".into())),
            ("pass".into(), Value::Bool(self.pass())),
            ("regressions".into(), Value::Num(self.regressions() as f64)),
            ("findings".into(), Value::Arr(findings)),
        ])
        .to_json_pretty()
    }
}

/// One report flattened for comparison.
struct Flat {
    wall_ms: f64,
    counters: Vec<(String, f64)>,
    gauges: Vec<(String, f64)>,
    /// `(full ;-joined path, leaf name, total_ms)`.
    spans: Vec<(String, String, f64)>,
}

fn flatten(doc: &Value) -> Result<Flat, String> {
    let wall_ms = doc
        .get("wall_ms")
        .and_then(Value::as_num)
        .ok_or("report lacks numeric `wall_ms`")?;
    let section = |name: &str| -> Vec<(String, f64)> {
        doc.get(name)
            .and_then(Value::as_obj)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut spans = Vec::new();
    if let Some(forest) = doc.get("spans").and_then(Value::as_arr) {
        for node in forest {
            flatten_span(node, "", &mut spans);
        }
    }
    Ok(Flat {
        wall_ms,
        counters: section("counters"),
        gauges: section("gauges"),
        spans,
    })
}

fn flatten_span(node: &Value, prefix: &str, out: &mut Vec<(String, String, f64)>) {
    let Some(name) = node.get("name").and_then(Value::as_str) else {
        return;
    };
    let path = if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix};{name}")
    };
    if let Some(total_ms) = node.get("total_ms").and_then(Value::as_num) {
        out.push((path.clone(), name.to_owned(), total_ms));
    }
    if let Some(children) = node.get("children").and_then(Value::as_arr) {
        for child in children {
            flatten_span(child, &path, out);
        }
    }
}

fn lookup<'a>(pairs: &'a [(String, f64)], name: &str) -> Option<&'a f64> {
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Compares a candidate report against a baseline under the given
/// budgets. Both arguments are parsed report documents (v1 or v2).
///
/// # Errors
///
/// Returns a description of the problem when either report is
/// structurally unusable (no `wall_ms`, zero wall).
pub fn diff_reports(
    baseline: &Value,
    candidate: &Value,
    budgets: &Budgets,
) -> Result<Diff, String> {
    let base = flatten(baseline)?;
    let cand = flatten(candidate)?;
    if base.wall_ms <= 0.0 || cand.wall_ms <= 0.0 {
        return Err("reports must have positive wall_ms".into());
    }
    let mut regressions = Vec::new();
    let mut infos = Vec::new();

    // Wall delta is always informational: it is exactly the number the
    // share normalization makes the gate robust to.
    infos.push(Finding {
        severity: Severity::Info,
        metric: "wall_ms".into(),
        detail: format!(
            "{:.1} -> {:.1} ({:+.1}%)",
            base.wall_ms,
            cand.wall_ms,
            (cand.wall_ms / base.wall_ms - 1.0) * 100.0
        ),
    });

    for (section, base_vals, cand_vals) in [
        ("counters", &base.counters, &cand.counters),
        ("gauges", &base.gauges, &cand.gauges),
    ] {
        for (name, base_v) in base_vals {
            if budgets.ignored(name) {
                continue;
            }
            match lookup(cand_vals, name) {
                None => regressions.push(Finding {
                    severity: Severity::Regression,
                    metric: format!("{section}.{name}"),
                    detail: format!("missing from candidate (baseline {base_v})"),
                }),
                Some(cand_v) if cand_v != base_v => regressions.push(Finding {
                    severity: Severity::Regression,
                    metric: format!("{section}.{name}"),
                    detail: format!("{base_v} -> {cand_v} (must match exactly)"),
                }),
                Some(_) => {}
            }
        }
        for (name, cand_v) in cand_vals {
            if !budgets.ignored(name) && lookup(base_vals, name).is_none() {
                infos.push(Finding {
                    severity: Severity::Info,
                    metric: format!("{section}.{name}"),
                    detail: format!("new in candidate ({cand_v})"),
                });
            }
        }
    }

    for (path, leaf, base_ms) in &base.spans {
        let base_share = base_ms / base.wall_ms;
        if base_share * 100.0 < budgets.min_share_pct {
            continue;
        }
        let Some((_, _, cand_ms)) = cand.spans.iter().find(|(p, _, _)| p == path) else {
            regressions.push(Finding {
                severity: Severity::Regression,
                metric: format!("span {path}"),
                detail: format!(
                    "missing from candidate (baseline {base_ms:.1} ms, {:.1}% of wall)",
                    base_share * 100.0
                ),
            });
            continue;
        };
        let cand_share = cand_ms / cand.wall_ms;
        let rel = cand_share / base_share - 1.0;
        let tolerance = budgets.span_tolerance(path, leaf);
        let detail = format!(
            "share of wall {:.2}% -> {:.2}% ({:+.1}% rel, budget {:.0}%)",
            base_share * 100.0,
            cand_share * 100.0,
            rel * 100.0,
            tolerance * 100.0,
        );
        if rel > tolerance {
            regressions.push(Finding {
                severity: Severity::Regression,
                metric: format!("span {path}"),
                detail,
            });
        } else if rel < -tolerance {
            infos.push(Finding {
                severity: Severity::Info,
                metric: format!("span {path}"),
                detail: format!("{detail} — improvement"),
            });
        }
    }
    for (path, _, cand_ms) in &cand.spans {
        let cand_share = cand_ms / cand.wall_ms;
        if cand_share * 100.0 >= budgets.min_share_pct
            && !base.spans.iter().any(|(p, _, _)| p == path)
        {
            infos.push(Finding {
                severity: Severity::Info,
                metric: format!("span {path}"),
                detail: format!("new in candidate ({cand_ms:.1} ms)"),
            });
        }
    }

    regressions.extend(infos);
    Ok(Diff {
        findings: regressions,
    })
}

/// Multiplies the timing of every span named `span` in the report by
/// `factor` — the `--seed-regression` self-test knob that lets CI prove
/// the gate actually fails on a seeded slowdown, without fixture files.
pub fn seed_regression(doc: &mut Value, span: &str, factor: f64) -> usize {
    fn walk(node: &mut Value, span: &str, factor: f64) -> usize {
        let mut hits = 0;
        let Value::Obj(fields) = node else {
            return 0;
        };
        let is_target = fields
            .iter()
            .any(|(k, v)| k == "name" && v.as_str() == Some(span));
        for (k, v) in fields.iter_mut() {
            if is_target && matches!(k.as_str(), "total_ms" | "max_ms" | "self_ms") {
                if let Value::Num(n) = v {
                    *n *= factor;
                    if k == "total_ms" {
                        hits += 1;
                    }
                }
            }
            if k == "children" {
                if let Value::Arr(children) = v {
                    for child in children {
                        hits += walk(child, span, factor);
                    }
                }
            }
        }
        hits
    }
    let mut hits = 0;
    if let Value::Obj(fields) = doc {
        for (k, v) in fields.iter_mut() {
            if k == "spans" {
                if let Value::Arr(forest) = v {
                    for node in forest {
                        hits += walk(node, span, factor);
                    }
                }
            }
        }
    }
    hits
}

#[cfg(test)]
// ALLOW: test-only panics are the assertion mechanism.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn report(wall: f64, pairs: u64, verify_ms: f64, train_ms: f64) -> Value {
        json::parse(&format!(
            r#"{{
              "schema": "obskit.bench.v2",
              "bench": "t", "args": [], "wall_ms": {wall},
              "counters": {{"dpo.pairs_trained": {pairs}, "pool.steals": 7}},
              "gauges": {{"headline.after_pct": 90.45, "tinylm.pretrain_tokens_per_sec": 81000.0}},
              "histograms": {{}},
              "spans": [
                {{"name": "pipeline.run", "count": 1, "total_ms": {wall},
                  "max_ms": {wall}, "self_ms": 0, "alloc_count": 0, "alloc_bytes": 0,
                  "children": [
                    {{"name": "pipeline.verify", "count": 30, "total_ms": {verify_ms},
                      "max_ms": 9, "self_ms": {verify_ms}, "alloc_count": 0, "alloc_bytes": 0,
                      "children": []}},
                    {{"name": "dpo.train", "count": 2, "total_ms": {train_ms},
                      "max_ms": 50, "self_ms": {train_ms}, "alloc_count": 0, "alloc_bytes": 0,
                      "children": []}}
                  ]}}
              ]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(100.0, 96, 40.0, 30.0);
        let d = diff_reports(&a, &a, &Budgets::defaults()).expect("diff runs");
        assert!(d.pass(), "{}", d.render_human());
        // Only the informational wall line.
        assert_eq!(d.regressions(), 0);
        assert!(d.to_json().contains("\"pass\": true"));
    }

    #[test]
    fn uniformly_slower_machine_passes() {
        // 2x slower across the board: counters identical, shares identical.
        let base = report(100.0, 96, 40.0, 30.0);
        let cand = report(200.0, 96, 80.0, 60.0);
        let d = diff_reports(&base, &cand, &Budgets::defaults()).expect("diff runs");
        assert!(d.pass(), "{}", d.render_human());
    }

    #[test]
    fn ten_percent_span_regression_fails() {
        let base = report(100.0, 96, 40.0, 30.0);
        let mut cand = report(100.0, 96, 40.0, 30.0);
        assert_eq!(seed_regression(&mut cand, "dpo.train", 1.10), 1);
        let d = diff_reports(&base, &cand, &Budgets::defaults()).expect("diff runs");
        assert!(!d.pass());
        let verdict = d.render_human();
        assert!(verdict.contains("dpo.train"), "{verdict}");
        assert!(verdict.contains("REGRESSION"), "{verdict}");
        // The untouched sibling stays inside budget.
        assert_eq!(d.regressions(), 1, "{verdict}");
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let base = report(100.0, 96, 40.0, 30.0);
        let cand = report(100.0, 95, 40.0, 30.0);
        let d = diff_reports(&base, &cand, &Budgets::defaults()).expect("diff runs");
        assert!(!d.pass());
        assert!(d.render_human().contains("dpo.pairs_trained"));
    }

    #[test]
    fn ignored_and_new_metrics_do_not_fail() {
        let base = report(100.0, 96, 40.0, 30.0);
        // Same workload, but: steal count drifted (scheduler noise),
        // throughput gauge changed (machine speed), and the candidate
        // carries brand-new allocator metrics. None of that may fail.
        let cand = json::parse(
            r#"{
              "schema": "obskit.bench.v2",
              "bench": "t", "args": [], "wall_ms": 100,
              "counters": {"dpo.pairs_trained": 96, "pool.steals": 900,
                           "alloc.allocs": 123},
              "gauges": {"headline.after_pct": 90.45,
                         "tinylm.pretrain_tokens_per_sec": 55000.0,
                         "alloc.peak_bytes": 123456.0},
              "histograms": {},
              "spans": [
                {"name": "pipeline.run", "count": 1, "total_ms": 100,
                  "max_ms": 100, "self_ms": 0, "alloc_count": 9, "alloc_bytes": 512,
                  "children": [
                    {"name": "pipeline.verify", "count": 30, "total_ms": 40,
                      "max_ms": 9, "self_ms": 40, "alloc_count": 0, "alloc_bytes": 0,
                      "children": []},
                    {"name": "dpo.train", "count": 2, "total_ms": 30,
                      "max_ms": 50, "self_ms": 30, "alloc_count": 0, "alloc_bytes": 0,
                      "children": []}
                  ]}
              ]
            }"#,
        )
        .unwrap();
        let d = diff_reports(&base, &cand, &Budgets::defaults()).expect("diff runs");
        assert!(d.pass(), "{}", d.render_human());
    }

    #[test]
    fn missing_span_and_counter_fail() {
        let base = report(100.0, 96, 40.0, 30.0);
        // The candidate lost the pairs counter and the dpo.train span.
        let cand = json::parse(
            r#"{
              "schema": "obskit.bench.v2",
              "bench": "t", "args": [], "wall_ms": 100,
              "counters": {"pool.steals": 7},
              "gauges": {"headline.after_pct": 90.45,
                         "tinylm.pretrain_tokens_per_sec": 81000.0},
              "histograms": {},
              "spans": [
                {"name": "pipeline.run", "count": 1, "total_ms": 100,
                  "max_ms": 100, "self_ms": 0, "alloc_count": 0, "alloc_bytes": 0,
                  "children": [
                    {"name": "pipeline.verify", "count": 30, "total_ms": 40,
                      "max_ms": 9, "self_ms": 40, "alloc_count": 0, "alloc_bytes": 0,
                      "children": []}
                  ]}
              ]
            }"#,
        )
        .unwrap();
        let d = diff_reports(&base, &cand, &Budgets::defaults()).expect("diff runs");
        assert!(!d.pass());
        let human = d.render_human();
        assert!(human.contains("counters.dpo.pairs_trained"), "{human}");
        assert!(human.contains("span pipeline.run;dpo.train"), "{human}");
    }

    #[test]
    fn budgets_file_overrides_apply() {
        let budgets = Budgets::parse(
            r#"{
              "schema": "bench.budgets.v1",
              "default_share_tolerance": 0.5,
              "min_share_pct": 2.0,
              "spans": {"dpo.*": 0.02},
              "ignore": ["pool.steals"]
            }"#,
        )
        .expect("budgets parse");
        assert_eq!(budgets.default_share_tolerance, 0.5);
        assert_eq!(budgets.min_share_pct, 2.0);
        assert_eq!(
            budgets.span_tolerance("pipeline.run;dpo.train", "dpo.train"),
            0.02
        );
        assert_eq!(
            budgets.span_tolerance("pipeline.verify", "pipeline.verify"),
            0.5
        );
        assert!(budgets.ignored("pool.steals"));
        assert!(!budgets.ignored("alloc.peak_bytes"));

        // The tight dpo.* override now catches a +5% drift the loose
        // default would wave through.
        let base = report(100.0, 96, 40.0, 30.0);
        let mut cand = report(100.0, 96, 40.0, 30.0);
        seed_regression(&mut cand, "dpo.train", 1.05);
        let d = diff_reports(&base, &cand, &budgets).expect("diff runs");
        assert!(!d.pass());

        assert!(Budgets::parse("{}").is_err());
        assert!(Budgets::parse("{\"schema\": \"bench.budgets.v9\"}").is_err());
    }

    #[test]
    fn glob_match_covers_the_pattern_shapes() {
        assert!(glob_match("alloc.*", "alloc.peak_bytes"));
        assert!(glob_match("*_per_sec", "tinylm.pretrain_tokens_per_sec"));
        assert!(glob_match("*.tokens_per_sec", "sim.tokens_per_sec"));
        assert!(glob_match("pool.steals", "pool.steals"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*c*e", "abcde"));
        assert!(!glob_match("alloc.*", "dpo.pairs_trained"));
        assert!(!glob_match("a*c", "ab"));
        assert!(!glob_match("abc", "abcd"));
    }
}
