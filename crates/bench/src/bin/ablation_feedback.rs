//! Ablation A1 — feedback-source consistency (paper §5.2): does ranking
//! responses by *formal verification* agree with ranking them by
//! *empirical simulator evaluation*?
//!
//! For sampled responses we compute both scores and report pairwise rank
//! concordance (fraction of strictly-ordered response pairs on which the
//! two feedback sources agree). The paper argues the two are consistent,
//! so empirical evaluation can substitute when no world model exists.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::field_reassign_with_default)] // ALLOW: config structs are built by
                                               // mutating a Default, which reads better than giant struct-update literals

use bench::{table, BenchCli};
use dpo_af::domain::DomainBundle;
use dpo_af::feedback::{empirical_rates, score_tokens};
use dpo_af::pipeline::{DpoAf, PipelineConfig};
use obskit::progress;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinylm::SampleOptions;

fn main() {
    let cli = BenchCli::parse("ablation_feedback");
    let mut cfg = PipelineConfig::default();
    let (samples, episodes) = if cli.fast {
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
        (3, 4)
    } else {
        (6, 12)
    };
    let pipeline = DpoAf::new(cfg);
    let mut rng = StdRng::seed_from_u64(pipeline.config.seed);
    progress!("pretraining the language model …");
    let lm = pipeline.pretrained_lm(&mut rng);
    let bundle: &DomainBundle = &pipeline.bundle;

    let opts = SampleOptions {
        temperature: 1.1,
        max_len: 60,
        ..SampleOptions::default()
    };
    let mut rows = Vec::new();
    let mut concordant = 0usize;
    let mut discordant = 0usize;
    for task in &bundle.tasks {
        // Score each sampled response both ways.
        let mut scored: Vec<(usize, f64)> = Vec::new();
        for _ in 0..samples {
            let tokens = lm.sample(task.id, &mut rng, opts).expect("task in range");
            let formal = score_tokens(bundle, task, &tokens);
            let empirical = match &formal.controller {
                None => 0.0, // unalignable: nothing to run
                Some(ctrl) => {
                    let rates = empirical_rates(bundle, task, ctrl, episodes, 40, &mut rng);
                    rates.iter().map(|(_, r)| r).sum::<f64>() / rates.len() as f64
                }
            };
            scored.push((formal.num_satisfied, empirical));
        }
        for i in 0..scored.len() {
            for j in (i + 1)..scored.len() {
                let (f1, e1) = scored[i];
                let (f2, e2) = scored[j];
                if f1 == f2 || (e1 - e2).abs() < 1e-9 {
                    continue;
                }
                if (f1 > f2) == (e1 > e2) {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
        let mean_formal = scored.iter().map(|&(f, _)| f as f64).sum::<f64>() / scored.len() as f64;
        let mean_emp = scored.iter().map(|&(_, e)| e).sum::<f64>() / scored.len() as f64;
        rows.push(vec![
            task.prompt.clone(),
            format!("{mean_formal:.2}/15"),
            format!("{mean_emp:.3}"),
        ]);
    }
    println!(
        "{}",
        table(
            "A1 — mean formal score vs mean empirical satisfaction per task",
            &["task", "formal (specs)", "empirical (mean P_Φ)"],
            &rows
        )
    );
    let total = concordant + discordant;
    let agreement = if total == 0 {
        1.0
    } else {
        concordant as f64 / total as f64
    };
    println!(
        "rank concordance between formal and empirical feedback: {:.1}% \
         ({concordant} concordant / {discordant} discordant pairs)\n",
        agreement * 100.0
    );

    // Part 2: fine-tune end-to-end under each feedback source and compare
    // the improvement — empirical feedback should substitute for formal
    // verification, the paper's §4.2 claim.
    use dpo_af::pipeline::FeedbackSource;
    let mut rows = Vec::new();
    for (label, feedback) in [
        ("formal verification", FeedbackSource::Formal),
        (
            "empirical (simulator)",
            FeedbackSource::Empirical {
                episodes: 6,
                steps: 30,
            },
        ),
    ] {
        let mut cfg = PipelineConfig::default();
        cfg.feedback = feedback;
        if cli.fast {
            cfg.corpus_size = 300;
            cfg.pretrain.epochs = 3;
            cfg.train.epochs = 10;
            cfg.iterations = 1;
            cfg.eval_samples = 2;
        } else {
            cfg.train.epochs = 40;
            cfg.iterations = 2;
        }
        // Evaluation itself always uses the configured source; report the
        // formal score for comparability by evaluating with a formal twin.
        progress!("running the pipeline with {label} feedback …");
        let run_pipeline = DpoAf::new(cfg);
        let artifacts = run_pipeline.run();
        let mut eval_cfg = PipelineConfig::default();
        eval_cfg.feedback = FeedbackSource::Formal;
        eval_cfg.eval_samples = 6;
        let eval_pipeline = DpoAf::new(eval_cfg);
        let mut eval_rng = StdRng::seed_from_u64(4242);
        let tasks: Vec<usize> = (0..eval_pipeline.bundle.tasks.len()).collect();
        let before = eval_pipeline.evaluate(&artifacts.reference, &tasks, &mut eval_rng);
        let after = eval_pipeline.evaluate(&artifacts.policy, &tasks, &mut eval_rng);
        rows.push(vec![
            label.to_owned(),
            format!("{before:.2}/15"),
            format!("{after:.2}/15"),
            artifacts.dataset_size.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            "A1 — end-to-end fine-tuning by feedback source (formal re-evaluation)",
            &["feedback source", "before", "after", "pairs"],
            &rows
        )
    );
    cli.finish();
}
