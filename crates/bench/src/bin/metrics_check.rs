//! Validates a `BENCH_<name>.json` metrics report against the
//! `obskit.bench.v2` schema (v1 reports are still accepted, without the
//! v2-only quantile/allocation fields), optionally requiring specific
//! metrics and spans to be present — the CI gate behind `--metrics-out`.
//!
//! ```text
//! metrics_check <report.json> [--require m1,m2,…] [--require-span s1,s2,…]
//! ```
//!
//! Exit codes: 0 = conformant, 1 = validation problems (printed one per
//! line), 2 = usage or I/O error.

use obskit::report::{validate, Requirements};
use std::process::ExitCode;

fn split_list(arg: Option<String>) -> Vec<String> {
    arg.map(|s| {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect()
    })
    .unwrap_or_default()
}

fn main() -> ExitCode {
    let mut path = None;
    let mut req = Requirements::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => req.metrics.extend(split_list(args.next())),
            "--require-span" => req.spans.extend(split_list(args.next())),
            _ if path.is_none() => path = Some(arg),
            _ => {
                eprintln!("unexpected argument `{arg}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: metrics_check <report.json> [--require m1,m2,…] [--require-span s1,s2,…]"
        );
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate(&text, &req) {
        Ok(()) => {
            println!(
                "{path}: conformant ({} required metrics, {} required spans)",
                req.metrics.len(),
                req.spans.len()
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("{path}: {p}");
            }
            eprintln!("{path}: {} problem(s)", problems.len());
            ExitCode::FAILURE
        }
    }
}
