//! Ablation A3 — responses per prompt: the paper samples `m` responses
//! per task and forms up to `N · C(m, 2)` preference pairs. This sweep
//! measures the realized pair yield (ties produce no pair) and the
//! quality gap between winners and losers as `m` grows.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::{table, BenchCli};
use dpo_af::feedback::score_tokens;
use dpo_af::pipeline::{DpoAf, PipelineConfig};
use obskit::progress;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinylm::SampleOptions;

fn main() {
    let cli = BenchCli::parse("ablation_m");
    let mut cfg = PipelineConfig::default();
    if cli.fast {
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
    }
    let pipeline = DpoAf::new(cfg);
    let mut rng = StdRng::seed_from_u64(pipeline.config.seed);
    progress!("pretraining the language model …");
    let lm = pipeline.pretrained_lm(&mut rng);
    let opts = SampleOptions {
        temperature: 1.1,
        max_len: 60,
        ..SampleOptions::default()
    };

    let mut rows = Vec::new();
    for m in [2usize, 4, 6, 8] {
        let mut pairs = 0usize;
        let mut winner_sum = 0usize;
        let mut loser_sum = 0usize;
        for task in &pipeline.bundle.tasks {
            let scores: Vec<usize> = (0..m)
                .map(|_| {
                    let tokens = lm.sample(task.id, &mut rng, opts).expect("task in range");
                    score_tokens(&pipeline.bundle, task, &tokens).num_satisfied
                })
                .collect();
            for i in 0..m {
                for j in (i + 1)..m {
                    if scores[i] != scores[j] {
                        pairs += 1;
                        winner_sum += scores[i].max(scores[j]);
                        loser_sum += scores[i].min(scores[j]);
                    }
                }
            }
        }
        let max_pairs = pipeline.bundle.tasks.len() * m * (m - 1) / 2;
        rows.push(vec![
            m.to_string(),
            format!("{pairs} / {max_pairs}"),
            if pairs > 0 {
                format!(
                    "{:.2} vs {:.2}",
                    winner_sum as f64 / pairs as f64,
                    loser_sum as f64 / pairs as f64
                )
            } else {
                "-".into()
            },
        ]);
    }
    println!(
        "{}",
        table(
            "A3 — preference-pair yield vs responses per prompt m",
            &[
                "m",
                "pairs (realized / N·C(m,2))",
                "winner vs loser mean score"
            ],
            &rows
        )
    );
    cli.finish();
}
