//! CI gate for the kernel modes (DESIGN.md §13).
//!
//! Three checks, each over the real sequence graphs rather than kernel
//! micro-inputs, so the whole fused forward/backward composition is
//! under test:
//!
//! 1. **Fast-mode tolerance, per sequence**: forward log-likelihoods and
//!    full parameter gradients from pinned `fast` workspaces must stay
//!    within an explicit absolute/relative envelope of pinned
//!    `reference` workspaces across a spread of sequence lengths. Fast
//!    mode reassociates accumulation and contracts to FMA — it is the
//!    one deliberate exception to the repo's byte-identity rule, and
//!    this gate is what bounds the exception.
//! 2. **Fast-mode tolerance, end to end**: a short DPO training run on
//!    a fixed synthetic preference set under each mode; final weights
//!    must agree within a generous envelope (per-step deviations
//!    compound through the optimizer, so this bound is looser).
//! 3. **Pooled-backward byte-equality**: `seq_grad_pooled_in` at 2 and
//!    4 threads must be *bit-identical* to the serial gradient — the
//!    pooled pass partitions complete per-element folds and is covered
//!    by the strict rule, no tolerance.
//!
//! Exit codes: 0 = all gates hold, 1 = tolerance exceeded, 2 = pooled
//! byte-equality violated.

#![allow(clippy::expect_used)] // ALLOW: gate binary — panicking on a broken setup is the gate.

use bench::{table, BenchCli};
use dpo::{DpoTrainer, PreferenceDataset, PreferencePair, TrainOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use tinylm::{AdaptMode, CondLm, KernelMode, LmConfig, SeqWorkspace};

/// Max |a-b| scaled by max(1, |a|, |b|) over a pair of slices.
fn max_rel_dev(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let scale = f64::from(x.abs().max(y.abs())).max(1.0);
            (f64::from(x) - f64::from(y)).abs() / scale
        })
        .fold(0.0, f64::max)
}

/// A mid-size model (full-rank so every parameter gets a gradient) and
/// a deterministic batch of ragged sequences exercising every kernel
/// shape: short, long, and empty-context starts.
fn setup() -> (CondLm, Vec<(usize, Vec<tinylm::Token>)>) {
    let cfg = LmConfig {
        vocab_size: 40,
        num_tasks: 3,
        adapt: AdaptMode::Full,
        ..LmConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(41);
    let model = CondLm::new(cfg, &mut rng);
    let seqs = (0..12)
        .map(|i| {
            let len = 1 + (i * 5) % 11;
            let toks = (0..len)
                .map(|_| rng.gen_range(3..40u32))
                .collect::<Vec<_>>();
            (i % 3, toks)
        })
        .collect();
    (model, seqs)
}

/// Fixed synthetic preference set for the end-to-end check.
fn preference_set() -> PreferenceDataset {
    let mut ds = PreferenceDataset::new();
    for t in 0..12u32 {
        ds.push(PreferencePair {
            task: (t % 3) as usize,
            winner: vec![3 + (t % 7), 10, 4 + (t % 5)],
            loser: vec![20 + (t % 9), 15, 30 + (t % 4), 7],
        });
    }
    ds
}

/// Trains a clone of `policy` with the process-global kernel mode set
/// to `mode` and returns the final parameters.
fn train_under(mode: KernelMode, policy: &CondLm, ds: &PreferenceDataset) -> Vec<f32> {
    tinylm::kernels::set_mode(mode);
    let trainer = DpoTrainer::new(TrainOptions {
        epochs: 4,
        pairs_per_epoch: Some(8),
        batch_size: 4,
        ..TrainOptions::default()
    });
    let mut p = policy.clone();
    let mut rng = StdRng::seed_from_u64(17);
    trainer
        .train_in(&mut p, policy, ds, &mut rng, |_, _| {}, None)
        .expect("dataset uses model vocabulary");
    tinylm::kernels::set_mode(KernelMode::Reference);
    p.params().to_vec()
}

// Tolerances. Per-sequence deviations come from reassociated f32 dots
// (≈ lanes · ulp per accumulation step); the end-to-end bound is looser
// because Adam steps compound per-batch deviations multiplicatively.
const VALUE_TOL: f64 = 1e-5;
const GRAD_TOL: f64 = 1e-4;
const TRAIN_TOL: f64 = 5e-3;

fn main() -> ExitCode {
    let cli = BenchCli::parse("kernel_gate");
    let (model, seqs) = setup();

    // Gate 1: pinned-mode workspaces, per-sequence value + gradient.
    let mut ws_ref = SeqWorkspace::with_mode(KernelMode::Reference);
    let mut ws_fast = SeqWorkspace::with_mode(KernelMode::Fast);
    let mut value_dev = 0.0f64;
    let mut grad_dev = 0.0f64;
    for (task, toks) in &seqs {
        ws_ref.reset();
        ws_fast.reset();
        let g_ref = model
            .seq_forward_in(*task, toks, &mut ws_ref)
            .expect("valid sequence");
        let g_fast = model
            .seq_forward_in(*task, toks, &mut ws_fast)
            .expect("valid sequence");
        value_dev = value_dev.max(max_rel_dev(&[g_ref.value()], &[g_fast.value()]));
        let d_ref = model.seq_grad_in(&g_ref, &mut ws_ref);
        let d_fast = model.seq_grad_in(&g_fast, &mut ws_fast);
        grad_dev = grad_dev.max(max_rel_dev(&d_ref.0, &d_fast.0));
    }

    // Gate 2: end-to-end training under each mode.
    let ds = preference_set();
    let p_ref = train_under(KernelMode::Reference, &model, &ds);
    let p_fast = train_under(KernelMode::Fast, &model, &ds);
    let train_dev = max_rel_dev(&p_ref, &p_fast);

    // Gate 3: pooled backward is bit-identical at any thread count.
    let mut pooled_ok = true;
    for threads in [1usize, 2, 4] {
        let pool = parkit::ThreadPool::new(threads);
        for (task, toks) in &seqs {
            ws_ref.reset();
            let g = model
                .seq_forward_in(*task, toks, &mut ws_ref)
                .expect("valid sequence");
            let serial = model.seq_grad_in(&g, &mut ws_ref);
            let pooled = model.seq_grad_pooled_in(&g, &mut ws_ref, &pool);
            if serial
                .0
                .iter()
                .zip(&pooled.0)
                .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                pooled_ok = false;
            }
        }
    }

    let verdict = |dev: f64, tol: f64| {
        if dev <= tol {
            "ok"
        } else {
            "FAIL"
        }
    };
    let rows = vec![
        vec![
            "fast value dev (rel)".into(),
            format!("{value_dev:.2e}"),
            format!("<= {VALUE_TOL:.0e}"),
            verdict(value_dev, VALUE_TOL).into(),
        ],
        vec![
            "fast grad dev (rel)".into(),
            format!("{grad_dev:.2e}"),
            format!("<= {GRAD_TOL:.0e}"),
            verdict(grad_dev, GRAD_TOL).into(),
        ],
        vec![
            "fast trained-params dev (rel)".into(),
            format!("{train_dev:.2e}"),
            format!("<= {TRAIN_TOL:.0e}"),
            verdict(train_dev, TRAIN_TOL).into(),
        ],
        vec![
            "pooled backward (1/2/4 threads)".into(),
            if pooled_ok {
                "bit-identical".into()
            } else {
                "DIVERGED".into()
            },
            "bit-identical".into(),
            if pooled_ok { "ok" } else { "FAIL" }.into(),
        ],
    ];
    println!(
        "{}",
        table(
            "kernel_gate — reference vs fast vs pooled",
            &["check", "observed", "bound", "verdict"],
            &rows,
        )
    );
    let _ = cli.finish();

    if !pooled_ok {
        return ExitCode::from(2);
    }
    if value_dev > VALUE_TOL || grad_dev > GRAD_TOL || train_dev > TRAIN_TOL {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
