//! Rule-book sanity: lints the 15 driving specifications.
//!
//! A rule that is unsatisfiable fails every controller; a tautology
//! passes every controller; and a `□(a → b)` rule whose antecedent never
//! occurs in a scenario constrains nothing there (vacuity). This tool
//! runs all three checks so trust in the feedback signal rests on a
//! lint-clean rule book — the spec-authoring hygiene NuSMV users get from
//! `check_ltlspec` warnings.

use autokit::{presets::DrivingDomain, ActSet, ControllerBuilder, DeadlockPolicy, Guard, Product};
use bench::table;
use dpo_af::feedback::scenario_model;
use drivesim::ScenarioKind;
use ltlcheck::analysis::{satisfiable, valid, vacuous_pass, Vacuity};
use ltlcheck::specs::driving_specs;

fn main() {
    let d = DrivingDomain::new();
    let specs = driving_specs(&d);

    // Global formula checks.
    let mut rows = Vec::new();
    for s in &specs {
        rows.push(vec![
            s.name.clone(),
            if satisfiable(&s.formula) { "yes" } else { "NO" }.into(),
            if valid(&s.formula) { "TAUTOLOGY" } else { "no" }.into(),
            s.description.clone(),
        ]);
    }
    println!(
        "{}",
        table(
            "rule-book lint — formula-level checks",
            &["spec", "satisfiable", "tautology", "meaning"],
            &rows
        )
    );

    // Per-scenario vacuity against a maximally permissive controller
    // (every action always allowed): if a rule passes vacuously even
    // under full behavioural freedom, its antecedent is unreachable in
    // that scenario.
    let mut free = ControllerBuilder::new("free", 1).initial(0);
    for (i, act) in [d.stop, d.turn_left, d.turn_right, d.go_straight]
        .into_iter()
        .enumerate()
    {
        free = free.transition(0, Guard::always(), ActSet::singleton(act), 0);
        let _ = i;
    }
    let free = free.build().expect("valid controller");

    let mut rows = Vec::new();
    for kind in ScenarioKind::all() {
        let model = scenario_model(&d, kind);
        let product = Product::build(&model, &free);
        let graph = product.label_graph(DeadlockPolicy::Stutter);
        let vacuous: Vec<String> = specs
            .iter()
            .filter_map(|s| match vacuous_pass(&graph, &s.formula) {
                Some(Vacuity::UnreachableAntecedent(_)) => Some(s.name.clone()),
                Some(Vacuity::Tautology) => Some(format!("{} (taut.)", s.name)),
                None => None,
            })
            .collect();
        rows.push(vec![
            format!("{kind:?}"),
            if vacuous.is_empty() {
                "-".into()
            } else {
                vacuous.join(", ")
            },
        ]);
    }
    println!(
        "{}",
        table(
            "rule-book lint — per-scenario vacuous passes (unreachable antecedents)",
            &["scenario", "vacuously satisfied rules"],
            &rows
        )
    );
    println!(
        "vacuous entries are expected: e.g. stop-sign rules cannot trigger at a\n\
         traffic light. They simply do not constrain that scenario."
    );
}
