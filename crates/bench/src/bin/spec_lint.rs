//! Rule-book sanity: thin wrapper over the `speclint` static-analysis
//! crate. Lints the driving and warehouse rule books (satisfiability,
//! tautology, vacuity, conflicts, subsumption) plus the paper's
//! demonstration controllers and step lists, and prints the findings.
//!
//! For machine-readable output or CI gating use the `speclint` binary
//! (`cargo run -p speclint -- --format json` / `--deny-warnings`).

use bench::BenchCli;
use speclint::presets::{driving_input, warehouse_input};
use speclint::Tally;

fn main() {
    let cli = BenchCli::parse("spec_lint");
    let mut diags = speclint::run(&driving_input());
    diags.extend(speclint::run(&warehouse_input()));

    for d in &diags {
        println!("{d}");
    }
    let tally = Tally::of(&diags);
    println!(
        "speclint: {} error(s), {} warning(s), {} note(s)",
        tally.errors, tally.warnings, tally.notes
    );
    println!(
        "note-level entries are expected: e.g. stop-sign rules cannot trigger\n\
         at a traffic light (vacuous pass) — they simply do not constrain\n\
         that scenario."
    );
    obskit::counter_add("speclint.diagnostics", diags.len() as u64);
    cli.finish();
    assert_eq!(tally.errors, 0, "shipped rule books must lint clean");
}
