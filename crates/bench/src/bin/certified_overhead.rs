//! Certified-mode overhead on the preset verification matrix.
//!
//! Certified mode makes every verdict carry machine-checkable evidence
//! and pays for an independent validation pass. This binary prices that
//! safety margin: the full preset scenario × rule-book matrix is checked
//! three ways — plain (`check_graph_fair`), certificate-emitting
//! (`check_graph_fair_certified`), and certificate-emitting plus
//! `certkit` validation — and the wall-clock cost of each is reported.
//! The last column is what `PipelineConfig::certified` costs per
//! verification call.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::{table, BenchCli};
use ltlcheck::{check_graph_fair, check_graph_fair_certified};
use std::time::Instant;

fn main() {
    let cli = BenchCli::parse("certified_overhead");
    let cases = certkit::presets::preset_cases();
    let checks: usize = cases.iter().map(|c| c.specs.len()).sum();
    println!(
        "preset matrix: {} cases, {} verification checks per pass\n",
        cases.len(),
        checks
    );

    const REPS: usize = 3;

    let t = Instant::now();
    let mut holds = 0usize;
    for _ in 0..REPS {
        holds = 0;
        for case in &cases {
            for spec in &case.specs {
                if check_graph_fair(&case.graph, &spec.formula, &case.justice).holds() {
                    holds += 1;
                }
            }
        }
    }
    let plain = t.elapsed() / REPS as u32;

    let t = Instant::now();
    let mut holds_cert = 0usize;
    for _ in 0..REPS {
        holds_cert = 0;
        for case in &cases {
            for spec in &case.specs {
                if check_graph_fair_certified(&case.graph, &spec.formula, &case.justice).holds() {
                    holds_cert += 1;
                }
            }
        }
    }
    let emit = t.elapsed() / REPS as u32;

    let t = Instant::now();
    for _ in 0..REPS {
        for case in &cases {
            for spec in &case.specs {
                let certified =
                    check_graph_fair_certified(&case.graph, &spec.formula, &case.justice);
                certkit::check_certified(&case.graph, &spec.formula, &case.justice, &certified)
                    .expect("preset evidence validates");
            }
        }
    }
    let validated = t.elapsed() / REPS as u32;

    assert_eq!(holds, holds_cert, "backends must agree on every verdict");

    let rows = vec![
        vec![
            "plain (check_graph_fair)".to_owned(),
            format!("{:.1}", plain.as_secs_f64() * 1e3),
            "1.00".to_owned(),
        ],
        vec![
            "certificate-emitting".to_owned(),
            format!("{:.1}", emit.as_secs_f64() * 1e3),
            format!("{:.2}", emit.as_secs_f64() / plain.as_secs_f64()),
        ],
        vec![
            "certified + validated".to_owned(),
            format!("{:.1}", validated.as_secs_f64() * 1e3),
            format!("{:.2}", validated.as_secs_f64() / plain.as_secs_f64()),
        ],
    ];
    println!(
        "{}",
        table(
            &format!("certified-mode overhead ({checks} checks, mean of {REPS} passes)"),
            &["mode", "ms/pass", "× plain"],
            &rows,
        )
    );
    obskit::gauge_set(
        "certified_overhead.validated_x_plain",
        validated.as_secs_f64() / plain.as_secs_f64(),
    );
    cli.finish();
}
