//! Ablation A4 — Algorithm 1's pruning step vs the "conservative
//! perspective" (paper §4.1): keeping all `2^|P|` candidate states avoids
//! missing transitions but "will significantly increase the computation
//! cost for formal verification". This binary quantifies the blow-up.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use autokit::{PropSet, WorldModelBuilder};
use bench::{table, BenchCli};
use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::RIGHT_TURN_AFTER;
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::specs::driving_specs;
use ltlcheck::verify_all;
use std::time::Instant;

fn main() {
    let cli = BenchCli::parse("ablation_conservative");
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let ctrl = synthesize(
        "turn right",
        &RIGHT_TURN_AFTER,
        &bundle.lexicon,
        FsaOptions::default(),
    )
    .expect("paper demo aligns");
    let ctrl = with_default_action(&ctrl, d.stop);
    let specs = driving_specs(d);

    // Pruned: the preset traffic-light model (single-change dynamics over
    // the scenario's five relevant propositions).
    let pruned = d.traffic_light_model();

    // Conservative: every subset of the five relevant propositions as a
    // state, with every transition allowed (nothing pruned, nothing
    // assumed about the dynamics).
    let props = [
        d.green_tl,
        d.car_left,
        d.opposite_car,
        d.ped_right,
        d.ped_front,
    ];
    let labels: Vec<PropSet> = (0..(1u32 << props.len()))
        .map(|mask| {
            let mut l = PropSet::empty();
            for (i, &p) in props.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    l.insert(p);
                }
            }
            l
        })
        .collect();
    let conservative = WorldModelBuilder::new(&d.vocab)
        .name("traffic light (conservative)")
        .restrict_labels(labels)
        .allow_transitions(|_, _| true)
        .conservative()
        .build();

    let mut rows = Vec::new();
    for (name, model) in [
        ("pruned (Algorithm 1)", &pruned),
        ("conservative", &conservative),
    ] {
        let t0 = Instant::now();
        let product = autokit::Product::build(model, &ctrl);
        let build_time = t0.elapsed();
        let t1 = Instant::now();
        let report = verify_all(
            model,
            &ctrl,
            specs.iter().map(|s| (s.name.as_str(), &s.formula)),
        );
        let verify_time = t1.elapsed();
        rows.push(vec![
            name.to_owned(),
            model.num_states().to_string(),
            model.num_transitions().to_string(),
            product.num_states().to_string(),
            product.num_edges().to_string(),
            format!("{}/15", report.num_satisfied()),
            format!("{build_time:.2?}"),
            format!("{verify_time:.2?}"),
        ]);
    }
    println!(
        "{}",
        table(
            "A4 — pruned vs conservative world-model construction (no fairness)",
            &[
                "model",
                "|Q_M|",
                "|δ_M|",
                "product states",
                "product edges",
                "specs satisfied",
                "product build",
                "verify 15 specs"
            ],
            &rows
        )
    );
    println!(
        "note: the conservative model admits strictly more behaviours, so its\n\
         verdicts are a lower bound on the pruned model's — at a much higher cost."
    );
    cli.finish();
}
