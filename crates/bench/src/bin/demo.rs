//! §5.1 demonstration: right-turn and left-turn controllers before and
//! after fine-tuning, verified against the 15 specifications, with the
//! paper's highlighted counterexamples and NuSMV exports.

use bench::{table, BenchCli};
use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo;

fn report(bundle: &DomainBundle, cmp: &demo::DemoComparison, highlight: &str) {
    println!("### Task: {}\n", cmp.task);
    let rows: Vec<Vec<String>> = cmp
        .before
        .results
        .iter()
        .zip(&cmp.after.results)
        .map(|(b, a)| {
            vec![
                b.name.clone(),
                if b.verdict.holds() { "pass" } else { "FAIL" }.into(),
                if a.verdict.holds() { "pass" } else { "FAIL" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "verification results",
            &["spec", "before FT", "after FT"],
            &rows
        )
    );
    println!(
        "before: {}/15 satisfied, after: {}/15 satisfied\n",
        cmp.before.num_satisfied(),
        cmp.after.num_satisfied()
    );
    println!(
        "paper-highlighted violation ({highlight}) by the pre-fine-tuning controller:\n{}",
        cmp.counterexample
    );
    let _ = bundle;
}

fn main() {
    let cli = BenchCli::parse("demo");
    let bundle = DomainBundle::new();

    let right = demo::right_turn(&bundle);
    report(&bundle, &right, "phi_5");

    let left = demo::left_turn(&bundle);
    report(&bundle, &left, "phi_12");

    println!("--- NuSMV export (Appendix D analogue), right-turn modules ---\n");
    println!("{}", right.smv_module);
    cli.finish();
}
