//! Figure 8: DPO fine-tuning statistics (loss, accuracy, marginal
//! preference) per epoch, mean with min/max band over five seeds.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::{table, BenchCli};
use dpo_af::experiments::fig8;
use dpo_af::pipeline::{DpoAf, PipelineConfig};
use obskit::progress;

fn main() {
    let cli = BenchCli::parse("fig8");
    let mut cfg = PipelineConfig::default();
    if cli.fast {
        cfg.train.epochs = 20;
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
    } else {
        // Figure 8 plots a single 200-epoch DPO phase.
        cfg.train.epochs = 200;
    }
    let pipeline = DpoAf::new(cfg);
    let seeds: &[u64] = &[11, 22, 33, 44, 55];
    progress!(
        "running DPO over {} seeds × {} epochs …",
        seeds.len(),
        pipeline.config.train.epochs
    );
    let result = fig8::run(&pipeline, seeds);

    println!(
        "dataset: {} preference pairs, {} seeds\n",
        result.dataset_size,
        seeds.len()
    );
    let stride = (result.aggregated.len() / 20).max(1);
    let rows: Vec<Vec<String>> = result
        .aggregated
        .iter()
        .filter(|p| p.epoch % stride == 0 || p.epoch + 1 == result.aggregated.len())
        .map(|p| {
            vec![
                p.epoch.to_string(),
                format!("{:.4} [{:.4}, {:.4}]", p.loss.0, p.loss.1, p.loss.2),
                format!(
                    "{:.3} [{:.3}, {:.3}]",
                    p.accuracy.0, p.accuracy.1, p.accuracy.2
                ),
                format!("{:.3} [{:.3}, {:.3}]", p.margin.0, p.margin.1, p.margin.2),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 8 — DPO statistics, mean [min, max] over seeds",
            &["epoch", "loss", "accuracy", "marginal preference"],
            &rows
        )
    );
    let last = result.aggregated.last().expect("non-empty");
    println!(
        "final: loss {:.4}, accuracy {:.3}, margin {:.3}",
        last.loss.0, last.accuracy.0, last.margin.0
    );
    obskit::gauge_set("fig8.final_loss", f64::from(last.loss.0));
    obskit::gauge_set("fig8.final_accuracy", f64::from(last.accuracy.0));
    cli.finish();
}
