//! Prices the observability substrate, with the tracking allocator
//! compiled in (it is the `#[global_allocator]` of every bench binary).
//!
//! Two measurements, printed as a table:
//!
//! 1. **Allocator hook, microbenched**: alloc/free pairs dispatched
//!    straight to `System` vs through the registered global allocator
//!    with tracking off vs on. The raw-vs-disabled gap is the whole
//!    disabled-path cost (one relaxed load plus call indirection).
//! 2. **End to end, A/B alternated**: the fast pipeline with everything
//!    off vs with recording *and* allocation accounting on, run in
//!    interleaved pairs on the same process so machine drift hits both
//!    arms equally.
//!
//! The disabled-path budget (<2% of wall, EXPERIMENTS.md) is asserted
//! by scaling the microbenched per-pair hook cost by the run's actual
//! allocation count: that estimate is far below the run-to-run noise
//! floor an end-to-end A/B could resolve, which is exactly the point.
//!
//! Exit codes: 0 = within budget, 1 = disabled-path estimate over
//! budget, 2 = usage error.

use dpo_af::pipeline::DpoAf;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::time::Instant;

fn timed_run(fast_cfg: dpo_af::pipeline::PipelineConfig) -> f64 {
    let t = Instant::now();
    let pipeline = DpoAf::new(fast_cfg);
    let artifacts = pipeline.run();
    // Keep the run honest: consume a result the optimizer cannot drop.
    assert!(artifacts.dataset_size > 0);
    t.elapsed().as_secs_f64()
}

/// ns per alloc+free pair of a 64-byte block.
fn alloc_pair_ns(via_global: bool, iters: u64) -> f64 {
    let layout = Layout::new::<[u8; 64]>();
    let t = Instant::now();
    for _ in 0..iters {
        // SAFETY: layout is non-zero-sized; every pointer is checked
        // non-null, written once (so the loop cannot be elided), and
        // freed with the same layout by the allocator that returned it.
        unsafe {
            let p = if via_global {
                std::alloc::alloc(layout)
            } else {
                System.alloc(layout)
            };
            assert!(!p.is_null());
            std::ptr::write_volatile(p, 1u8);
            if via_global {
                std::alloc::dealloc(p, layout);
            } else {
                System.dealloc(p, layout);
            }
        }
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    values[values.len() / 2]
}

fn main() -> ExitCode {
    let mut pairs = 3usize;
    let mut budget_pct = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pairs" => pairs = args.next().and_then(|v| v.parse().ok()).unwrap_or(3),
            "--budget-pct" => {
                budget_pct = args.next().and_then(|v| v.parse().ok()).unwrap_or(2.0);
            }
            _ => {
                eprintln!("usage: obs_overhead [--pairs N] [--budget-pct X]");
                return ExitCode::from(2);
            }
        }
    }

    // Microbench: interleave the variants, keep each variant's minimum
    // (the noise-free floor is what prices the hook).
    const ITERS: u64 = 2_000_000;
    let (mut raw, mut dis, mut ena) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        raw = raw.min(alloc_pair_ns(false, ITERS));
        dis = dis.min(alloc_pair_ns(true, ITERS));
        obskit::alloc::set_tracking(true);
        ena = ena.min(alloc_pair_ns(true, ITERS));
        obskit::alloc::set_tracking(false);
    }
    println!("== allocator hook (ns per 64-byte alloc+free pair, min of 5x{ITERS})");
    println!("raw System           {raw:7.2}");
    println!(
        "global, tracking off {dis:7.2}  (+{:.2} ns hook)",
        dis - raw
    );
    println!(
        "global, tracking on  {ena:7.2}  (+{:.2} ns accounting)",
        ena - dis
    );

    // End to end: alternate fully-off and fully-on fast pipeline runs.
    let cfg = || bench::pipeline_config(true);
    let mut walls_off = Vec::with_capacity(pairs);
    let mut walls_on = Vec::with_capacity(pairs);
    let mut allocs_per_run = 0u64;
    timed_run(cfg()); // warm-up, discarded
    for pair in 0..pairs {
        eprintln!("pair {}/{pairs} …", pair + 1);
        walls_off.push(timed_run(cfg()));
        obskit::enable();
        obskit::set_console(false);
        obskit::alloc::set_tracking(true);
        walls_on.push(timed_run(cfg()));
        allocs_per_run = obskit::alloc::totals().allocs;
        obskit::alloc::set_tracking(false);
        obskit::disable();
    }
    let off = median(&mut walls_off);
    let on = median(&mut walls_on);
    println!("\n== end to end (headline --fast pipeline, median of {pairs} interleaved pairs)");
    println!("recorder+alloc off   {off:7.3} s");
    println!(
        "recorder+alloc on    {on:7.3} s  ({:+.1}%)",
        (on / off - 1.0) * 100.0
    );
    println!("allocations per run  {allocs_per_run}");

    // The disabled-path budget check: per-pair hook cost x pairs/run,
    // as a share of the off-arm wall.
    let hook_pct = ((dis - raw).max(0.0) * allocs_per_run as f64) / (off * 1e9) * 100.0;
    println!(
        "\ndisabled-path allocator cost estimate: {hook_pct:.3}% of wall (budget {budget_pct}%)"
    );
    if hook_pct <= budget_pct {
        println!("PASS: disabled observability stays within the {budget_pct}% budget");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: disabled-path estimate exceeds the {budget_pct}% budget");
        ExitCode::FAILURE
    }
}
