//! Ablation A2 — LoRA rank sweep (paper Appendix E motivates low-rank
//! adaptation): DPO quality and cost as a function of adapter rank,
//! against full fine-tuning.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::field_reassign_with_default)] // ALLOW: config structs are built by
                                               // mutating a Default, which reads better than giant struct-update literals

use bench::{table, BenchCli};
use dpo::DpoTrainer;
use dpo_af::pipeline::{DpoAf, PipelineConfig};
use obskit::progress;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tinylm::AdaptMode;

fn main() {
    let cli = BenchCli::parse("ablation_lora");
    let mut cfg = PipelineConfig::default();
    cfg.lora_rank = 0; // pretrain in Full mode; adapters attached per arm
    if cli.fast {
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
        cfg.train.epochs = 15;
    } else {
        cfg.train.epochs = 60;
    }
    let pipeline = DpoAf::new(cfg);
    let mut rng = StdRng::seed_from_u64(pipeline.config.seed);
    progress!("pretraining the base model …");
    let base = pipeline.pretrained_lm(&mut rng);
    progress!("collecting a shared preference dataset …");
    let dataset = pipeline.collect_dataset(&base, &mut rng);
    println!("shared dataset: {} pairs\n", dataset.len());

    let trainer = DpoTrainer::new(pipeline.config.train);
    let mut rows = Vec::new();
    for rank in [0usize, 1, 2, 4, 8] {
        let reference = if rank == 0 {
            base.clone()
        } else {
            base.convert_adapt(AdaptMode::Lora { rank }, &mut rng)
        };
        let mut policy = reference.clone();
        let mut seed_rng = StdRng::seed_from_u64(99);
        let t0 = Instant::now();
        let stats = trainer
            .train(&mut policy, &reference, &dataset, &mut seed_rng, |_, _| {})
            .expect("dataset in vocabulary");
        let elapsed = t0.elapsed();
        let last = stats.last().expect("at least one epoch");
        rows.push(vec![
            if rank == 0 {
                "full".to_owned()
            } else {
                format!("lora r={rank}")
            },
            policy.num_trainable().to_string(),
            format!("{:.4}", last.loss),
            format!("{:.3}", last.accuracy),
            format!("{:.2}", last.margin),
            format!("{:.2?}", elapsed),
        ]);
    }
    println!(
        "{}",
        table(
            "A2 — DPO after a fixed epoch budget, by adaptation mode",
            &[
                "mode",
                "trainable params",
                "final loss",
                "final accuracy",
                "final margin",
                "wall time"
            ],
            &rows
        )
    );
    cli.finish();
}
