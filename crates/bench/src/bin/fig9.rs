//! Figure 9: number of specifications satisfied (of 15) vs DPO training
//! epoch, for training and validation tasks.

use bench::{table, BenchCli};
use dpo_af::experiments::fig9;
use dpo_af::pipeline::DpoAf;
use obskit::progress;

fn main() {
    let cli = BenchCli::parse("fig9");
    let mut cfg = cli.pipeline_config();
    if cli.fast {
        cfg.checkpoint_every = 5;
    }
    let pipeline = DpoAf::new(cfg);
    progress!(
        "running the full DPO-AF pipeline ({} iterations × {} epochs) …",
        pipeline.config.iterations,
        pipeline.config.train.epochs
    );
    let result = fig9::run(&pipeline);

    let rows: Vec<Vec<String>> = result
        .series
        .iter()
        .map(|p| {
            vec![
                p.epoch.to_string(),
                format!(
                    "{:.2} ({:.0}%)",
                    p.train_score,
                    p.train_score / 15.0 * 100.0
                ),
                format!("{:.2} ({:.0}%)", p.val_score, p.val_score / 15.0 * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 9 — specifications satisfied (of 15) vs DPO epoch",
            &["epoch", "training tasks", "validation tasks"],
            &rows
        )
    );
    println!(
        "preference pairs collected across iterations: {}",
        result.artifacts.dataset_size
    );
    cli.finish();
}
