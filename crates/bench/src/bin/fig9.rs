//! Figure 9: number of specifications satisfied (of 15) vs DPO training
//! epoch, for training and validation tasks.

use bench::{fast_mode, table};
use dpo_af::experiments::fig9;
use dpo_af::pipeline::{DpoAf, PipelineConfig};

fn main() {
    let mut cfg = PipelineConfig::default();
    if fast_mode() {
        cfg.train.epochs = 10;
        cfg.iterations = 2;
        cfg.checkpoint_every = 5;
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
        cfg.eval_samples = 2;
    }
    let pipeline = DpoAf::new(cfg);
    eprintln!(
        "running the full DPO-AF pipeline ({} iterations × {} epochs) …",
        pipeline.config.iterations, pipeline.config.train.epochs
    );
    let result = fig9::run(&pipeline);

    let rows: Vec<Vec<String>> = result
        .series
        .iter()
        .map(|p| {
            vec![
                p.epoch.to_string(),
                format!(
                    "{:.2} ({:.0}%)",
                    p.train_score,
                    p.train_score / 15.0 * 100.0
                ),
                format!("{:.2} ({:.0}%)", p.val_score, p.val_score / 15.0 * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 9 — specifications satisfied (of 15) vs DPO epoch",
            &["epoch", "training tasks", "validation tasks"],
            &rows
        )
    );
    println!(
        "preference pairs collected across iterations: {}",
        result.artifacts.dataset_size
    );
}
