//! Figure 12: detector confidence→accuracy mappings, simulation vs real
//! world, per object class — the sim-to-real consistency study.

use bench::{table, BenchCli};
use dpo_af::experiments::fig12::{self, Fig12Config};

fn main() {
    let cli = BenchCli::parse("fig12");
    let mut cfg = Fig12Config::default();
    if cli.fast {
        cfg.frames = 300;
    }
    let result = fig12::run(cfg);

    for c in &result.consistent {
        let rows: Vec<Vec<String>> = c
            .sim
            .bins
            .iter()
            .zip(&c.real.bins)
            .filter(|(s, r)| s.count > 0 || r.count > 0)
            .map(|(s, r)| {
                vec![
                    format!("{:.2}", s.confidence),
                    format!("{:.3} (n={})", s.accuracy, s.count),
                    format!("{:.3} (n={})", r.accuracy, r.count),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &format!("Figure 12 — {:?}: confidence → accuracy", c.class),
                &["confidence bin", "sim accuracy", "real accuracy"],
                &rows
            )
        );
        println!("consistency gap: {:.4}\n", c.gap);
    }

    println!("negative control (domain-biased detector) per-class gaps:");
    for (class, gap) in &result.biased_gaps {
        println!("  {class:?}: {gap:.4}");
    }
    let mean: f32 =
        result.consistent.iter().map(|c| c.gap).sum::<f32>() / result.consistent.len() as f32;
    println!(
        "\nconsistent-detector mean gap {mean:.4} → the perception stack behaves \
         approximately identically in sim and real, supporting controller transfer (§5.3)."
    );
    obskit::gauge_set("fig12.mean_gap", f64::from(mean));
    cli.finish();
}
