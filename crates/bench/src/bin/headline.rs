//! The headline result: the percentage of specifications satisfied by
//! synthesized controllers, before vs after DPO-AF fine-tuning
//! (abstract: "from 60% to above 90%"), averaged over independent
//! pipeline seeds.

use bench::BenchCli;
use dpo_af::experiments::headline;
use dpo_af::pipeline::DpoAf;
use obskit::progress;

fn main() {
    let cli = BenchCli::parse("headline");
    // `--artifacts-out <path>`: serialize the first seed's RunArtifacts,
    // so two invocations can be diffed byte-for-byte (the ci.sh
    // determinism smoke compares --threads 1 against --threads 2).
    let artifacts_out = cli
        .args
        .iter()
        .position(|a| a == "--artifacts-out")
        .and_then(|i| cli.args.get(i + 1))
        .map(std::path::PathBuf::from);
    let seeds: &[u64] = if cli.fast { &[7] } else { &[7, 17, 27] };
    let mut befores = Vec::new();
    let mut afters = Vec::new();
    let mut pairs = 0;
    for (run, &seed) in seeds.iter().enumerate() {
        let mut cfg = cli.pipeline_config();
        cfg.seed = seed;
        if !cli.fast {
            cfg.eval_samples = 8;
        }
        let pipeline = DpoAf::new(cfg);
        progress!("running the full DPO-AF pipeline (seed {seed}) …");
        let artifacts = pipeline.run();
        let (hits, misses) = pipeline.cache_stats();
        if hits + misses > 0 {
            progress!(
                "  verify cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
                100.0 * hits as f64 / (hits + misses) as f64
            );
        }
        if run == 0 {
            if let Some(path) = &artifacts_out {
                artifacts
                    .save(path)
                    .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
                eprintln!("run artifacts written to {}", path.display());
            }
        }
        let result = headline::from_artifacts(&artifacts);
        println!(
            "  seed {seed}: {:.1}% → {:.1}%  ({} pairs)",
            result.before_pct, result.after_pct, result.dataset_size
        );
        befores.push(result.before_pct);
        afters.push(result.after_pct);
        pairs += result.dataset_size;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let range = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    println!("\n== Headline — specifications satisfied by synthesized controllers");
    let (bl, bh) = range(&befores);
    let (al, ah) = range(&afters);
    println!(
        "before fine-tuning: {:.1}% [{bl:.1}, {bh:.1}]   (paper: ~60%)",
        mean(&befores)
    );
    println!(
        "after  fine-tuning: {:.1}% [{al:.1}, {ah:.1}]   (paper: above 90%)",
        mean(&afters)
    );
    println!("preference pairs used in total: {pairs}");
    obskit::gauge_set("headline.before_pct", mean(&befores));
    obskit::gauge_set("headline.after_pct", mean(&afters));
    cli.finish();
}
