//! Compares two bench reports under noise-aware perf budgets — the CI
//! perf-regression gate.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json>
//!            [--budgets results/PERF_BUDGETS.json]
//!            [--json-out verdict.json]
//!            [--seed-regression span=factor]
//! ```
//!
//! Counters must match exactly (the pipeline is deterministic at
//! `--threads 1`), span times are compared as shares of each run's own
//! wall clock (robust to a uniformly faster/slower machine), and
//! nondeterministic metrics are ignored per the budgets file. See
//! [`bench::diff`] and DESIGN.md §12 for the tolerance-class rationale.
//!
//! `--seed-regression` multiplies the named span's candidate timings
//! before diffing; CI uses it to prove the gate fails when it should.
//!
//! Exit codes: 0 = within budget, 1 = perf regression(s) (printed and
//! named), 2 = usage or I/O error.

use bench::diff::{diff_reports, seed_regression, Budgets};
use std::process::ExitCode;

fn read_json(path: &str) -> Result<obskit::json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    obskit::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut budgets_path = None;
    let mut json_out = None;
    let mut seed = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budgets" => budgets_path = args.next(),
            "--json-out" => json_out = args.next(),
            "--seed-regression" => seed = args.next(),
            _ if !arg.starts_with("--") && paths.len() < 2 => paths.push(arg),
            _ => {
                eprintln!("unexpected argument `{arg}`");
                return ExitCode::from(2);
            }
        }
    }
    let [baseline_path, candidate_path] = &paths[..] else {
        eprintln!(
            "usage: bench_diff <baseline.json> <candidate.json> [--budgets <p>] \
             [--json-out <p>] [--seed-regression span=factor]"
        );
        return ExitCode::from(2);
    };

    let budgets = match &budgets_path {
        None => Budgets::defaults(),
        Some(path) => {
            let parsed = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))
                .and_then(|text| Budgets::parse(&text));
            match parsed {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("budgets: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let baseline = match read_json(baseline_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut candidate = match read_json(candidate_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if let Some(seed) = seed {
        let parsed = seed
            .split_once('=')
            .and_then(|(span, f)| f.parse::<f64>().ok().map(|f| (span.to_owned(), f)));
        let Some((span, factor)) = parsed else {
            eprintln!("--seed-regression expects span=factor, got `{seed}`");
            return ExitCode::from(2);
        };
        let hits = seed_regression(&mut candidate, &span, factor);
        eprintln!("seeded x{factor} regression into {hits} `{span}` span node(s)");
    }

    let diff = match diff_reports(&baseline, &candidate, &budgets) {
        Ok(diff) => diff,
        Err(e) => {
            eprintln!("diff: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", diff.render_human());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, diff.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("diff verdict written to {path}");
    }
    if diff.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
