//! Figure 13: detector performance under different weather and light
//! conditions, sim vs real — the quantitative counterpart of the paper's
//! qualitative image grid.

use bench::{table, BenchCli};
use dpo_af::experiments::fig13;

fn main() {
    let cli = BenchCli::parse("fig13");
    let frames = if cli.fast { 200 } else { 1000 };
    let result = fig13::run(frames, 17);
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.condition),
                format!(
                    "{:.3} (conf {:.3}, n={})",
                    r.sim.accuracy, r.sim.mean_confidence, r.sim.count
                ),
                format!(
                    "{:.3} (conf {:.3}, n={})",
                    r.real.accuracy, r.real.mean_confidence, r.real.count
                ),
                format!("{:+.3}", r.sim.accuracy - r.real.accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 13 — detection accuracy by weather/light condition",
            &["condition", "sim", "real", "sim−real"],
            &rows
        )
    );
    println!(
        "conditions degrade both domains together; the residual sim−real gap stays small,\n\
         consistent with the paper's qualitative comparison."
    );
    cli.finish();
}
