//! Figure 11: empirical satisfaction rates `P_Φ` of Φ₁…Φ₅ during actual
//! operation in the driving simulator, before vs after fine-tuning.

use bench::{table, BenchCli};
use dpo_af::experiments::fig11::{self, Fig11Config};
use dpo_af::pipeline::DpoAf;
use obskit::progress;

fn main() {
    let cli = BenchCli::parse("fig11");
    let cfg = cli.pipeline_config();
    let mut fig_cfg = Fig11Config::default();
    if cli.fast {
        fig_cfg.samples_per_task = 1;
        fig_cfg.episodes = 3;
    }
    let pipeline = DpoAf::new(cfg);
    progress!("running the DPO-AF pipeline to obtain before/after models …");
    let artifacts = pipeline.run();

    progress!("rolling out controllers in the simulator …");
    let result = fig11::run(
        &pipeline.bundle,
        &artifacts.reference,
        &artifacts.policy,
        fig_cfg,
    );

    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.spec.clone(),
                format!("{:.3}", r.before),
                format!("{:.3}", r.after),
                format!("{:+.3}", r.after - r.before),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 11 — P_Φ per specification during simulator operation",
            &["spec", "before FT", "after FT", "delta"],
            &rows
        )
    );
    println!("traces pooled per model: {}", result.traces_per_model);
    let improved = result.rows.iter().filter(|r| r.after >= r.before).count();
    println!(
        "{improved}/{} specifications improved or held steady after fine-tuning",
        result.rows.len()
    );
    obskit::counter_add("fig11.specs_improved", improved as u64);
    cli.finish();
}
