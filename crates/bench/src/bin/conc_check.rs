//! Concurrency model-checking gate: exhaustively explores the
//! interleavings of every conckit model in [`parkit::models`] and fails
//! on any violation (deadlock, lost wakeup, panic, incomplete
//! exploration).
//!
//! Built only with the `model` feature (`cargo run --release -p bench
//! --features model --bin conc_check`), which reroutes parkit's mutexes,
//! condvars, atomics and threads through conckit's cooperative
//! scheduler. Each model is a tiny closed program over the real pool /
//! deque / sharded-map code; the explorer enumerates all schedules up to
//! the preemption bound with sleep-set pruning, so a pass here is a
//! proof over that schedule space — not a stress test that happened to
//! get lucky.
//!
//! Emits `conckit.schedules` / `conckit.steps` counters and a
//! `conckit.max_depth` gauge into the obskit report so CI's
//! `metrics_check` can assert the exploration actually ran.

// ALLOW: gate binary — panicking on a found interleaving bug is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::{table, BenchCli};
use conckit::Config;
use std::time::Instant;

/// Preemption bound for the gate. Two preemptions cover the vast
/// majority of real concurrency bugs (CHESS's empirical result) while
/// keeping the schedule space small enough to exhaust in seconds.
const PREEMPTION_BOUND: usize = 2;

fn main() {
    let cli = BenchCli::parse("conc_check");
    let config = Config::with_bound(PREEMPTION_BOUND);

    let mut rows = Vec::new();
    let mut total_schedules = 0u64;
    let mut total_steps = 0u64;
    let mut violations = 0u64;
    let mut max_depth = 0usize;
    let started = Instant::now();

    // The panic-containment model deliberately panics in every explored
    // schedule; the default hook would print thousands of backtraces.
    // conckit catches model panics and carries their messages in
    // `Violation::Panic`, so nothing is lost by silencing the hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    for (name, model) in parkit::models::all() {
        let t0 = Instant::now();
        let report = model(&config);
        let wall = t0.elapsed();
        total_schedules += report.schedules;
        total_steps += report.steps;
        max_depth = max_depth.max(report.max_depth);
        let status = match (&report.violation, report.complete) {
            (Some(v), _) => {
                violations += 1;
                format!("VIOLATION: {v}")
            }
            (None, false) => {
                violations += 1;
                "INCOMPLETE (budget exhausted)".to_owned()
            }
            (None, true) => "ok".to_owned(),
        };
        rows.push(vec![
            name.to_owned(),
            report.schedules.to_string(),
            report.steps.to_string(),
            report.max_depth.to_string(),
            format!("{:.1}ms", wall.as_secs_f64() * 1e3),
            status,
        ]);
    }

    std::panic::set_hook(default_hook);

    println!(
        "{}",
        table(
            &format!("conckit exploration (preemption bound {PREEMPTION_BOUND})"),
            &["model", "schedules", "steps", "max depth", "wall", "status"],
            &rows,
        )
    );
    println!(
        "explored {} schedules / {} steps across {} models in {:.2}s",
        total_schedules,
        total_steps,
        rows.len(),
        started.elapsed().as_secs_f64()
    );

    obskit::counter_add("conckit.schedules", total_schedules);
    obskit::counter_add("conckit.steps", total_steps);
    obskit::counter_add("conckit.violations", violations);
    obskit::gauge_set("conckit.max_depth", max_depth as f64);
    cli.finish();

    assert_eq!(
        violations, 0,
        "conckit found {violations} violating/incomplete model(s) — see the table above; \
         replay a violating schedule with conckit::replay(model, schedule_id)"
    );
    // Every model must actually exercise concurrency: a single-schedule
    // "exploration" means the model degenerated to sequential code.
    assert!(
        total_schedules > rows.len() as u64,
        "exploration degenerated: {total_schedules} schedules over {} models",
        rows.len()
    );
}
