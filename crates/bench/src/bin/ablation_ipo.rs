//! Ablation A5 — objective choice: DPO's sigmoid loss vs IPO's squared
//! regression to a fixed margin, on the same verification-ranked dataset.
//!
//! Verification feedback is deterministic (a response either satisfies a
//! rule or it does not), which is the regime IPO was designed for: DPO
//! keeps pushing the margin toward infinity while IPO settles at its
//! target. This ablation compares final metrics and margin growth.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::{table, BenchCli};
use dpo::{dpo_loss_grad, ipo_loss_grad, PreferenceDataset};
use dpo_af::pipeline::{DpoAf, PipelineConfig};
use obskit::progress;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tinylm::optim::Adam;
use tinylm::{CondLm, GradBuffer};

/// A preference objective: maps (policy, reference, pair) to
/// (loss, accuracy, margin, gradient).
type Objective<'a> =
    Box<dyn Fn(&CondLm, &CondLm, &dpo::PreferencePair) -> (f32, f32, f32, GradBuffer) + 'a>;

/// Minimal trainer shared by both objectives so only the loss differs.
fn train(
    policy: &mut CondLm,
    reference: &CondLm,
    dataset: &PreferenceDataset,
    epochs: usize,
    per_epoch: usize,
    objective: &Objective,
) -> (f32, f32, f32) {
    let mut adam = Adam::new(1.5e-3, policy.params().len());
    let mut rng = StdRng::seed_from_u64(77);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let (mut loss, mut acc, mut margin) = (0.0, 0.0, 0.0);
    for _ in 0..epochs {
        indices.shuffle(&mut rng);
        let take = per_epoch.min(indices.len());
        (loss, acc, margin) = (0.0, 0.0, 0.0);
        for batch in indices[..take].chunks(8) {
            let mut grad = GradBuffer::zeros(policy);
            for &i in batch {
                let (l, a, m, g) = objective(policy, reference, &dataset.pairs[i]);
                loss += l;
                acc += a;
                margin += m;
                grad.add_scaled(&g, 1.0 / batch.len() as f32);
            }
            adam.step(policy.params_mut(), &grad.0);
        }
        loss /= take as f32;
        acc /= take as f32;
        margin /= take as f32;
    }
    (loss, acc, margin)
}

fn main() {
    let cli = BenchCli::parse("ablation_ipo");
    let mut cfg = PipelineConfig::default();
    let epochs = if cli.fast {
        cfg.corpus_size = 300;
        cfg.pretrain.epochs = 3;
        10
    } else {
        60
    };
    let pipeline = DpoAf::new(cfg);
    let mut rng = StdRng::seed_from_u64(pipeline.config.seed);
    progress!("pretraining and collecting a shared dataset …");
    let reference = pipeline.pretrained_lm(&mut rng);
    let dataset = pipeline.collect_dataset(&reference, &mut rng);
    println!("shared dataset: {} pairs\n", dataset.len());

    let mut rows = Vec::new();
    for (name, beta_or_tau) in [("dpo (β)", 0.6f32), ("ipo (τ)", 0.6)] {
        let mut policy = reference.clone();
        let objective: Objective = if name.starts_with("dpo") {
            Box::new(move |p, r, pair| {
                let (e, g) = dpo_loss_grad(p, r, pair, beta_or_tau).expect("in range");
                (e.loss, e.correct, e.margin, g)
            })
        } else {
            Box::new(move |p, r, pair| {
                let (e, g) = ipo_loss_grad(p, r, pair, beta_or_tau).expect("in range");
                (e.loss, e.correct, e.margin, g)
            })
        };
        let (loss, acc, margin) = train(&mut policy, &reference, &dataset, epochs, 48, &objective);
        rows.push(vec![
            name.to_owned(),
            format!("{loss:.4}"),
            format!("{acc:.3}"),
            format!("{margin:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &format!("A5 — objective comparison after {epochs} epochs"),
            &["objective", "final loss", "final accuracy", "final margin"],
            &rows
        )
    );
    println!(
        "note: the losses are not comparable across objectives (different scales);\n\
         accuracy is. IPO's margin saturates near its 1/(2τ) target while DPO's grows."
    );
    cli.finish();
}
