//! Semantic rule-book analysis cost: runs the full `SL3xx` pass
//! (satisfiability, world vacuity, pairwise conflict/subsumption, corpus
//! discrimination) over the shipped driving and warehouse books and
//! reports per-rule wall time, split into solo / pairwise / corpus
//! phases. Feeds the EXPERIMENTS.md cost table and, with
//! `--metrics-out`, an `obskit.bench.v1` report.
//!
//! Semantic analysis reuses the ltlcheck spec-automaton cache, so the
//! hit/miss counters (`ltlcheck.automaton_cache_*`) show how much the
//! sweep shares across worlds and pairs.

use bench::{table, BenchCli};
use speclint::presets::{driving_semantic_input, warehouse_semantic_input};
use speclint::semantic::analyze_timed;
use speclint::{sort_diagnostics, Severity, Tally};

fn main() {
    let cli = BenchCli::parse("specsem");
    let books = [
        ("driving", driving_semantic_input()),
        ("warehouse", warehouse_semantic_input()),
    ];

    let mut diags = Vec::new();
    for (book, input) in books {
        let _span = obskit::span("specsem.analyze");
        let report = analyze_timed(&input);
        let rows: Vec<Vec<String>> = report
            .timings
            .iter()
            .map(|t| {
                vec![
                    t.rule.clone(),
                    format!("{}", t.solo.as_micros()),
                    format!("{}", t.pairwise.as_micros()),
                    format!("{}", t.corpus.as_micros()),
                    format!("{}", t.total().as_micros()),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &format!(
                    "{book}: per-rule semantic analysis cost ({} worlds, {} corpus controllers, {} checks)",
                    input.worlds.len(),
                    input.corpus.len(),
                    report.checks
                ),
                &["rule", "solo µs", "pairwise µs", "corpus µs", "total µs"],
                &rows,
            )
        );
        for t in &report.timings {
            obskit::observe("specsem.rule_us", t.total().as_micros() as u64);
        }
        diags.extend(report.diagnostics);
    }

    sort_diagnostics(&mut diags);
    for d in &diags {
        println!("{d}");
    }
    let tally = Tally::of(&diags);
    println!(
        "specsem: {} error(s), {} warning(s), {} note(s) — notes are \
         expected (scenario-specific rules idle in other worlds)",
        tally.errors, tally.warnings, tally.notes
    );
    println!(
        "automaton cache: {} entries resident",
        ltlcheck::analysis::automaton_cache_len()
    );
    cli.finish();
    let loud = diags
        .iter()
        .filter(|d| d.severity != Severity::Note)
        .count();
    assert_eq!(loud, 0, "shipped rule books must be semantically clean");
}
