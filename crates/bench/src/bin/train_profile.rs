//! Profiles the DPO training fast path in isolation: pretrain once,
//! collect one preference dataset, then time the DPO phase alone under
//! the chosen performance knobs (`--threads`, `--no-ref-cache`). The
//! headline bench times the whole pipeline; this binary isolates
//! `pipeline.train` so the reference-cache, batched-tape and pooled
//! gradient optimizations can be measured without the (dominant at low
//! thread counts, amortized) verification fan-out in the way.
//!
//! Prints the `dpo.*` child-span breakdown (`dpo.ref`, `dpo.forward`,
//! `dpo.backward`) plus the tape/cache counters, and records everything
//! in the usual `--metrics-out` report.

#![allow(clippy::expect_used)] // ALLOW: profiling binary — panicking on a broken setup is the gate.

use bench::{table, BenchCli};
use dpo::DpoTrainer;
use dpo_af::pipeline::DpoAf;
use obskit::progress;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Sums `total_us` over every node named `name` in the span forest
/// (spans from pool workers root at their thread, so the same name can
/// appear under several parents).
fn span_total_ms(nodes: &[obskit::SpanNode], name: &str) -> f64 {
    let mut total = 0u64;
    let mut stack: Vec<&obskit::SpanNode> = nodes.iter().collect();
    while let Some(n) = stack.pop() {
        if n.name == name {
            total += n.total_us;
        }
        stack.extend(n.children.iter());
    }
    total as f64 / 1e3
}

fn main() {
    let cli = BenchCli::parse("train_profile");
    let cfg = cli.pipeline_config();
    let pipeline = DpoAf::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    progress!("pretraining the base model …");
    let reference = pipeline.pretrained_lm(&mut rng);
    progress!("collecting one preference dataset …");
    let dataset = pipeline.collect_dataset(&reference, &mut rng);
    assert!(!dataset.is_empty(), "no strict preferences collected");

    let trainer = DpoTrainer::new(cfg.train)
        .with_ref_cache(cfg.ref_cache)
        .with_pool_backward(cfg.pool_backward);
    let mut policy = reference.clone();
    progress!(
        "training: {} epochs over {} pairs (threads {}, ref cache {}, kernels {}, pooled backward {}) …",
        cfg.train.epochs,
        dataset.len(),
        pipeline.pool().threads(),
        if cfg.ref_cache { "on" } else { "off" },
        cfg.kernel_mode,
        if cfg.pool_backward { "on" } else { "off" }
    );
    let started = Instant::now();
    let stats = {
        let _stage = obskit::span("pipeline.train");
        trainer
            .train_in(
                &mut policy,
                &reference,
                &dataset,
                &mut rng,
                |_, _| {},
                Some(pipeline.pool()),
            )
            .expect("dataset uses model vocabulary")
    };
    let train_secs = started.elapsed().as_secs_f64();
    let last = stats.last().expect("at least one epoch");

    let snapshot = cli.finish();
    let counter = |name: &str| {
        snapshot
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let gauge = |name: &str| {
        snapshot
            .metrics
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    };
    let ms = |name: &str| span_total_ms(&snapshot.spans, name);
    let rows = vec![
        vec!["train wall (s)".into(), format!("{train_secs:.2}")],
        vec!["dpo.ref (ms)".into(), format!("{:.1}", ms("dpo.ref"))],
        vec![
            "dpo.forward (ms)".into(),
            format!("{:.1}", ms("dpo.forward")),
        ],
        vec![
            "dpo.backward (ms)".into(),
            format!("{:.1}", ms("dpo.backward")),
        ],
        vec![
            "dpo.tokens_per_sec".into(),
            format!("{:.0}", gauge("dpo.tokens_per_sec")),
        ],
        vec![
            "dpo.ref_cache_hits".into(),
            counter("dpo.ref_cache_hits").to_string(),
        ],
        vec!["tape.nodes".into(), counter("tape.nodes").to_string()],
        vec![
            "tape.grad_buffer_reuses".into(),
            counter("tape.grad_buffer_reuses").to_string(),
        ],
        vec!["final epoch loss".into(), format!("{:.4}", last.loss)],
        vec!["final accuracy".into(), format!("{:.3}", last.accuracy)],
    ];
    println!(
        "{}",
        table(
            &format!(
                "train_profile — {} epochs, {} pairs",
                stats.len(),
                dataset.len()
            ),
            &["metric", "value"],
            &rows,
        )
    );
}
