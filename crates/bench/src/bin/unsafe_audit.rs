//! Source-audit gate: enumerates every scrutiny-worthy site in the
//! workspace's own sources (vendored dependencies excluded) and fails
//! unless each carries its adjacent justification comment — `// SAFETY:`
//! for `unsafe` / `static mut` / `transmute`, `// ALLOW:` for
//! `#[allow(clippy::…)]` lint opt-outs.
//!
//! The expected steady state is documented in DESIGN.md's unsafe-code
//! policy: every first-party crate forbids `unsafe_code` except
//! `parkit`, whose scoped pool needs one lifetime-erasing transmute;
//! `static mut` stays at zero; every clippy opt-out states its reason.
//! Run from CI as `cargo run -p bench --bin unsafe_audit`.

// ALLOW: binary entrypoint — panicking on a broken workspace layout is the gate.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::audit::{audit_tree, per_crate_counts, SiteKind};
use bench::{table, BenchCli};
use std::path::Path;

fn main() {
    let cli = BenchCli::parse("unsafe_audit");
    // bench lives at <workspace>/crates/bench; audit the whole checkout.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the workspace root");
    let sites = match audit_tree(root) {
        Ok(sites) => sites,
        Err(e) => panic!("audit walk failed under {}: {e}", root.display()),
    };

    let kinds = [
        SiteKind::Unsafe,
        SiteKind::StaticMut,
        SiteKind::Transmute,
        SiteKind::ClippyAllow,
    ];

    // Per-crate summary: one row per crate, one (total/undocumented)
    // column per kind.
    let counts = per_crate_counts(&sites);
    let rows: Vec<Vec<String>> = counts
        .iter()
        .map(|(krate, by_kind)| {
            let mut row = vec![krate.clone()];
            for kind in kinds {
                let (total, undoc) = by_kind.get(&kind).copied().unwrap_or((0, 0));
                row.push(if undoc > 0 {
                    format!("{total} ({undoc} undoc)")
                } else {
                    total.to_string()
                });
            }
            row
        })
        .collect();
    println!(
        "{}",
        table(
            "audited sites per crate",
            &["crate", "unsafe", "static-mut", "transmute", "clippy-allow"],
            &rows,
        )
    );

    // Detail table for the riskier kinds (unsafe/static-mut/transmute
    // are rare enough to list exhaustively; clippy allows only when
    // undocumented).
    let detail: Vec<Vec<String>> = sites
        .iter()
        .filter(|s| s.kind != SiteKind::ClippyAllow || !s.documented)
        .map(|s| {
            vec![
                format!("{}:{}", s.file, s.line),
                s.kind.label().to_owned(),
                if s.documented {
                    "documented".to_owned()
                } else {
                    "UNDOCUMENTED".to_owned()
                },
            ]
        })
        .collect();
    println!("{}", table("sites", &["site", "kind", "status"], &detail));

    let undocumented: Vec<_> = sites.iter().filter(|s| !s.documented).collect();
    obskit::counter_add("unsafe_audit.sites", sites.len() as u64);
    obskit::counter_add("unsafe_audit.undocumented", undocumented.len() as u64);
    for kind in kinds {
        let n = sites.iter().filter(|s| s.kind == kind).count();
        obskit::counter_add(&format!("unsafe_audit.{}", kind.label()), n as u64);
    }
    cli.finish();

    assert!(
        undocumented.is_empty(),
        "undocumented audited site(s) — add the required justification \
         comment (`// SAFETY:` or `// ALLOW:`) on the same line or within \
         {} lines above each: {undocumented:?}",
        bench::audit::SAFETY_COMMENT_WINDOW
    );
    println!(
        "source audit: {} site(s) across {} crate(s), all documented",
        sites.len(),
        counts.len()
    );
}
