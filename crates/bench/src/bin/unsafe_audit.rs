//! Unsafe-code audit gate: enumerates every `unsafe` site in the
//! workspace's own sources (vendored dependencies excluded) and fails
//! unless each carries an adjacent `// SAFETY:` justification.
//!
//! The expected steady state is documented in DESIGN.md's unsafe-code
//! policy: every first-party crate forbids `unsafe_code` except
//! `parkit`, whose scoped pool needs one lifetime-erasing transmute.
//! Run from CI as `cargo run -p bench --bin unsafe_audit`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::audit::audit_tree;
use bench::{table, BenchCli};
use std::path::Path;

fn main() {
    let cli = BenchCli::parse("unsafe_audit");
    // bench lives at <workspace>/crates/bench; audit the whole checkout.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the workspace root");
    let sites = match audit_tree(root) {
        Ok(sites) => sites,
        Err(e) => panic!("audit walk failed under {}: {e}", root.display()),
    };

    let rows: Vec<Vec<String>> = sites
        .iter()
        .map(|s| {
            vec![
                format!("{}:{}", s.file, s.line),
                if s.documented {
                    "SAFETY-documented".to_owned()
                } else {
                    "UNDOCUMENTED".to_owned()
                },
            ]
        })
        .collect();
    println!("{}", table("unsafe sites", &["site", "status"], &rows));

    let undocumented: Vec<_> = sites.iter().filter(|s| !s.documented).collect();
    obskit::counter_add("unsafe_audit.sites", sites.len() as u64);
    obskit::counter_add("unsafe_audit.undocumented", undocumented.len() as u64);
    cli.finish();

    assert!(
        undocumented.is_empty(),
        "undocumented unsafe site(s) — add a `// SAFETY:` comment within \
         {} lines above each: {undocumented:?}",
        bench::audit::SAFETY_COMMENT_WINDOW
    );
    println!(
        "unsafe audit: {} site(s), all SAFETY-documented",
        sites.len()
    );
}
