//! Explicit vs symbolic verification backends (ablation A6).
//!
//! `ltlcheck` decides `M ⊗ C ⊨ Φ` two ways: explicit-state SCC search and
//! BDD-based Emerson–Lei fixpoints (the NuSMV-style backend). They must
//! agree on every verdict; this binary confirms agreement across the
//! demo controllers × scenarios × 15 specifications, and times both on
//! the transition-dense "conservative" model where symbolic methods earn
//! their keep.

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use autokit::{DeadlockPolicy, Product, PropSet, WorldModelBuilder};
use bench::{table, BenchCli};
use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE};
use dpo_af::feedback::{fsa_options, justice_for, scenario_model};
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action};
use ltlcheck::specs::driving_specs;
use ltlcheck::symbolic::check_graph_fair_symbolic;
use ltlcheck::{check_graph_fair, Justice};
use std::time::Instant;

fn main() {
    let cli = BenchCli::parse("backend_compare");
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let specs = driving_specs(d);

    // --- agreement sweep -------------------------------------------------
    let mut checked = 0usize;
    let mut disagreements = 0usize;
    for steps in [&RIGHT_TURN_BEFORE[..], &RIGHT_TURN_AFTER[..]] {
        let ctrl = synthesize("turn right", steps, &bundle.lexicon, fsa_options(d))
            .expect("demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        for kind in [ScenarioKind::TrafficLight, ScenarioKind::TwoWayStop] {
            let model = scenario_model(d, kind);
            let justice = justice_for(d, kind);
            let graph = Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter);
            for s in &specs {
                let explicit = check_graph_fair(&graph, &s.formula, &justice).holds();
                let symbolic = check_graph_fair_symbolic(&graph, &s.formula, &justice);
                checked += 1;
                if explicit != symbolic {
                    disagreements += 1;
                    println!("DISAGREEMENT: {kind:?} / {}", s.name);
                }
            }
        }
    }
    println!("agreement sweep: {checked} verdicts, {disagreements} disagreements\n");

    // --- cost on a dense (conservative) model ----------------------------
    let ctrl = synthesize(
        "turn right",
        &RIGHT_TURN_AFTER,
        &bundle.lexicon,
        fsa_options(d),
    )
    .expect("demo steps align");
    let ctrl = with_default_action(&ctrl, d.stop);
    let props = [
        d.green_tl,
        d.car_left,
        d.opposite_car,
        d.ped_right,
        d.ped_front,
    ];
    let labels: Vec<PropSet> = (0..(1u32 << props.len()))
        .map(|mask| {
            let mut l = PropSet::empty();
            for (i, &p) in props.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    l.insert(p);
                }
            }
            l
        })
        .collect();
    let dense = WorldModelBuilder::new(&d.vocab)
        .name("conservative traffic light")
        .restrict_labels(labels)
        .allow_transitions(|_, _| true)
        .conservative()
        .build();
    let graph = Product::build(&dense, &ctrl).label_graph(DeadlockPolicy::Stutter);
    println!(
        "dense model: {} graph nodes, {} specs\n",
        graph.num_nodes(),
        specs.len()
    );

    let mut rows = Vec::new();
    let no_justice: [Justice; 0] = [];
    for (name, f) in [
        (
            "explicit (SCC)",
            Box::new(|phi: &ltlcheck::Ltl| check_graph_fair(&graph, phi, &no_justice).holds())
                as Box<dyn Fn(&ltlcheck::Ltl) -> bool>,
        ),
        (
            "symbolic (BDD)",
            Box::new(|phi: &ltlcheck::Ltl| check_graph_fair_symbolic(&graph, phi, &no_justice)),
        ),
    ] {
        let t0 = Instant::now();
        let satisfied = specs.iter().filter(|s| f(&s.formula)).count();
        rows.push(vec![
            name.to_owned(),
            format!("{satisfied}/15"),
            format!("{:.2?}", t0.elapsed()),
        ]);
    }
    println!(
        "{}",
        table(
            "A6 — backend cost on the conservative model (15 specs)",
            &["backend", "specs satisfied", "wall time"],
            &rows
        )
    );
    println!(
        "honest read: at a few thousand product states the explicit checker is\n\
         faster — our BDD relation is built edge-by-edge, which dominates. The\n\
         symbolic backend's value here is independent confirmation of every\n\
         verdict (60/60 agreement above) and the NuSMV-style machinery itself;\n\
         its asymptotic advantage needs state spaces (and encodings) beyond the\n\
         paper's models."
    );
    cli.finish();
}
