//! Explicit vs symbolic verification backends (ablation A6).
//!
//! `ltlcheck` decides `M ⊗ C ⊨ Φ` two ways: explicit-state SCC search and
//! BDD-based Emerson–Lei fixpoints (the NuSMV-style backend). They must
//! agree on every verdict; this binary confirms agreement across the
//! demo controllers × scenarios × 15 specifications, and times both on
//! the transition-dense "conservative" model where symbolic methods earn
//! their keep.
//!
//! `--sweep` charts both backends across scaled-up conservative models
//! (`drivesim::scaled`) and reports the explicit-vs-symbolic crossover
//! point into the `obskit.bench.v2` report: product size, per-backend
//! wall time, verdict agreement at every scale, and `symbolic.*`
//! counters from the BDD engine. `--fast` restricts the sweep to the
//! scales CI can afford and disables the explicit checker's time budget
//! so the committed `results/BENCH_backend.json` baseline stays
//! machine-independent (every counter deterministic).

// ALLOW: experiment binary — panicking on internal invariants is acceptable here
// (the workspace unwrap/expect lints target library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use autokit::{Controller, DeadlockPolicy, Product, PropSet, WorldModelBuilder};
use bench::{table, BenchCli};
use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE};
use dpo_af::feedback::{fsa_options, justice_for, scenario_model};
use drivesim::scaled::scaled_conservative_model;
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action};
use ltlcheck::specs::driving_specs;
use ltlcheck::symbolic::check_graph_fair_symbolic;
use ltlcheck::{check_graph_fair, Justice};
use std::time::{Duration, Instant};

/// Full-sweep scales (label counts of the conservative traffic world).
const SWEEP_SCALES: &[usize] = &[32, 48, 64, 96, 128];
/// `--fast` sweep scales: the prefix CI can afford.
const FAST_SCALES: &[usize] = &[32, 48, 64];
/// In the full sweep the explicit checker is dropped from later (larger)
/// scales once one scale's 15-spec pass exceeds this budget — that is
/// the "state spaces the explicit checker cannot touch" regime. Never
/// applied under `--fast`, where skipping would make the committed
/// baseline's counters machine-dependent.
const EXPLICIT_BUDGET: Duration = Duration::from_secs(30);

fn main() {
    let cli = BenchCli::parse("backend");
    if cli.args.iter().any(|a| a == "--sweep") {
        run_sweep(&cli);
    } else {
        run_a6(&cli);
    }
    cli.finish();
}

/// The demo "turn right" controller the benchmarks verify.
fn demo_controller(bundle: &DomainBundle) -> Controller {
    let d = &bundle.driving;
    let ctrl = synthesize(
        "turn right",
        &RIGHT_TURN_AFTER,
        &bundle.lexicon,
        fsa_options(d),
    )
    .expect("demo steps align");
    with_default_action(&ctrl, d.stop)
}

/// The original A6 ablation: agreement sweep + cost on the paper-sized
/// conservative model.
fn run_a6(_cli: &BenchCli) {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let specs = driving_specs(d);

    // --- agreement sweep -------------------------------------------------
    let mut checked = 0usize;
    let mut disagreements = 0usize;
    for steps in [&RIGHT_TURN_BEFORE[..], &RIGHT_TURN_AFTER[..]] {
        let ctrl = synthesize("turn right", steps, &bundle.lexicon, fsa_options(d))
            .expect("demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        for kind in [ScenarioKind::TrafficLight, ScenarioKind::TwoWayStop] {
            let model = scenario_model(d, kind);
            let justice = justice_for(d, kind);
            let graph = Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter);
            for s in &specs {
                let explicit = check_graph_fair(&graph, &s.formula, &justice).holds();
                let symbolic = check_graph_fair_symbolic(&graph, &s.formula, &justice);
                checked += 1;
                if explicit != symbolic {
                    disagreements += 1;
                    println!("DISAGREEMENT: {kind:?} / {}", s.name);
                }
            }
        }
    }
    println!("agreement sweep: {checked} verdicts, {disagreements} disagreements\n");

    // --- cost on a dense (conservative) model ----------------------------
    let ctrl = demo_controller(&bundle);
    let props = [
        d.green_tl,
        d.car_left,
        d.opposite_car,
        d.ped_right,
        d.ped_front,
    ];
    let labels: Vec<PropSet> = (0..(1u32 << props.len()))
        .map(|mask| {
            let mut l = PropSet::empty();
            for (i, &p) in props.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    l.insert(p);
                }
            }
            l
        })
        .collect();
    let dense = WorldModelBuilder::new(&d.vocab)
        .name("conservative traffic light")
        .restrict_labels(labels)
        .allow_transitions(|_, _| true)
        .conservative()
        .build();
    let graph = Product::build(&dense, &ctrl).label_graph(DeadlockPolicy::Stutter);
    println!(
        "dense model: {} graph nodes, {} specs\n",
        graph.num_nodes(),
        specs.len()
    );

    let mut rows = Vec::new();
    let no_justice: [Justice; 0] = [];
    for (name, f) in [
        (
            "explicit (SCC)",
            Box::new(|phi: &ltlcheck::Ltl| check_graph_fair(&graph, phi, &no_justice).holds())
                as Box<dyn Fn(&ltlcheck::Ltl) -> bool>,
        ),
        (
            "symbolic (BDD)",
            Box::new(|phi: &ltlcheck::Ltl| check_graph_fair_symbolic(&graph, phi, &no_justice)),
        ),
    ] {
        let t0 = Instant::now();
        let satisfied = specs.iter().filter(|s| f(&s.formula)).count();
        rows.push(vec![
            name.to_owned(),
            format!("{satisfied}/15"),
            format!("{:.2?}", t0.elapsed()),
        ]);
    }
    println!(
        "{}",
        table(
            "A6 — backend cost on the conservative model (15 specs)",
            &["backend", "specs satisfied", "wall time"],
            &rows
        )
    );
    println!(
        "read: with the partitioned relation (DESIGN.md §14) the symbolic\n\
         backend is at parity with the explicit checker already at a few\n\
         thousand product states, while confirming every verdict (60/60\n\
         agreement above). Run with --sweep for the scaled models where the\n\
         symbolic backend wins outright; EXPERIMENTS.md has the crossover\n\
         table."
    );
}

/// One sweep scale's measurements.
struct ScalePoint {
    labels: usize,
    nodes: usize,
    symbolic_ms: f64,
    /// `None` once the explicit checker is over budget.
    explicit_ms: Option<f64>,
    agreement: Option<(usize, usize)>,
}

/// `--sweep`: both backends across the scaled conservative models.
fn run_sweep(cli: &BenchCli) {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let specs = driving_specs(d);
    let ctrl = demo_controller(&bundle);
    let no_justice: [Justice; 0] = [];
    let scales = if cli.fast { FAST_SCALES } else { SWEEP_SCALES };

    let mut points: Vec<ScalePoint> = Vec::new();
    let mut explicit_over_budget = false;
    for &labels in scales {
        let model = scaled_conservative_model(d, labels);
        let graph = Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter);
        let nodes = graph.num_nodes();

        let t0 = Instant::now();
        let symbolic: Vec<bool> = specs
            .iter()
            .map(|s| check_graph_fair_symbolic(&graph, &s.formula, &no_justice))
            .collect();
        let symbolic_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut explicit_ms = None;
        let mut agreement = None;
        if !explicit_over_budget {
            let t0 = Instant::now();
            let explicit: Vec<bool> = specs
                .iter()
                .map(|s| check_graph_fair(&graph, &s.formula, &no_justice).holds())
                .collect();
            let elapsed = t0.elapsed();
            explicit_ms = Some(elapsed.as_secs_f64() * 1e3);
            if !cli.fast && elapsed > EXPLICIT_BUDGET {
                explicit_over_budget = true;
            }
            let agreeing = explicit
                .iter()
                .zip(&symbolic)
                .filter(|(e, s)| e == s)
                .count();
            agreement = Some((agreeing, specs.len()));
            if agreeing != specs.len() {
                println!(
                    "DISAGREEMENT at {labels} labels: {agreeing}/{} specs",
                    specs.len()
                );
            }
        }

        if obskit::enabled() {
            let tag = format!("backend.l{labels:03}");
            obskit::gauge_set(&format!("{tag}.product_nodes"), nodes as f64);
            obskit::gauge_set(&format!("{tag}.symbolic_ms"), symbolic_ms);
            if let Some(ms) = explicit_ms {
                obskit::gauge_set(&format!("{tag}.explicit_ms"), ms);
            }
        }
        points.push(ScalePoint {
            labels,
            nodes,
            symbolic_ms,
            explicit_ms,
            agreement,
        });
    }

    // The crossover: the smallest scale where the symbolic backend beat
    // the explicit checker outright (or left it over budget entirely).
    let crossover = points
        .iter()
        .find(|p| p.explicit_ms.is_none_or(|e| p.symbolic_ms < e))
        .map(|p| p.labels);
    if obskit::enabled() {
        obskit::counter_add("backend.sweep_scales", points.len() as u64);
        if let Some(c) = crossover {
            obskit::gauge_set("backend.crossover_labels", c as f64);
        }
    }

    // --- report ----------------------------------------------------------
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.labels.to_string(),
                p.nodes.to_string(),
                p.explicit_ms
                    .map_or("over budget".to_owned(), |ms| format!("{ms:.1}ms")),
                format!("{:.1}ms", p.symbolic_ms),
                match p.agreement {
                    Some((a, n)) => format!("{a}/{n}"),
                    None => "—".to_owned(),
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "backend sweep — wall time vs product size (15 specs per scale)",
            &["labels", "product nodes", "explicit", "symbolic", "agree"],
            &rows
        )
    );
    println!("{}", chart(&points));
    match crossover {
        Some(c) => println!(
            "crossover: symbolic beats explicit from {c} labels up (recorded as\n\
             backend.crossover_labels in the obskit report)."
        ),
        None => println!("crossover: not reached on these scales."),
    }
}

/// A log-scale ASCII chart of both backends' wall times per scale.
fn chart(points: &[ScalePoint]) -> String {
    const WIDTH: f64 = 44.0;
    let times = points
        .iter()
        .flat_map(|p| p.explicit_ms.iter().copied().chain([p.symbolic_ms]));
    let max_ms = times.clone().fold(1.0f64, f64::max);
    let min_ms = times.fold(max_ms, f64::min).max(0.1);
    let span = (max_ms / min_ms).log10().max(1e-9);
    let bar = |ms: f64| {
        let len = 1 + ((ms / min_ms).log10() / span * (WIDTH - 1.0)).round() as usize;
        "█".repeat(len)
    };
    let mut out = String::from("wall time per scale (log scale):\n");
    for p in points {
        match p.explicit_ms {
            Some(ms) => out.push_str(&format!(
                "{:>4}  explicit  {} {:.1}ms\n",
                p.labels,
                bar(ms),
                ms
            )),
            None => out.push_str(&format!("{:>4}  explicit  (over budget)\n", p.labels)),
        }
        out.push_str(&format!(
            "      symbolic  {} {:.1}ms\n",
            bar(p.symbolic_ms),
            p.symbolic_ms
        ));
    }
    out
}
