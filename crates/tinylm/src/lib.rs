//! # tinylm — a from-scratch trainable language-model substrate
//!
//! The paper fine-tunes **Llama2-7B** with LoRA adapters. This crate is
//! the reproduction's stand-in: a small conditional neural language model
//! implemented from first principles, with everything DPO-AF needs from a
//! language model:
//!
//! * sampling multiple responses per prompt at a temperature
//!   ([`CondLm::sample`]),
//! * exact log-likelihoods `log P(y | x, θ)` and their gradients
//!   ([`CondLm::log_prob`], [`CondLm::log_prob_grad`]),
//! * a frozen reference copy for DPO ([`CondLm`] is `Clone`),
//! * **LoRA** low-rank adapters (paper Appendix E): hold `W` constant and
//!   train `A·B` with `rank ≪ dim` ([`AdaptMode::Lora`]).
//!
//! Components:
//!
//! * [`tape`] — a compact reverse-mode automatic-differentiation tape over
//!   `f32` vectors (the "tensor library" layer).
//! * [`Tokenizer`] — word-level tokenizer with `BOS`/`EOS` specials.
//! * [`CondLm`] — a conditional n-gram MLP language model: a task
//!   embedding concatenated with the embeddings of the last `k` tokens,
//!   through a tanh MLP to a softmax over the vocabulary. The persistent
//!   task embedding keeps generation conditioned on the prompt even
//!   beyond the context window.
//! * [`optim`] — SGD and Adam optimizers over flat parameter vectors.
//! * [`pretrain`] — cross-entropy pretraining on a corpus of
//!   `(task, response)` pairs, standing in for the "pre-trained" model.
//!
//! The architecture is deliberately small (a few thousand parameters):
//! what matters for reproducing the paper is the *training dynamics* of
//! DPO over ranked responses, not the capacity of the base model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod model;
pub mod optim;
mod pretrain_mod;
pub mod tape;
mod tokenizer;

pub use kernels::KernelMode;
pub use model::{
    AdaptMode, CondLm, GradBuffer, LmConfig, LmError, SampleOptions, SeqGraph, SeqWorkspace,
};
pub use pretrain_mod::{pretrain, pretrain_in, PretrainOptions, PretrainStats};
pub use tokenizer::{Token, Tokenizer, BOS, EOS};
