//! A compact reverse-mode automatic-differentiation tape over `f32`
//! vectors.
//!
//! Every value on the tape is a flat vector; matrices are row-major
//! vectors with their dimensions carried by the op that consumes them.
//! [`Tape::backward`] walks the recorded ops in reverse and accumulates
//! gradients for every node, which callers read off leaf nodes.
//!
//! The op set is exactly what a softmax MLP language model and the DPO
//! objective need — this is an ml-systems substrate, not a framework.
//! Besides the elementwise/scalar ops it carries four *sequence-batched*
//! ops ([`Tape::matmul`], [`Tape::broadcast_add`],
//! [`Tape::bias_log_softmax`], [`Tape::gather_sum`]) plus an embedding
//! pack ([`Tape::pack_inputs`]): one node processes every position of a
//! sequence, so a forward/backward pass costs O(ops) tape nodes instead
//! of O(ops · positions). Each batched op keeps the per-output inner
//! accumulation order identical to its per-position counterpart, so a
//! batched graph produces bit-identical values and gradients (see the
//! per-op docs for the exact ordering argument).
//!
//! Tapes and gradient buffers are reusable: [`Tape::reset`] recycles
//! value buffers for the next graph, and [`Tape::backward_into`] reuses
//! a caller-held [`GradArena`] instead of reallocating the gradient
//! arena every call.
//!
//! The numeric inner loops live in [`crate::kernels`]: blocked,
//! vectorizable forward/backward kernels with a bit-identical
//! `Reference` mode (the default) and an opt-in reassociating `Fast`
//! mode. Each tape captures the process-global [`crate::kernels::mode`]
//! when created or [`Tape::reset`] (unless pinned via
//! [`Tape::with_mode`]), and [`Tape::backward_into_pooled`] fans the
//! matmul gradient work over a `parkit` pool in byte-identical
//! contiguous blocks.
//!
//! # Example
//!
//! ```
//! use tinylm::tape::Tape;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(vec![1.0, 2.0]);
//! let w = tape.leaf(vec![0.5, -0.5, 1.0, 1.5]); // 2×2 row-major
//! let y = tape.matvec(w, 2, 2, x);
//! let h = tape.tanh(y);
//! let s = tape.sum(h);
//! let grads = tape.backward(s);
//! assert_eq!(grads[x.index()].len(), 2);
//! assert_eq!(grads[w.index()].len(), 4);
//! ```

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Position of this node on its tape (index into the gradient vector
    /// returned by [`Tape::backward`]).
    pub fn index(self) -> usize {
        self.0
    }
}

use crate::kernels::{self, KernelMode};
pub(crate) use kernels::dot;
use parkit::ThreadPool;

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    /// Elementwise addition.
    Add(VarId, VarId),
    /// Elementwise subtraction `a - b`.
    Sub(VarId, VarId),
    /// Elementwise multiplication.
    Mul(VarId, VarId),
    /// Scalar scale.
    Scale(VarId, f32),
    /// Matrix(rows×cols, row-major) × vector(cols).
    MatVec {
        m: VarId,
        rows: usize,
        cols: usize,
        x: VarId,
    },
    /// Matrix(rows×cols) × each of `n` packed column-vectors.
    MatMul {
        m: VarId,
        rows: usize,
        cols: usize,
        x: VarId,
        n: usize,
    },
    /// Chunk-wise `a + b` where `a` packs `n` chunks of `b`'s length.
    BroadcastAdd {
        a: VarId,
        b: VarId,
        n: usize,
    },
    /// Fused per-chunk bias add + log-softmax over `n` chunks.
    BiasLogSoftmax {
        a: VarId,
        b: VarId,
        n: usize,
    },
    /// Scalar: Σ over chunks of `chunk` width of the `targets[p]`-th
    /// component.
    GatherSum {
        a: VarId,
        chunk: usize,
        targets: Vec<usize>,
    },
    /// Packed per-position model inputs gathered from two embedding
    /// tables: `[shared-row ; table-row(idx[p·k]) ; … ; table-row(idx[p·k+k-1])]`
    /// for each position `p`.
    PackInputs {
        shared: VarId,
        table: VarId,
        dim: usize,
        k: usize,
        indices: Vec<usize>,
    },
    /// Elementwise tanh.
    Tanh(VarId),
    /// log-softmax over the whole vector.
    LogSoftmax(VarId),
    /// Scalar: the `i`-th component of a vector.
    Index(VarId, usize),
    /// Scalar: sum of components.
    Sum(VarId),
    /// Concatenation of several vectors.
    Concat(Vec<VarId>),
    /// Scalar: log σ(x) of a 1-element vector.
    LogSigmoid(VarId),
}

/// A reverse-mode autodiff tape.
#[derive(Debug, Default)]
pub struct Tape {
    vals: Vec<Vec<f32>>,
    ops: Vec<Op>,
    /// Value buffers recycled by [`Tape::reset`]; [`Tape::alloc`] pops
    /// from here before touching the allocator.
    spare: Vec<Vec<f32>>,
    /// Which kernel arithmetic this tape's ops use; captured from the
    /// process global at creation/reset unless pinned.
    mode: KernelMode,
    /// Set by [`Tape::with_mode`]: [`Tape::reset`] keeps the pinned mode
    /// instead of re-capturing the global (used by tests that must not
    /// depend on — or race with — the global).
    pinned: bool,
}

/// A reusable gradient arena for [`Tape::backward_into`]: one buffer per
/// tape node, recycled across backward passes so the hot training loop
/// stops reallocating the whole arena every step.
#[derive(Debug, Default)]
pub struct GradArena {
    bufs: Vec<Vec<f32>>,
    /// Dirty flag per node: set when a gradient is first written, so the
    /// backward walk skips untouched nodes without scanning their buffer.
    dirty: Vec<bool>,
    reuses: u64,
}

impl GradArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gradient buffer of `id` after a [`Tape::backward_into`] pass.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not part of the last backward pass.
    pub fn grad(&self, id: VarId) -> &[f32] {
        &self.bufs[id.0]
    }

    /// How many node buffers were reused (capacity already sufficient)
    /// across all backward passes into this arena.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

impl Tape {
    /// Creates an empty tape running the process-global
    /// [`crate::kernels::mode`] at this moment (re-captured on every
    /// [`Tape::reset`]).
    pub fn new() -> Self {
        Tape {
            mode: kernels::mode(),
            ..Self::default()
        }
    }

    /// Creates an empty tape pinned to `mode`: [`Tape::reset`] keeps it
    /// instead of re-reading the global. `Tape::default()` is pinned to
    /// nothing but starts at [`KernelMode::Reference`] unpinned.
    pub fn with_mode(mode: KernelMode) -> Self {
        Tape {
            mode,
            pinned: true,
            ..Self::default()
        }
    }

    /// The kernel mode this tape's ops currently run in.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Clears all nodes while keeping every value buffer for reuse by
    /// the next graph — the recycling half of the tape fast path. Also
    /// re-captures the process-global kernel mode (unless this tape was
    /// pinned with [`Tape::with_mode`]), which is how the thread-local
    /// workspaces on pool workers pick up a mode set after they were
    /// created: every hot path resets its workspace before building a
    /// graph.
    pub fn reset(&mut self) {
        self.spare.append(&mut self.vals);
        self.ops.clear();
        if !self.pinned {
            self.mode = kernels::mode();
        }
    }

    /// An empty `Vec<f32>` with recycled capacity when available.
    fn alloc(&mut self) -> Vec<f32> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    fn push(&mut self, val: Vec<f32>, op: Op) -> VarId {
        self.vals.push(val);
        self.ops.push(op);
        VarId(self.vals.len() - 1)
    }

    /// Records an input (leaf) node. Gradients accumulate here.
    pub fn leaf(&mut self, val: Vec<f32>) -> VarId {
        self.push(val, Op::Leaf)
    }

    /// Records a leaf by copying from a slice into a recycled buffer.
    pub fn leaf_from(&mut self, val: &[f32]) -> VarId {
        let mut buf = self.alloc();
        buf.extend_from_slice(val);
        self.push(buf, Op::Leaf)
    }

    /// The current value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this tape.
    pub fn value(&self, id: VarId) -> &[f32] {
        &self.vals[id.0]
    }

    /// Scalar value of a 1-element node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not scalar.
    pub fn scalar(&self, id: VarId) -> f32 {
        assert_eq!(self.vals[id.0].len(), 1, "node is not scalar");
        self.vals[id.0][0]
    }

    /// Elementwise `a + b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), self.vals[b.0].len());
        let mut val = self.alloc();
        val.extend(
            self.vals[a.0]
                .iter()
                .zip(&self.vals[b.0])
                .map(|(x, y)| x + y),
        );
        self.push(val, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), self.vals[b.0].len());
        let mut val = self.alloc();
        val.extend(
            self.vals[a.0]
                .iter()
                .zip(&self.vals[b.0])
                .map(|(x, y)| x - y),
        );
        self.push(val, Op::Sub(a, b))
    }

    /// Elementwise `a ⊙ b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), self.vals[b.0].len());
        let mut val = self.alloc();
        val.extend(
            self.vals[a.0]
                .iter()
                .zip(&self.vals[b.0])
                .map(|(x, y)| x * y),
        );
        self.push(val, Op::Mul(a, b))
    }

    /// `c · a`.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let mut val = self.alloc();
        val.extend(self.vals[a.0].iter().map(|x| c * x));
        self.push(val, Op::Scale(a, c))
    }

    /// `M x` where `m` is a `rows×cols` row-major matrix node.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match the operand lengths.
    pub fn matvec(&mut self, m: VarId, rows: usize, cols: usize, x: VarId) -> VarId {
        assert_eq!(self.vals[m.0].len(), rows * cols, "matrix size mismatch");
        assert_eq!(self.vals[x.0].len(), cols, "vector size mismatch");
        let mut out = self.alloc();
        out.resize(rows, 0.0);
        kernels::matmul_forward(
            &mut out,
            &self.vals[m.0],
            &self.vals[x.0],
            rows,
            cols,
            1,
            self.mode,
        );
        self.push(out, Op::MatVec { m, rows, cols, x })
    }

    /// Sequence-batched [`Tape::matvec`]: `x` packs `n` column-vectors of
    /// length `cols` (position-major); the output packs `n` result
    /// vectors of length `rows`.
    ///
    /// Bit-exactness: output `p·rows + r` is [`dot`] of matrix row `r`
    /// with chunk `p` — the same left-to-right fold `matvec` computes —
    /// so the values equal `n` separate `matvec` calls exactly. The loop
    /// kernel advances eight row dots together (each still the exact
    /// [`dot`] fold — see [`crate::kernels`]), filling the FPU pipeline
    /// without changing any output's bits in `Reference` mode.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match the operand lengths.
    pub fn matmul(&mut self, m: VarId, rows: usize, cols: usize, x: VarId, n: usize) -> VarId {
        assert_eq!(self.vals[m.0].len(), rows * cols, "matrix size mismatch");
        assert_eq!(self.vals[x.0].len(), n * cols, "packed operand mismatch");
        let mut out = self.alloc();
        out.resize(n * rows, 0.0);
        kernels::matmul_forward(
            &mut out,
            &self.vals[m.0],
            &self.vals[x.0],
            rows,
            cols,
            n,
            self.mode,
        );
        self.push(
            out,
            Op::MatMul {
                m,
                rows,
                cols,
                x,
                n,
            },
        )
    }

    /// Chunk-wise `a + b`: `a` packs `n` chunks of `b`'s length, and `b`
    /// is added to every chunk (the batched form of adding a bias to each
    /// position). Values equal `n` elementwise [`Tape::add`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s length is not `n ·` `b`'s length.
    pub fn broadcast_add(&mut self, a: VarId, b: VarId, n: usize) -> VarId {
        let len = self.vals[b.0].len();
        assert_eq!(self.vals[a.0].len(), n * len, "packed operand mismatch");
        let mut val = self.alloc();
        val.extend(
            self.vals[a.0]
                .iter()
                .enumerate()
                .map(|(i, x)| x + self.vals[b.0][i % len]),
        );
        self.push(val, Op::BroadcastAdd { a, b, n })
    }

    /// Fused bias add + numerically stable log-softmax, per chunk: for
    /// each of the `n` chunks of `a`, computes `log_softmax(chunk + b)`.
    /// The per-chunk arithmetic is the exact composition of
    /// [`Tape::add`] and [`Tape::log_softmax`], so values match the
    /// unfused pair bit-for-bit; fusing removes one intermediate node
    /// (and its buffer) per sequence.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s length is not `n ·` `b`'s length.
    pub fn bias_log_softmax(&mut self, a: VarId, b: VarId, n: usize) -> VarId {
        let len = self.vals[b.0].len();
        assert_eq!(self.vals[a.0].len(), n * len, "packed operand mismatch");
        let mut val = self.alloc();
        val.resize(n * len, 0.0);
        kernels::bias_log_softmax_forward(&mut val, &self.vals[a.0], &self.vals[b.0], n);
        self.push(val, Op::BiasLogSoftmax { a, b, n })
    }

    /// Scalar `Σ_p a[p·chunk + targets[p]]` — the batched form of the
    /// per-position [`Tape::index`] + [`Tape::add`] chain that sums one
    /// picked log-probability per position. The fold starts from the
    /// first picked component and adds left-to-right, exactly like the
    /// chain of scalar `add` nodes it replaces.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty, a target is out of chunk range, or
    /// `a` does not pack `targets.len()` chunks.
    pub fn gather_sum(&mut self, a: VarId, chunk: usize, targets: Vec<usize>) -> VarId {
        assert!(!targets.is_empty(), "gather_sum needs at least one chunk");
        assert_eq!(
            self.vals[a.0].len(),
            targets.len() * chunk,
            "packed operand mismatch"
        );
        for &t in &targets {
            assert!(t < chunk, "target {t} out of chunk range {chunk}");
        }
        let acc = kernels::gather_sum_forward(&self.vals[a.0], chunk, &targets);
        let mut val = self.alloc();
        val.push(acc);
        self.push(val, Op::GatherSum { a, chunk, targets })
    }

    /// Packs per-position model inputs from two embedding tables: for
    /// each position `p`, the output chunk is `shared` followed by the
    /// `k` rows `table[indices[p·k + j]]` (`table` is row-major with
    /// `dim`-wide rows). One node replaces the per-position pattern of
    /// `k` embedding leaves plus a [`Tape::concat`].
    ///
    /// The backward pass accumulates into `shared`'s gradient in
    /// *reverse* position order and into `table`'s gradient in *forward*
    /// `(position, slot)` order — matching, respectively, the reverse
    /// node-order walk over per-position `concat` nodes and the forward
    /// scatter loop over embedding leaves that the unbatched graph
    /// performs, so gradients stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is not a multiple of `k`, an index is out of
    /// table range, or `table`'s length is not a multiple of `dim`.
    pub fn pack_inputs(
        &mut self,
        shared: VarId,
        table: VarId,
        dim: usize,
        k: usize,
        indices: Vec<usize>,
    ) -> VarId {
        assert!(
            k > 0 && indices.len().is_multiple_of(k),
            "indices must pack k per position"
        );
        assert_eq!(
            self.vals[table.0].len() % dim,
            0,
            "table rows must be dim-wide"
        );
        let rows = self.vals[table.0].len() / dim;
        let shared_len = self.vals[shared.0].len();
        let n = indices.len() / k;
        let mut val = self.alloc();
        val.reserve(n * (shared_len + k * dim));
        {
            let sh = &self.vals[shared.0];
            let tb = &self.vals[table.0];
            for pos in indices.chunks(k) {
                val.extend_from_slice(sh);
                for &i in pos {
                    assert!(i < rows, "index {i} out of table range {rows}");
                    val.extend_from_slice(&tb[i * dim..(i + 1) * dim]);
                }
            }
        }
        self.push(
            val,
            Op::PackInputs {
                shared,
                table,
                dim,
                k,
                indices,
            },
        )
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let mut val = self.alloc();
        val.extend(self.vals[a.0].iter().map(|x| x.tanh()));
        self.push(val, Op::Tanh(a))
    }

    /// Numerically stable log-softmax over the whole vector.
    pub fn log_softmax(&mut self, a: VarId) -> VarId {
        let mut val = self.alloc();
        {
            let v = &self.vals[a.0];
            let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_z = max + v.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
            val.extend(v.iter().map(|x| x - log_z));
        }
        self.push(val, Op::LogSoftmax(a))
    }

    /// The scalar `a[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn index(&mut self, a: VarId, i: usize) -> VarId {
        let v = self.vals[a.0][i];
        let mut val = self.alloc();
        val.push(v);
        self.push(val, Op::Index(a, i))
    }

    /// The scalar `Σ a`.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let s = self.vals[a.0].iter().sum();
        let mut val = self.alloc();
        val.push(s);
        self.push(val, Op::Sum(a))
    }

    /// Concatenation of vectors.
    pub fn concat(&mut self, parts: &[VarId]) -> VarId {
        let mut val = self.alloc();
        for p in parts {
            val.extend_from_slice(&self.vals[p.0]);
        }
        self.push(val, Op::Concat(parts.to_vec()))
    }

    /// Numerically stable `log σ(x)` of a scalar node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not scalar.
    pub fn log_sigmoid(&mut self, a: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), 1, "log_sigmoid takes a scalar");
        let x = self.vals[a.0][0];
        // log σ(x) = -log(1 + e^{-x}) = min(x, 0) - ln(1 + e^{-|x|})
        let v = x.min(0.0) - (-x.abs()).exp().ln_1p();
        let mut val = self.alloc();
        val.push(v);
        self.push(val, Op::LogSigmoid(a))
    }

    /// Runs backpropagation from a scalar node; returns one gradient
    /// vector per node (same indexing as [`VarId::index`]).
    ///
    /// Allocates a fresh arena per call; hot loops should hold a
    /// [`GradArena`] and call [`Tape::backward_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not scalar.
    pub fn backward(&self, root: VarId) -> Vec<Vec<f32>> {
        let mut arena = GradArena::new();
        self.backward_into(root, &mut arena);
        arena.bufs
    }

    /// [`Tape::backward`] into a reusable arena: node gradient buffers
    /// are recycled across calls (read them via [`GradArena::grad`]).
    ///
    /// Nodes whose gradient was never written are skipped via a dirty
    /// flag set on first write — no per-node O(len) zero scan.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not scalar.
    pub fn backward_into(&self, root: VarId, arena: &mut GradArena) {
        self.backward_into_in(root, arena, None);
    }

    /// [`Tape::backward_into`] with the matmul gradient work fanned over
    /// a [`parkit::ThreadPool`].
    ///
    /// Byte-identical at any thread count: only the `MatMul` arm fans
    /// out, splitting the matrix gradient into contiguous row blocks and
    /// the packed operand gradient into contiguous position blocks.
    /// Every task computes its elements' *complete* accumulation folds
    /// (all positions in reverse for its rows; all rows forward for its
    /// positions) over disjoint output slices — no partial folds are
    /// combined, so no f32 addition is reassociated and the block split
    /// never shows up in the bits. The fused bias+log-softmax backward
    /// stays serial: its shared bias gradient crosses positions, and
    /// splitting it would either reassociate that fold or duplicate the
    /// `exp` work that dominates the op.
    pub fn backward_into_pooled(&self, root: VarId, arena: &mut GradArena, pool: &ThreadPool) {
        self.backward_into_in(root, arena, Some(pool));
    }

    fn backward_into_in(&self, root: VarId, arena: &mut GradArena, pool: Option<&ThreadPool>) {
        assert_eq!(self.vals[root.0].len(), 1, "backward root must be scalar");
        let n = self.vals.len();
        let prior = n.min(arena.bufs.len());
        for (i, buf) in arena.bufs.iter_mut().enumerate().take(prior) {
            if buf.capacity() >= self.vals[i].len() {
                arena.reuses += 1;
            }
            buf.clear();
            buf.resize(self.vals[i].len(), 0.0);
        }
        for i in arena.bufs.len()..n {
            arena.bufs.push(vec![0.0; self.vals[i].len()]);
        }
        arena.dirty.clear();
        arena.dirty.resize(n, false);
        let grads = &mut arena.bufs;
        let dirty = &mut arena.dirty;
        grads[root.0][0] = 1.0;
        dirty[root.0] = true;
        for i in (0..=root.0).rev() {
            if !dirty[i] {
                continue;
            }
            // Split off the current gradient to appease the borrow checker.
            let g = std::mem::take(&mut grads[i]);
            match &self.ops[i] {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    dirty[a.0] = true;
                    dirty[b.0] = true;
                    for (k, &gk) in g.iter().enumerate() {
                        grads[a.0][k] += gk;
                        grads[b.0][k] += gk;
                    }
                }
                // (indexing by k is intentional throughout: gradient
                // slices alias multiple nodes, so zip-style iteration
                // would fight the borrow checker for no clarity gain)
                Op::Sub(a, b) => {
                    dirty[a.0] = true;
                    dirty[b.0] = true;
                    for (k, &gk) in g.iter().enumerate() {
                        grads[a.0][k] += gk;
                        grads[b.0][k] -= gk;
                    }
                }
                Op::Mul(a, b) => {
                    dirty[a.0] = true;
                    dirty[b.0] = true;
                    for (k, &gk) in g.iter().enumerate() {
                        let (av, bv) = (self.vals[a.0][k], self.vals[b.0][k]);
                        grads[a.0][k] += gk * bv;
                        grads[b.0][k] += gk * av;
                    }
                }
                Op::Scale(a, c) => {
                    dirty[a.0] = true;
                    for (k, &gk) in g.iter().enumerate() {
                        grads[a.0][k] += gk * c;
                    }
                }
                Op::MatVec { m, rows, cols, x } => {
                    dirty[m.0] = true;
                    dirty[x.0] = true;
                    let xv = &self.vals[x.0];
                    let mv = &self.vals[m.0];
                    if m.0 == x.0 {
                        // Aliased operands share one gradient buffer:
                        // keep the historical interleaved indexed walk.
                        let gb = &mut grads[m.0];
                        for r in 0..*rows {
                            let gr = g[r];
                            if gr == 0.0 {
                                continue;
                            }
                            for c in 0..*cols {
                                gb[r * cols + c] += gr * xv[c];
                                gb[c] += gr * mv[r * cols + c];
                            }
                        }
                    } else {
                        let mut gm = std::mem::take(&mut grads[m.0]);
                        let mut gx = std::mem::take(&mut grads[x.0]);
                        kernels::matmul_backward(
                            &mut gm, &mut gx, &g, mv, xv, *rows, *cols, 1, self.mode,
                        );
                        grads[m.0] = gm;
                        grads[x.0] = gx;
                    }
                }
                // Positions are walked in reverse: the unbatched graph
                // records one matvec per position, and the reverse
                // node-order walk reaches them last-position-first, so
                // the shared matrix gradient must accumulate in that
                // same order to stay bit-identical (the ordering
                // argument continues in `kernels::matmul_backward`).
                Op::MatMul {
                    m,
                    rows,
                    cols,
                    x,
                    n,
                } => {
                    dirty[m.0] = true;
                    dirty[x.0] = true;
                    let xv = &self.vals[x.0];
                    let mv = &self.vals[m.0];
                    if m.0 == x.0 {
                        // Aliased operands share one gradient buffer:
                        // keep the historical interleaved indexed walk.
                        let gb = &mut grads[m.0];
                        for p in (0..*n).rev() {
                            for r in 0..*rows {
                                let gr = g[p * rows + r];
                                if gr == 0.0 {
                                    continue;
                                }
                                for c in 0..*cols {
                                    gb[r * cols + c] += gr * xv[p * cols + c];
                                    gb[p * cols + c] += gr * mv[r * cols + c];
                                }
                            }
                        }
                    } else {
                        let mut gm = std::mem::take(&mut grads[m.0]);
                        let mut gx = std::mem::take(&mut grads[x.0]);
                        match pool {
                            Some(pool) if pool.threads() > 1 && *n > 1 && *cols > 0 => {
                                self.matmul_backward_pooled(
                                    &mut gm, &mut gx, &g, mv, xv, *rows, *cols, *n, pool,
                                );
                            }
                            _ => kernels::matmul_backward(
                                &mut gm, &mut gx, &g, mv, xv, *rows, *cols, *n, self.mode,
                            ),
                        }
                        grads[m.0] = gm;
                        grads[x.0] = gx;
                    }
                }
                // Reverse position order for the same reason as MatMul:
                // the per-position `add` nodes would be walked
                // last-position-first.
                Op::BroadcastAdd { a, b, n } => {
                    dirty[a.0] = true;
                    dirty[b.0] = true;
                    if a.0 == b.0 {
                        let len = g.len() / n;
                        let gb = &mut grads[a.0];
                        for p in (0..*n).rev() {
                            for k in 0..len {
                                let gk = g[p * len + k];
                                gb[p * len + k] += gk;
                                gb[k] += gk;
                            }
                        }
                    } else {
                        let mut ga = std::mem::take(&mut grads[a.0]);
                        let mut gb = std::mem::take(&mut grads[b.0]);
                        kernels::broadcast_add_backward(&mut ga, &mut gb, &g, *n);
                        grads[a.0] = ga;
                        grads[b.0] = gb;
                    }
                }
                // Per chunk this is the exact composition of the
                // LogSoftmax and Add backward rules: both `a` and the
                // bias receive `g[j] − (Σg)·softmax_j`, the single f32
                // expression the unfused pair produces. Chunks walk in
                // reverse position order for the shared bias gradient.
                Op::BiasLogSoftmax { a, b, n } => {
                    dirty[a.0] = true;
                    dirty[b.0] = true;
                    if a.0 == b.0 {
                        let len = g.len() / n;
                        let y = &self.vals[i];
                        let gb = &mut grads[a.0];
                        for p in (0..*n).rev() {
                            let gc = &g[p * len..(p + 1) * len];
                            let gsum: f32 = gc.iter().sum();
                            for j in 0..len {
                                let d = gc[j] - gsum * y[p * len + j].exp();
                                gb[p * len + j] += d;
                                gb[j] += d;
                            }
                        }
                    } else {
                        let mut ga = std::mem::take(&mut grads[a.0]);
                        let mut gb = std::mem::take(&mut grads[b.0]);
                        kernels::bias_log_softmax_backward(&mut ga, &mut gb, &g, &self.vals[i], *n);
                        grads[a.0] = ga;
                        grads[b.0] = gb;
                    }
                }
                Op::GatherSum { a, chunk, targets } => {
                    dirty[a.0] = true;
                    kernels::gather_sum_backward(&mut grads[a.0], g[0], *chunk, targets);
                }
                // `shared` accumulates in reverse position order (the
                // per-position concat nodes would be walked
                // last-position-first); `table` accumulates in forward
                // (position, slot) order (the unbatched graph's final
                // embedding scatter runs forward over its leaves).
                Op::PackInputs {
                    shared,
                    table,
                    dim,
                    k,
                    indices,
                } => {
                    dirty[shared.0] = true;
                    dirty[table.0] = true;
                    if shared.0 == table.0 {
                        let n = indices.len() / k;
                        let shared_len = self.vals[shared.0].len();
                        let stride = shared_len + k * dim;
                        let gb = &mut grads[shared.0];
                        for p in (0..n).rev() {
                            for j in 0..shared_len {
                                gb[j] += g[p * stride + j];
                            }
                        }
                        for (p, pos) in indices.chunks(*k).enumerate() {
                            for (slot, &idx) in pos.iter().enumerate() {
                                let src = p * stride + shared_len + slot * dim;
                                for j in 0..*dim {
                                    gb[idx * dim + j] += g[src + j];
                                }
                            }
                        }
                    } else {
                        let mut gshared = std::mem::take(&mut grads[shared.0]);
                        let mut gtable = std::mem::take(&mut grads[table.0]);
                        kernels::pack_inputs_backward(
                            &mut gshared,
                            &mut gtable,
                            &g,
                            *dim,
                            *k,
                            indices,
                        );
                        grads[shared.0] = gshared;
                        grads[table.0] = gtable;
                    }
                }
                Op::Tanh(a) => {
                    dirty[a.0] = true;
                    let y = &self.vals[i];
                    for ((ga_k, &gk), &yk) in grads[a.0].iter_mut().zip(&g).zip(y) {
                        *ga_k += gk * (1.0 - yk * yk);
                    }
                }
                Op::LogSoftmax(a) => {
                    // d/dx_j (x_k - logZ) = δ_jk - softmax(x)_j
                    dirty[a.0] = true;
                    let gsum: f32 = g.iter().sum();
                    for (j, &yj) in self.vals[i].iter().enumerate() {
                        let p = yj.exp();
                        grads[a.0][j] += g[j] - gsum * p;
                    }
                }
                Op::Index(a, idx) => {
                    dirty[a.0] = true;
                    grads[a.0][*idx] += g[0];
                }
                Op::Sum(a) => {
                    dirty[a.0] = true;
                    for gk in grads[a.0].iter_mut() {
                        *gk += g[0];
                    }
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        dirty[p.0] = true;
                        let len = self.vals[p.0].len();
                        for k in 0..len {
                            grads[p.0][k] += g[offset + k];
                        }
                        offset += len;
                    }
                }
                Op::LogSigmoid(a) => {
                    // d/dx log σ(x) = 1 - σ(x) = σ(-x)
                    dirty[a.0] = true;
                    let x = self.vals[a.0][0];
                    let sig_neg = 1.0 / (1.0 + x.exp());
                    grads[a.0][0] += g[0] * sig_neg;
                }
            }
            grads[i] = g;
        }
    }

    /// Fans one MatMul node's backward over the pool: `gm` splits into
    /// contiguous row blocks, `gx` into contiguous position blocks, one
    /// task per block. Each task runs its elements' complete folds via
    /// the block kernels, so the result is byte-identical to the serial
    /// kernel at any thread count (property-tested across every block
    /// split in `kernels`).
    // ALLOW: the argument list is the matmul gradient problem statement
    // (two outputs, three inputs, three dims, pool); bundling them in a
    // struct for one private call site would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn matmul_backward_pooled(
        &self,
        gm: &mut [f32],
        gx: &mut [f32],
        g: &[f32],
        mv: &[f32],
        xv: &[f32],
        rows: usize,
        cols: usize,
        n: usize,
        pool: &ThreadPool,
    ) {
        let mode = self.mode;
        let t = pool.threads();
        let row_block = rows.div_ceil(t).max(1);
        let pos_block = n.div_ceil(t).max(1);
        pool.scope(|scope| {
            for (bi, chunk) in gm.chunks_mut(row_block * cols).enumerate() {
                let r0 = bi * row_block;
                scope.spawn(move || {
                    kernels::matmul_backward_gm_block(chunk, g, xv, r0, rows, cols, n, mode);
                });
            }
            for (bi, chunk) in gx.chunks_mut(pos_block * cols).enumerate() {
                let p0 = bi * pos_block;
                scope.spawn(move || {
                    kernels::matmul_backward_gx_block(chunk, g, mv, p0, rows, cols, mode);
                });
            }
        });
        // A flight-recorder beat per pooled matmul keeps long training
        // epochs visible in the black-box dump.
        obskit::recorder::tick();
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` iff the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // ALLOW: index-parallel comparisons read clearest.
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Central finite difference of `f` at `x` in coordinate `i`.
    fn numeric_grad(f: impl Fn(&[f32]) -> f32, x: &[f32], i: usize) -> f32 {
        let h = 1e-3;
        let mut xp = x.to_vec();
        xp[i] += h;
        let mut xm = x.to_vec();
        xm[i] -= h;
        (f(&xp) - f(&xm)) / (2.0 * h)
    }

    #[test]
    fn add_mul_grads() {
        let mut tape = Tape::new();
        let a = tape.leaf(vec![1.0, 2.0]);
        let b = tape.leaf(vec![3.0, -1.0]);
        let prod = tape.mul(a, b);
        let s = tape.sum(prod);
        assert!((tape.scalar(s) - 1.0).abs() < 1e-6);
        let grads = tape.backward(s);
        assert_eq!(grads[a.index()], vec![3.0, -1.0]);
        assert_eq!(grads[b.index()], vec![1.0, 2.0]);
    }

    #[test]
    fn matvec_forward_and_grad() {
        let m = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        let x = vec![5.0, 6.0];
        let mut tape = Tape::new();
        let mv = tape.leaf(m.clone());
        let xv = tape.leaf(x.clone());
        let y = tape.matvec(mv, 2, 2, xv);
        assert_eq!(tape.value(y), &[17.0, 39.0]);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        // d(sum(Mx))/dM = [x; x], d/dx = column sums of M.
        assert_eq!(grads[mv.index()], vec![5.0, 6.0, 5.0, 6.0]);
        assert_eq!(grads[xv.index()], vec![4.0, 6.0]);
    }

    #[test]
    fn log_softmax_is_normalized() {
        let mut tape = Tape::new();
        let x = tape.leaf(vec![1.0, 2.0, 3.0]);
        let ls = tape.log_softmax(x);
        let total: f32 = tape.value(ls).iter().map(|l| l.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_stable_for_large_inputs() {
        let mut tape = Tape::new();
        let x = tape.leaf(vec![1000.0, 999.0]);
        let ls = tape.log_softmax(x);
        assert!(tape.value(ls).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_sigmoid_matches_reference() {
        for x in [-20.0f32, -1.0, 0.0, 1.0, 20.0] {
            let mut tape = Tape::new();
            let v = tape.leaf(vec![x]);
            let ls = tape.log_sigmoid(v);
            let expected = (1.0 / (1.0 + (-f64::from(x)).exp())).ln() as f32;
            assert!(
                (tape.scalar(ls) - expected).abs() < 1e-5,
                "x={x}: {} vs {}",
                tape.scalar(ls),
                expected
            );
        }
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        // f(w) = logsoftmax(W2 · tanh(W1 x))[target]
        let x = vec![0.3, -0.7, 0.2];
        let w1: Vec<f32> = (0..12).map(|i| (i as f32 * 0.37).sin() * 0.5).collect();
        let w2: Vec<f32> = (0..8).map(|i| (i as f32 * 0.53).cos() * 0.5).collect();

        let f_of_w1 = |w: &[f32]| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let w1v = tape.leaf(w.to_vec());
            let w2v = tape.leaf(w2.clone());
            let h = tape.matvec(w1v, 4, 3, xv);
            let t = tape.tanh(h);
            let o = tape.matvec(w2v, 2, 4, t);
            let ls = tape.log_softmax(o);
            let picked = tape.index(ls, 1);
            tape.scalar(picked)
        };

        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let w1v = tape.leaf(w1.clone());
        let w2v = tape.leaf(w2.clone());
        let h = tape.matvec(w1v, 4, 3, xv);
        let t = tape.tanh(h);
        let o = tape.matvec(w2v, 2, 4, t);
        let ls = tape.log_softmax(o);
        let picked = tape.index(ls, 1);
        let grads = tape.backward(picked);

        for i in 0..w1.len() {
            let num = numeric_grad(f_of_w1, &w1, i);
            let ana = grads[w1v.index()][i];
            assert!(
                (num - ana).abs() < 2e-2,
                "w1[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// The batched matmul produces exactly the values and gradients of
    /// per-position matvec calls — same dots, same accumulation order.
    #[test]
    fn matmul_is_bitwise_batched_matvec() {
        let rows = 3;
        let cols = 4;
        let n = 5;
        let m: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.7).sin()).collect();
        let xs: Vec<f32> = (0..n * cols).map(|i| (i as f32 * 0.31).cos()).collect();

        // Unbatched reference: one matvec per chunk, summed via the same
        // picked-index chain the model builds.
        let mut ref_tape = Tape::new();
        let mv = ref_tape.leaf(m.clone());
        let mut total = None;
        let mut outs = Vec::new();
        for p in 0..n {
            let x = ref_tape.leaf(xs[p * cols..(p + 1) * cols].to_vec());
            let y = ref_tape.matvec(mv, rows, cols, x);
            outs.push((x, y));
            let s = ref_tape.sum(y);
            total = Some(match total {
                None => s,
                Some(acc) => ref_tape.add(acc, s),
            });
        }
        let ref_root = total.expect("n > 0");
        let ref_grads = ref_tape.backward(ref_root);

        let mut tape = Tape::new();
        let mv2 = tape.leaf(m.clone());
        let xv2 = tape.leaf(xs.clone());
        let y = tape.matmul(mv2, rows, cols, xv2, n);
        let s = tape.sum(y);
        let grads = tape.backward(s);

        for p in 0..n {
            assert_eq!(
                &tape.value(y)[p * rows..(p + 1) * rows],
                ref_tape.value(outs[p].1),
                "chunk {p} forward differs"
            );
            assert_eq!(
                &grads[xv2.index()][p * cols..(p + 1) * cols],
                &ref_grads[outs[p].0.index()][..],
                "chunk {p} x-gradient differs"
            );
        }
        assert_eq!(grads[mv2.index()], ref_grads[mv.index()]);
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let rows = 2;
        let cols = 3;
        let n = 3;
        let m: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.43).sin()).collect();
        let xs: Vec<f32> = (0..n * cols).map(|i| (i as f32 * 0.17).cos()).collect();
        let f_of_m = |w: &[f32]| -> f32 {
            let mut tape = Tape::new();
            let mv = tape.leaf(w.to_vec());
            let xv = tape.leaf(xs.clone());
            let y = tape.matmul(mv, rows, cols, xv, n);
            let t = tape.tanh(y);
            let s = tape.sum(t);
            tape.scalar(s)
        };
        let mut tape = Tape::new();
        let mv = tape.leaf(m.clone());
        let xv = tape.leaf(xs.clone());
        let y = tape.matmul(mv, rows, cols, xv, n);
        let t = tape.tanh(y);
        let s = tape.sum(t);
        let grads = tape.backward(s);
        for i in 0..m.len() {
            let num = numeric_grad(f_of_m, &m, i);
            assert!(
                (num - grads[mv.index()][i]).abs() < 2e-2,
                "m[{i}]: numeric {num} vs analytic {}",
                grads[mv.index()][i]
            );
        }
        let f_of_x = |x: &[f32]| -> f32 {
            let mut tape = Tape::new();
            let mv = tape.leaf(m.clone());
            let xv = tape.leaf(x.to_vec());
            let y = tape.matmul(mv, rows, cols, xv, n);
            let t = tape.tanh(y);
            let s = tape.sum(t);
            tape.scalar(s)
        };
        for i in 0..xs.len() {
            let num = numeric_grad(f_of_x, &xs, i);
            assert!(
                (num - grads[xv.index()][i]).abs() < 2e-2,
                "x[{i}]: numeric {num} vs analytic {}",
                grads[xv.index()][i]
            );
        }
    }

    /// The fused bias+log-softmax op matches the unfused broadcast_add +
    /// per-chunk log_softmax composition bit-for-bit, and its gradient
    /// matches finite differences.
    #[test]
    fn bias_log_softmax_matches_unfused_and_finite_difference() {
        let len = 4;
        let n = 3;
        let a: Vec<f32> = (0..n * len).map(|i| (i as f32 * 0.61).sin()).collect();
        let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.29).cos()).collect();

        // Unfused reference per chunk.
        let mut ref_tape = Tape::new();
        let mut fused_tape = Tape::new();
        let av = fused_tape.leaf(a.clone());
        let bv = fused_tape.leaf(b.clone());
        let fused = fused_tape.bias_log_softmax(av, bv, n);
        for p in 0..n {
            let ac = ref_tape.leaf(a[p * len..(p + 1) * len].to_vec());
            let bc = ref_tape.leaf(b.clone());
            let sum = ref_tape.add(ac, bc);
            let ls = ref_tape.log_softmax(sum);
            assert_eq!(
                &fused_tape.value(fused)[p * len..(p + 1) * len],
                ref_tape.value(ls),
                "chunk {p} differs from unfused composition"
            );
        }

        // Finite-difference gradient check through a picked-target root,
        // the shape the model uses.
        let targets = vec![1usize, 3, 0];
        let f_of = |which: usize, v: &[f32]| -> f32 {
            let mut tape = Tape::new();
            let av = tape.leaf(if which == 0 { v.to_vec() } else { a.clone() });
            let bv = tape.leaf(if which == 1 { v.to_vec() } else { b.clone() });
            let ls = tape.bias_log_softmax(av, bv, n);
            let root = tape.gather_sum(ls, len, targets.clone());
            tape.scalar(root)
        };
        let mut tape = Tape::new();
        let av2 = tape.leaf(a.clone());
        let bv2 = tape.leaf(b.clone());
        let ls = tape.bias_log_softmax(av2, bv2, n);
        let root = tape.gather_sum(ls, len, targets.clone());
        let grads = tape.backward(root);
        for i in 0..a.len() {
            let num = numeric_grad(|v| f_of(0, v), &a, i);
            assert!(
                (num - grads[av2.index()][i]).abs() < 2e-2,
                "a[{i}]: numeric {num} vs analytic {}",
                grads[av2.index()][i]
            );
        }
        for i in 0..b.len() {
            let num = numeric_grad(|v| f_of(1, v), &b, i);
            assert!(
                (num - grads[bv2.index()][i]).abs() < 2e-2,
                "b[{i}]: numeric {num} vs analytic {}",
                grads[bv2.index()][i]
            );
        }
    }

    /// broadcast_add equals per-chunk add, values and gradients.
    #[test]
    fn broadcast_add_matches_per_chunk_add() {
        let len = 3;
        let n = 4;
        let a: Vec<f32> = (0..n * len).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b = vec![0.25, -1.5, 3.0];
        let mut tape = Tape::new();
        let av = tape.leaf(a.clone());
        let bv = tape.leaf(b.clone());
        let sum = tape.broadcast_add(av, bv, n);
        let t = tape.tanh(sum);
        let s = tape.sum(t);
        let grads = tape.backward(s);
        let mut bgrad = vec![0.0f32; len];
        // Reverse chunk order, matching the op's backward walk.
        for p in (0..n).rev() {
            for k in 0..len {
                let y = (a[p * len + k] + b[k]).tanh();
                assert_eq!(tape.value(sum)[p * len + k], a[p * len + k] + b[k]);
                bgrad[k] += 1.0 - y * y;
            }
        }
        assert_eq!(grads[bv.index()], bgrad);
    }

    /// gather_sum equals the left-to-right picked-index add chain.
    #[test]
    fn gather_sum_matches_index_add_chain() {
        let chunk = 4;
        let targets = vec![2usize, 0, 3];
        let a: Vec<f32> = (0..chunk * targets.len())
            .map(|i| (i as f32 * 0.77).sin())
            .collect();

        let mut ref_tape = Tape::new();
        let ar = ref_tape.leaf(a.clone());
        let mut total = None;
        for (p, &t) in targets.iter().enumerate() {
            // Per-chunk slice indices into the packed vector.
            let picked = ref_tape.index(ar, p * chunk + t);
            total = Some(match total {
                None => picked,
                Some(acc) => ref_tape.add(acc, picked),
            });
        }
        let ref_root = total.expect("targets non-empty");
        let ref_grads = ref_tape.backward(ref_root);

        let mut tape = Tape::new();
        let av = tape.leaf(a.clone());
        let root = tape.gather_sum(av, chunk, targets.clone());
        assert_eq!(tape.scalar(root), ref_tape.scalar(ref_root));
        let grads = tape.backward(root);
        assert_eq!(grads[av.index()], ref_grads[ar.index()]);
    }

    /// pack_inputs gathers the right rows and scatters gradients back to
    /// both tables.
    #[test]
    fn pack_inputs_forward_and_grad() {
        let dim = 2;
        let k = 2;
        let shared = vec![9.0f32, 8.0];
        let table = vec![0.0f32, 1.0, 10.0, 11.0, 20.0, 21.0]; // 3 rows
        let indices = vec![2usize, 0, 1, 2];
        let mut tape = Tape::new();
        let sh = tape.leaf(shared.clone());
        let tb = tape.leaf(table.clone());
        let x = tape.pack_inputs(sh, tb, dim, k, indices);
        assert_eq!(
            tape.value(x),
            &[9.0, 8.0, 20.0, 21.0, 0.0, 1.0, 9.0, 8.0, 10.0, 11.0, 20.0, 21.0]
        );
        let s = tape.sum(x);
        let grads = tape.backward(s);
        // Shared row appears once per position.
        assert_eq!(grads[sh.index()], vec![2.0, 2.0]);
        // Row 2 appears twice, rows 0 and 1 once.
        assert_eq!(grads[tb.index()], vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    /// reset + backward_into reuse buffers and reproduce fresh-tape
    /// results exactly.
    #[test]
    fn reset_and_arena_reuse_are_exact() {
        let mut arena = GradArena::new();
        let mut tape = Tape::new();
        let mut fresh_results = Vec::new();
        for round in 0..3 {
            tape.reset();
            let scale = 1.0 + round as f32;
            let a = tape.leaf(vec![0.3 * scale, -0.7, 0.2 * scale]);
            let b = tape.leaf(vec![1.0, 2.0, -1.0]);
            let m = tape.mul(a, b);
            let t = tape.tanh(m);
            let s = tape.sum(t);
            tape.backward_into(s, &mut arena);
            fresh_results.push((tape.scalar(s), arena.grad(a).to_vec()));

            // A fresh tape + fresh arena agree bit-for-bit.
            let mut f = Tape::new();
            let a2 = f.leaf(vec![0.3 * scale, -0.7, 0.2 * scale]);
            let b2 = f.leaf(vec![1.0, 2.0, -1.0]);
            let m2 = f.mul(a2, b2);
            let t2 = f.tanh(m2);
            let s2 = f.sum(t2);
            let grads = f.backward(s2);
            assert_eq!(f.scalar(s2), fresh_results[round].0);
            assert_eq!(grads[a2.index()], fresh_results[round].1);
        }
        // From the second round on every buffer is recycled.
        assert!(arena.reuses() >= 5, "reuses = {}", arena.reuses());
    }

    proptest! {
        /// Every op's gradient matches central finite differences on a
        /// random composite expression g(a) = sum(tanh(a ⊙ a + c·a)).
        #[test]
        fn composite_grad_matches_numeric(
            vals in proptest::collection::vec(-2.0f32..2.0, 2..6),
            c in -2.0f32..2.0,
        ) {
            let f = |a: &[f32]| -> f32 {
                let mut tape = Tape::new();
                let av = tape.leaf(a.to_vec());
                let sq = tape.mul(av, av);
                let sc = tape.scale(av, c);
                let s = tape.add(sq, sc);
                let t = tape.tanh(s);
                let out = tape.sum(t);
                tape.scalar(out)
            };
            let mut tape = Tape::new();
            let av = tape.leaf(vals.clone());
            let sq = tape.mul(av, av);
            let sc = tape.scale(av, c);
            let s = tape.add(sq, sc);
            let t = tape.tanh(s);
            let out = tape.sum(t);
            let grads = tape.backward(out);
            for i in 0..vals.len() {
                let num = numeric_grad(f, &vals, i);
                let ana = grads[av.index()][i];
                prop_assert!((num - ana).abs() < 5e-2, "i={}: {} vs {}", i, num, ana);
            }
        }

        /// Concat routes gradients to the right parts.
        #[test]
        fn concat_grad_routing(
            a in proptest::collection::vec(-1.0f32..1.0, 1..4),
            b in proptest::collection::vec(-1.0f32..1.0, 1..4),
        ) {
            let mut tape = Tape::new();
            let av = tape.leaf(a.clone());
            let bv = tape.leaf(b.clone());
            let cat = tape.concat(&[av, bv]);
            let s = tape.sum(cat);
            let grads = tape.backward(s);
            prop_assert!(grads[av.index()].iter().all(|&g| (g - 1.0).abs() < 1e-6));
            prop_assert!(grads[bv.index()].iter().all(|&g| (g - 1.0).abs() < 1e-6));
        }
    }
}
