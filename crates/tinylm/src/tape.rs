//! A compact reverse-mode automatic-differentiation tape over `f32`
//! vectors.
//!
//! Every value on the tape is a flat vector; matrices are row-major
//! vectors with their dimensions carried by the op that consumes them.
//! [`Tape::backward`] walks the recorded ops in reverse and accumulates
//! gradients for every node, which callers read off leaf nodes.
//!
//! The op set is exactly what a softmax MLP language model and the DPO
//! objective need — this is an ml-systems substrate, not a framework.
//!
//! # Example
//!
//! ```
//! use tinylm::tape::Tape;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(vec![1.0, 2.0]);
//! let w = tape.leaf(vec![0.5, -0.5, 1.0, 1.5]); // 2×2 row-major
//! let y = tape.matvec(w, 2, 2, x);
//! let h = tape.tanh(y);
//! let s = tape.sum(h);
//! let grads = tape.backward(s);
//! assert_eq!(grads[x.index()].len(), 2);
//! assert_eq!(grads[w.index()].len(), 4);
//! ```

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Position of this node on its tape (index into the gradient vector
    /// returned by [`Tape::backward`]).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    /// Elementwise addition.
    Add(VarId, VarId),
    /// Elementwise subtraction `a - b`.
    Sub(VarId, VarId),
    /// Elementwise multiplication.
    Mul(VarId, VarId),
    /// Scalar scale.
    Scale(VarId, f32),
    /// Matrix(rows×cols, row-major) × vector(cols).
    MatVec {
        m: VarId,
        rows: usize,
        cols: usize,
        x: VarId,
    },
    /// Elementwise tanh.
    Tanh(VarId),
    /// log-softmax over the whole vector.
    LogSoftmax(VarId),
    /// Scalar: the `i`-th component of a vector.
    Index(VarId, usize),
    /// Scalar: sum of components.
    Sum(VarId),
    /// Concatenation of several vectors.
    Concat(Vec<VarId>),
    /// Scalar: log σ(x) of a 1-element vector.
    LogSigmoid(VarId),
}

/// A reverse-mode autodiff tape.
#[derive(Debug, Default)]
pub struct Tape {
    vals: Vec<Vec<f32>>,
    ops: Vec<Op>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, val: Vec<f32>, op: Op) -> VarId {
        self.vals.push(val);
        self.ops.push(op);
        VarId(self.vals.len() - 1)
    }

    /// Records an input (leaf) node. Gradients accumulate here.
    pub fn leaf(&mut self, val: Vec<f32>) -> VarId {
        self.push(val, Op::Leaf)
    }

    /// The current value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this tape.
    pub fn value(&self, id: VarId) -> &[f32] {
        &self.vals[id.0]
    }

    /// Scalar value of a 1-element node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not scalar.
    pub fn scalar(&self, id: VarId) -> f32 {
        assert_eq!(self.vals[id.0].len(), 1, "node is not scalar");
        self.vals[id.0][0]
    }

    /// Elementwise `a + b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), self.vals[b.0].len());
        let val = self.vals[a.0]
            .iter()
            .zip(&self.vals[b.0])
            .map(|(x, y)| x + y)
            .collect();
        self.push(val, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), self.vals[b.0].len());
        let val = self.vals[a.0]
            .iter()
            .zip(&self.vals[b.0])
            .map(|(x, y)| x - y)
            .collect();
        self.push(val, Op::Sub(a, b))
    }

    /// Elementwise `a ⊙ b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), self.vals[b.0].len());
        let val = self.vals[a.0]
            .iter()
            .zip(&self.vals[b.0])
            .map(|(x, y)| x * y)
            .collect();
        self.push(val, Op::Mul(a, b))
    }

    /// `c · a`.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let val = self.vals[a.0].iter().map(|x| c * x).collect();
        self.push(val, Op::Scale(a, c))
    }

    /// `M x` where `m` is a `rows×cols` row-major matrix node.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match the operand lengths.
    pub fn matvec(&mut self, m: VarId, rows: usize, cols: usize, x: VarId) -> VarId {
        assert_eq!(self.vals[m.0].len(), rows * cols, "matrix size mismatch");
        assert_eq!(self.vals[x.0].len(), cols, "vector size mismatch");
        let mut out = vec![0.0; rows];
        let mv = &self.vals[m.0];
        let xv = &self.vals[x.0];
        for (r, out_r) in out.iter_mut().enumerate() {
            let row = &mv[r * cols..(r + 1) * cols];
            *out_r = row.iter().zip(xv).map(|(a, b)| a * b).sum();
        }
        self.push(out, Op::MatVec { m, rows, cols, x })
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let val = self.vals[a.0].iter().map(|x| x.tanh()).collect();
        self.push(val, Op::Tanh(a))
    }

    /// Numerically stable log-softmax over the whole vector.
    pub fn log_softmax(&mut self, a: VarId) -> VarId {
        let v = &self.vals[a.0];
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_z = max + v.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
        let val = v.iter().map(|x| x - log_z).collect();
        self.push(val, Op::LogSoftmax(a))
    }

    /// The scalar `a[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn index(&mut self, a: VarId, i: usize) -> VarId {
        let val = vec![self.vals[a.0][i]];
        self.push(val, Op::Index(a, i))
    }

    /// The scalar `Σ a`.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let val = vec![self.vals[a.0].iter().sum()];
        self.push(val, Op::Sum(a))
    }

    /// Concatenation of vectors.
    pub fn concat(&mut self, parts: &[VarId]) -> VarId {
        let mut val = Vec::new();
        for p in parts {
            val.extend_from_slice(&self.vals[p.0]);
        }
        self.push(val, Op::Concat(parts.to_vec()))
    }

    /// Numerically stable `log σ(x)` of a scalar node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not scalar.
    pub fn log_sigmoid(&mut self, a: VarId) -> VarId {
        assert_eq!(self.vals[a.0].len(), 1, "log_sigmoid takes a scalar");
        let x = self.vals[a.0][0];
        // log σ(x) = -log(1 + e^{-x}) = min(x, 0) - ln(1 + e^{-|x|})
        let val = vec![x.min(0.0) - (-x.abs()).exp().ln_1p()];
        self.push(val, Op::LogSigmoid(a))
    }

    /// Runs backpropagation from a scalar node; returns one gradient
    /// vector per node (same indexing as [`VarId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `root` is not scalar.
    pub fn backward(&self, root: VarId) -> Vec<Vec<f32>> {
        assert_eq!(self.vals[root.0].len(), 1, "backward root must be scalar");
        let mut grads: Vec<Vec<f32>> = self.vals.iter().map(|v| vec![0.0; v.len()]).collect();
        grads[root.0][0] = 1.0;
        for i in (0..=root.0).rev() {
            // Split off the current gradient to appease the borrow checker.
            let g = std::mem::take(&mut grads[i]);
            if g.iter().all(|&x| x == 0.0) {
                grads[i] = g;
                continue;
            }
            match &self.ops[i] {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    for (k, &gk) in g.iter().enumerate() {
                        grads[a.0][k] += gk;
                        grads[b.0][k] += gk;
                    }
                }
                // (indexing by k is intentional throughout: gradient
                // slices alias multiple nodes, so zip-style iteration
                // would fight the borrow checker for no clarity gain)
                Op::Sub(a, b) => {
                    for (k, &gk) in g.iter().enumerate() {
                        grads[a.0][k] += gk;
                        grads[b.0][k] -= gk;
                    }
                }
                Op::Mul(a, b) => {
                    for (k, &gk) in g.iter().enumerate() {
                        let (av, bv) = (self.vals[a.0][k], self.vals[b.0][k]);
                        grads[a.0][k] += gk * bv;
                        grads[b.0][k] += gk * av;
                    }
                }
                Op::Scale(a, c) => {
                    for (k, &gk) in g.iter().enumerate() {
                        grads[a.0][k] += gk * c;
                    }
                }
                Op::MatVec { m, rows, cols, x } => {
                    let xv = self.vals[x.0].clone();
                    let mv = self.vals[m.0].clone();
                    for r in 0..*rows {
                        let gr = g[r];
                        if gr == 0.0 {
                            continue;
                        }
                        for c in 0..*cols {
                            grads[m.0][r * cols + c] += gr * xv[c];
                            grads[x.0][c] += gr * mv[r * cols + c];
                        }
                    }
                }
                Op::Tanh(a) => {
                    for (k, &gk) in g.iter().enumerate() {
                        let y = self.vals[i][k];
                        grads[a.0][k] += gk * (1.0 - y * y);
                    }
                }
                Op::LogSoftmax(a) => {
                    // d/dx_j (x_k - logZ) = δ_jk - softmax(x)_j
                    let gsum: f32 = g.iter().sum();
                    for (j, &yj) in self.vals[i].iter().enumerate() {
                        let p = yj.exp();
                        grads[a.0][j] += g[j] - gsum * p;
                    }
                }
                Op::Index(a, idx) => {
                    grads[a.0][*idx] += g[0];
                }
                Op::Sum(a) => {
                    for gk in grads[a.0].iter_mut() {
                        *gk += g[0];
                    }
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let len = self.vals[p.0].len();
                        for k in 0..len {
                            grads[p.0][k] += g[offset + k];
                        }
                        offset += len;
                    }
                }
                Op::LogSigmoid(a) => {
                    // d/dx log σ(x) = 1 - σ(x) = σ(-x)
                    let x = self.vals[a.0][0];
                    let sig_neg = 1.0 / (1.0 + x.exp());
                    grads[a.0][0] += g[0] * sig_neg;
                }
            }
            grads[i] = g;
        }
        grads
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` iff the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-parallel comparisons read clearest
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Central finite difference of `f` at `x` in coordinate `i`.
    fn numeric_grad(f: impl Fn(&[f32]) -> f32, x: &[f32], i: usize) -> f32 {
        let h = 1e-3;
        let mut xp = x.to_vec();
        xp[i] += h;
        let mut xm = x.to_vec();
        xm[i] -= h;
        (f(&xp) - f(&xm)) / (2.0 * h)
    }

    #[test]
    fn add_mul_grads() {
        let mut tape = Tape::new();
        let a = tape.leaf(vec![1.0, 2.0]);
        let b = tape.leaf(vec![3.0, -1.0]);
        let prod = tape.mul(a, b);
        let s = tape.sum(prod);
        assert!((tape.scalar(s) - 1.0).abs() < 1e-6);
        let grads = tape.backward(s);
        assert_eq!(grads[a.index()], vec![3.0, -1.0]);
        assert_eq!(grads[b.index()], vec![1.0, 2.0]);
    }

    #[test]
    fn matvec_forward_and_grad() {
        let m = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        let x = vec![5.0, 6.0];
        let mut tape = Tape::new();
        let mv = tape.leaf(m.clone());
        let xv = tape.leaf(x.clone());
        let y = tape.matvec(mv, 2, 2, xv);
        assert_eq!(tape.value(y), &[17.0, 39.0]);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        // d(sum(Mx))/dM = [x; x], d/dx = column sums of M.
        assert_eq!(grads[mv.index()], vec![5.0, 6.0, 5.0, 6.0]);
        assert_eq!(grads[xv.index()], vec![4.0, 6.0]);
    }

    #[test]
    fn log_softmax_is_normalized() {
        let mut tape = Tape::new();
        let x = tape.leaf(vec![1.0, 2.0, 3.0]);
        let ls = tape.log_softmax(x);
        let total: f32 = tape.value(ls).iter().map(|l| l.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_stable_for_large_inputs() {
        let mut tape = Tape::new();
        let x = tape.leaf(vec![1000.0, 999.0]);
        let ls = tape.log_softmax(x);
        assert!(tape.value(ls).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_sigmoid_matches_reference() {
        for x in [-20.0f32, -1.0, 0.0, 1.0, 20.0] {
            let mut tape = Tape::new();
            let v = tape.leaf(vec![x]);
            let ls = tape.log_sigmoid(v);
            let expected = (1.0 / (1.0 + (-f64::from(x)).exp())).ln() as f32;
            assert!(
                (tape.scalar(ls) - expected).abs() < 1e-5,
                "x={x}: {} vs {}",
                tape.scalar(ls),
                expected
            );
        }
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        // f(w) = logsoftmax(W2 · tanh(W1 x))[target]
        let x = vec![0.3, -0.7, 0.2];
        let w1: Vec<f32> = (0..12).map(|i| (i as f32 * 0.37).sin() * 0.5).collect();
        let w2: Vec<f32> = (0..8).map(|i| (i as f32 * 0.53).cos() * 0.5).collect();

        let f_of_w1 = |w: &[f32]| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let w1v = tape.leaf(w.to_vec());
            let w2v = tape.leaf(w2.clone());
            let h = tape.matvec(w1v, 4, 3, xv);
            let t = tape.tanh(h);
            let o = tape.matvec(w2v, 2, 4, t);
            let ls = tape.log_softmax(o);
            let picked = tape.index(ls, 1);
            tape.scalar(picked)
        };

        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let w1v = tape.leaf(w1.clone());
        let w2v = tape.leaf(w2.clone());
        let h = tape.matvec(w1v, 4, 3, xv);
        let t = tape.tanh(h);
        let o = tape.matvec(w2v, 2, 4, t);
        let ls = tape.log_softmax(o);
        let picked = tape.index(ls, 1);
        let grads = tape.backward(picked);

        for i in 0..w1.len() {
            let num = numeric_grad(f_of_w1, &w1, i);
            let ana = grads[w1v.index()][i];
            assert!(
                (num - ana).abs() < 2e-2,
                "w1[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    proptest! {
        /// Every op's gradient matches central finite differences on a
        /// random composite expression g(a) = sum(tanh(a ⊙ a + c·a)).
        #[test]
        fn composite_grad_matches_numeric(
            vals in proptest::collection::vec(-2.0f32..2.0, 2..6),
            c in -2.0f32..2.0,
        ) {
            let f = |a: &[f32]| -> f32 {
                let mut tape = Tape::new();
                let av = tape.leaf(a.to_vec());
                let sq = tape.mul(av, av);
                let sc = tape.scale(av, c);
                let s = tape.add(sq, sc);
                let t = tape.tanh(s);
                let out = tape.sum(t);
                tape.scalar(out)
            };
            let mut tape = Tape::new();
            let av = tape.leaf(vals.clone());
            let sq = tape.mul(av, av);
            let sc = tape.scale(av, c);
            let s = tape.add(sq, sc);
            let t = tape.tanh(s);
            let out = tape.sum(t);
            let grads = tape.backward(out);
            for i in 0..vals.len() {
                let num = numeric_grad(f, &vals, i);
                let ana = grads[av.index()][i];
                prop_assert!((num - ana).abs() < 5e-2, "i={}: {} vs {}", i, num, ana);
            }
        }

        /// Concat routes gradients to the right parts.
        #[test]
        fn concat_grad_routing(
            a in proptest::collection::vec(-1.0f32..1.0, 1..4),
            b in proptest::collection::vec(-1.0f32..1.0, 1..4),
        ) {
            let mut tape = Tape::new();
            let av = tape.leaf(a.clone());
            let bv = tape.leaf(b.clone());
            let cat = tape.concat(&[av, bv]);
            let s = tape.sum(cat);
            let grads = tape.backward(s);
            prop_assert!(grads[av.index()].iter().all(|&g| (g - 1.0).abs() < 1e-6));
            prop_assert!(grads[bv.index()].iter().all(|&g| (g - 1.0).abs() < 1e-6));
        }
    }
}
