//! The hot numeric kernels behind the tape's sequence-batched ops.
//!
//! PR 5 fixed the *graph shape* (one tape node per layer per sequence);
//! this module fixes the *kernels*: every inner loop the training fast
//! path spends its time in — the forward matmul dots, the backward
//! rank-1 updates, the fused bias+log-softmax — lives here as a plain
//! function over slices, written so the compiler can keep the work in
//! registers and vector lanes instead of bouncing through
//! `Vec<Vec<f32>>` double indexing.
//!
//! # Two modes, one contract
//!
//! Every kernel runs in one of two [`KernelMode`]s:
//!
//! * [`KernelMode::Reference`] (default) is **bit-identical** to the
//!   scalar loops it replaced. The speedup comes only from
//!   transformations that leave every output element's f32 operation
//!   sequence unchanged: blocking across *independent* output elements
//!   (8 forward dots advance together, each still a left-to-right
//!   fold), splitting interleaved accumulations into per-buffer passes
//!   (different destinations never interact), and replacing indexed
//!   `Vec<Vec<f32>>` walks with slice iteration the compiler can
//!   bounds-check once and vectorize. The existing byte-equality CI
//!   gates and the proptests in this module (blocked vs. retained naive
//!   kernels, ragged shapes included) enforce the contract.
//! * [`KernelMode::Fast`] is allowed to **reassociate**: dots accumulate
//!   in 8 interleaved lanes that are only combined at the end, and — on
//!   builds with hardware FMA — multiply-adds fuse into
//!   [`f32::mul_add`] (one rounding instead of two). Results differ
//!   from reference in the low bits, and may differ *per build* (the
//!   FMA fusion is compile-time gated on the `fma` target feature) —
//!   the deviation is
//!   bounded by tolerance tests here and by the `kernel_gate` CI gate,
//!   not by byte equality.
//!
//! The mode is a process-global default ([`set_mode`]/[`mode`]) captured
//! by each [`crate::tape::Tape`] when it is created or reset, so
//! thread-local workspaces on pool workers pick up the configured mode
//! without any signature changes along the hot path.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which arithmetic the tape kernels use. See the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum KernelMode {
    /// Bit-identical to the original scalar loops (the default): only
    /// transformations that preserve each output element's exact f32
    /// operation sequence are allowed.
    #[default]
    Reference,
    /// Reassociated 8-lane accumulation and FMA fusion: faster, and
    /// within a tested tolerance of reference instead of bit-identical.
    Fast,
}

impl KernelMode {
    /// Parses the CLI spelling (`reference` / `fast`).
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s {
            "reference" => Some(KernelMode::Reference),
            "fast" => Some(KernelMode::Fast),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelMode::Reference => write!(f, "reference"),
            KernelMode::Fast => write!(f, "fast"),
        }
    }
}

/// Process-global default kernel mode, captured by [`crate::tape::Tape`]
/// at creation/reset time. An atomic (same pattern as obskit's global
/// recorder switch) so the pipeline can set it once before training and
/// every pool worker's thread-local workspace observes it.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global default [`KernelMode`].
pub fn set_mode(mode: KernelMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The process-global default [`KernelMode`].
pub fn mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Fast,
        _ => KernelMode::Reference,
    }
}

/// The sequential dot product every matrix op on the tape is built from:
/// a left-to-right fold starting at `0.0`. Centralizing it pins the
/// accumulation order, which is what makes the batched `Tape::matmul`
/// bit-identical to per-position `Tape::matvec` calls (and the packed
/// LoRA-merge kernel in `model.rs` bit-identical to the naive triple
/// loop it replaced).
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Number of independent accumulator lanes the blocked kernels run:
/// eight in-flight f32 chains hide the 4-cycle add latency on every
/// current x86/ARM core without spilling registers.
const LANES: usize = 8;

/// Fused multiply-add for the fast kernels — but only when the build
/// actually has hardware FMA. Without the `fma` target feature,
/// [`f32::mul_add`] lowers to a correctly-rounded *software* fma (a
/// libm call per element), roughly an order of magnitude slower than
/// the multiply it fuses — the opposite of a fast mode. The fallback
/// takes the two roundings; fast mode is tolerance-gated rather than
/// bit-pinned precisely so this lowering choice is free.
#[inline(always)]
fn fma(a: f32, b: f32, acc: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Reassociated dot: 8 interleaved lanes of [`fma`] combined by
/// a balanced tree at the end, scalar remainder folded in last. Fast
/// mode only — the lane split reorders the additions.
#[inline]
fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for i in 0..chunks {
        let av = &a[i * LANES..(i + 1) * LANES];
        let bv = &b[i * LANES..(i + 1) * LANES];
        for j in 0..LANES {
            acc[j] = fma(av[j], bv[j], acc[j]);
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * LANES..n {
        tail = fma(a[i], b[i], tail);
    }
    let pairs = [
        acc[0] + acc[4],
        acc[1] + acc[5],
        acc[2] + acc[6],
        acc[3] + acc[7],
    ];
    ((pairs[0] + pairs[2]) + (pairs[1] + pairs[3])) + tail
}

/// Mode-dispatched dot product.
#[inline]
pub(crate) fn dot_in(a: &[f32], b: &[f32], mode: KernelMode) -> f32 {
    match mode {
        KernelMode::Reference => dot(a, b),
        KernelMode::Fast => dot_fast(a, b),
    }
}

/// `out += s · a`, the rank-1-update inner loop of every backward
/// matmul. Element-independent, so the reference version vectorizes
/// without reassociating anything; fast fuses the multiply-add.
#[inline]
pub(crate) fn axpy(out: &mut [f32], s: f32, a: &[f32], mode: KernelMode) {
    match mode {
        KernelMode::Reference => {
            for (o, &v) in out.iter_mut().zip(a) {
                *o += s * v;
            }
        }
        KernelMode::Fast => {
            for (o, &v) in out.iter_mut().zip(a) {
                *o = fma(s, v, *o);
            }
        }
    }
}

/// `out += a`, elementwise.
#[inline]
pub(crate) fn add_assign(out: &mut [f32], a: &[f32]) {
    for (o, &v) in out.iter_mut().zip(a) {
        *o += v;
    }
}

/// Eight forward dots advanced together: `rows` packs 8 row slices, and
/// each lane's accumulator sees the exact left-to-right [`dot`] fold —
/// blocking is across *independent* outputs, so reference mode stays
/// bit-identical while the 8 chains fill the FPU pipeline.
#[inline]
fn dot_block8(rows: [&[f32]; LANES], x: &[f32]) -> [f32; LANES] {
    // Pin every lane to x's length so the indexing below is provably in
    // bounds and the checks vanish.
    let rows = rows.map(|r| &r[..x.len()]);
    let mut acc = [0.0f32; LANES];
    for (c, &xv) in x.iter().enumerate() {
        for j in 0..LANES {
            acc[j] += rows[j][c] * xv;
        }
    }
    acc
}

/// Forward matmul: `out[p·rows + r] = dot(M_r, x_p)` for `n` packed
/// column-vectors. Reference mode walks rows in blocks of [`LANES`]
/// (scalar [`dot`] remainder); fast mode uses [`dot_fast`] per output.
pub(crate) fn matmul_forward(
    out: &mut [f32],
    m: &[f32],
    x: &[f32],
    rows: usize,
    cols: usize,
    n: usize,
    mode: KernelMode,
) {
    debug_assert_eq!(out.len(), n * rows);
    debug_assert_eq!(m.len(), rows * cols);
    debug_assert_eq!(x.len(), n * cols);
    let full = rows - rows % LANES;
    for p in 0..n {
        let xp = &x[p * cols..(p + 1) * cols];
        let op = &mut out[p * rows..(p + 1) * rows];
        match mode {
            KernelMode::Reference => {
                let mut r = 0;
                while r < full {
                    let block = dot_block8(
                        [
                            &m[r * cols..(r + 1) * cols],
                            &m[(r + 1) * cols..(r + 2) * cols],
                            &m[(r + 2) * cols..(r + 3) * cols],
                            &m[(r + 3) * cols..(r + 4) * cols],
                            &m[(r + 4) * cols..(r + 5) * cols],
                            &m[(r + 5) * cols..(r + 6) * cols],
                            &m[(r + 6) * cols..(r + 7) * cols],
                            &m[(r + 7) * cols..(r + 8) * cols],
                        ],
                        xp,
                    );
                    op[r..r + LANES].copy_from_slice(&block);
                    r += LANES;
                }
                for (rr, o) in op.iter_mut().enumerate().skip(full) {
                    *o = dot(&m[rr * cols..(rr + 1) * cols], xp);
                }
            }
            KernelMode::Fast => {
                for (rr, o) in op.iter_mut().enumerate() {
                    *o = dot_fast(&m[rr * cols..(rr + 1) * cols], xp);
                }
            }
        }
    }
}

/// Backward matmul: `gm[r] += Σ_p(rev) g[p,r] · x_p` and
/// `gx_p += Σ_r g[p,r] · M_r`.
///
/// Bit-exactness: positions walk in **reverse** (the unbatched graph's
/// reverse node-order walk reaches per-position matvecs
/// last-position-first) and the `g == 0.0` skip of the scalar loop is
/// preserved (it changes `-0.0`/NaN propagation, so it is part of the
/// pinned sequence). The old loop interleaved the `gm` and `gx` updates
/// per column; splitting them into two [`axpy`] passes touches each
/// destination element in the same order as before — the interleave only
/// ever alternated between *different* buffers — and turns both passes
/// into vectorizable slice updates.
// ALLOW: the argument list is the matmul gradient problem statement (two
// outputs, three inputs, three dims, mode); a parameter struct would
// just rename it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_backward(
    gm: &mut [f32],
    gx: &mut [f32],
    g: &[f32],
    m: &[f32],
    x: &[f32],
    rows: usize,
    cols: usize,
    n: usize,
    mode: KernelMode,
) {
    debug_assert_eq!(g.len(), n * rows);
    debug_assert_eq!(gm.len(), rows * cols);
    debug_assert_eq!(gx.len(), n * cols);
    for p in (0..n).rev() {
        let gp = &g[p * rows..(p + 1) * rows];
        let xp = &x[p * cols..(p + 1) * cols];
        let gxp = &mut gx[p * cols..(p + 1) * cols];
        for (r, &gr) in gp.iter().enumerate() {
            if gr == 0.0 {
                continue;
            }
            axpy(&mut gm[r * cols..(r + 1) * cols], gr, xp, mode);
            axpy(gxp, gr, &m[r * cols..(r + 1) * cols], mode);
        }
    }
}

/// The `gm` half of [`matmul_backward`] for a contiguous row block
/// `r0..r0+block_rows` (`gm_block` is exactly that slice of the full
/// matrix gradient). Each row's fold over reversed positions is the
/// complete, unsplit sequence, so fanning row blocks across threads
/// stays bit-identical.
// ALLOW: same problem statement as `matmul_backward`, minus one output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_backward_gm_block(
    gm_block: &mut [f32],
    g: &[f32],
    x: &[f32],
    r0: usize,
    rows: usize,
    cols: usize,
    n: usize,
    mode: KernelMode,
) {
    let block_rows = gm_block.len() / cols.max(1);
    for p in (0..n).rev() {
        let gp = &g[p * rows..(p + 1) * rows];
        let xp = &x[p * cols..(p + 1) * cols];
        for r in 0..block_rows {
            let gr = gp[r0 + r];
            if gr == 0.0 {
                continue;
            }
            axpy(&mut gm_block[r * cols..(r + 1) * cols], gr, xp, mode);
        }
    }
}

/// The `gx` half of [`matmul_backward`] for a contiguous position block
/// `p0..p0+block_n` (`gx_block` is exactly that slice of the packed
/// operand gradient). Positions are independent in `gx`, so any
/// disjoint split is bit-identical; rows walk forward within a position
/// exactly as the scalar loop did.
pub(crate) fn matmul_backward_gx_block(
    gx_block: &mut [f32],
    g: &[f32],
    m: &[f32],
    p0: usize,
    rows: usize,
    cols: usize,
    mode: KernelMode,
) {
    let block_n = gx_block.len() / cols.max(1);
    for p in (0..block_n).rev() {
        let gp = &g[(p0 + p) * rows..(p0 + p + 1) * rows];
        let gxp = &mut gx_block[p * cols..(p + 1) * cols];
        for (r, &gr) in gp.iter().enumerate() {
            if gr == 0.0 {
                continue;
            }
            axpy(gxp, gr, &m[r * cols..(r + 1) * cols], mode);
        }
    }
}

/// Forward fused bias + numerically stable log-softmax per chunk:
/// `out_p = log_softmax(a_p + b)`. Identical arithmetic in both modes —
/// the cost here is `exp`, which no reassociation removes — and exactly
/// the composition of the unfused add + log-softmax ops.
pub(crate) fn bias_log_softmax_forward(out: &mut [f32], a: &[f32], b: &[f32], n: usize) {
    let len = b.len();
    debug_assert_eq!(out.len(), n * len);
    debug_assert_eq!(a.len(), n * len);
    for p in 0..n {
        let chunk = &mut out[p * len..(p + 1) * len];
        let ac = &a[p * len..(p + 1) * len];
        for ((c, &av), &bv) in chunk.iter_mut().zip(ac).zip(b) {
            *c = av + bv;
        }
        let max = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_z = max + chunk.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
        for c in chunk.iter_mut() {
            *c -= log_z;
        }
    }
}

/// Backward of the fused bias+log-softmax: per chunk (in **reverse**
/// position order, for the shared bias gradient's accumulation order)
/// both `ga` and `gb` receive `g[j] − (Σg)·softmax_j` — the single f32
/// expression the unfused pair produces. Identical in both modes.
pub(crate) fn bias_log_softmax_backward(
    ga: &mut [f32],
    gb: &mut [f32],
    g: &[f32],
    y: &[f32],
    n: usize,
) {
    let len = gb.len();
    debug_assert_eq!(ga.len(), n * len);
    debug_assert_eq!(g.len(), n * len);
    debug_assert_eq!(y.len(), n * len);
    for p in (0..n).rev() {
        let gc = &g[p * len..(p + 1) * len];
        let yc = &y[p * len..(p + 1) * len];
        let gac = &mut ga[p * len..(p + 1) * len];
        let gsum: f32 = gc.iter().sum();
        for j in 0..len {
            let d = gc[j] - gsum * yc[j].exp();
            gac[j] += d;
            gb[j] += d;
        }
    }
}

/// Backward of chunk-wise broadcast add: in reverse position order,
/// `ga_p += g_p` and `gb += g_p`. The old loop interleaved the two per
/// element; the split passes touch each destination in the same order.
pub(crate) fn broadcast_add_backward(ga: &mut [f32], gb: &mut [f32], g: &[f32], n: usize) {
    let len = gb.len();
    debug_assert_eq!(ga.len(), n * len);
    debug_assert_eq!(g.len(), n * len);
    for p in (0..n).rev() {
        let gc = &g[p * len..(p + 1) * len];
        add_assign(&mut ga[p * len..(p + 1) * len], gc);
        add_assign(gb, gc);
    }
}

/// Forward gather-sum: `Σ_p a[p·chunk + targets[p]]`, folded
/// left-to-right from the first picked component — the same chain of
/// scalar adds the per-position index+add graph performs.
pub(crate) fn gather_sum_forward(a: &[f32], chunk: usize, targets: &[usize]) -> f32 {
    let mut acc = a[targets[0]];
    for (p, &t) in targets.iter().enumerate().skip(1) {
        acc += a[p * chunk + t];
    }
    acc
}

/// Backward gather-sum: scatter `g` into the picked components.
pub(crate) fn gather_sum_backward(ga: &mut [f32], g: f32, chunk: usize, targets: &[usize]) {
    for (p, &t) in targets.iter().enumerate() {
        ga[p * chunk + t] += g;
    }
}

/// Backward of the embedding pack: `gshared` accumulates in **reverse**
/// position order (matching the reverse node-order walk over the
/// per-position concat nodes of the unbatched graph); `gtable`
/// accumulates in **forward** `(position, slot)` order (matching the
/// unbatched graph's final embedding scatter).
pub(crate) fn pack_inputs_backward(
    gshared: &mut [f32],
    gtable: &mut [f32],
    g: &[f32],
    dim: usize,
    k: usize,
    indices: &[usize],
) {
    let n = indices.len() / k.max(1);
    let shared_len = gshared.len();
    let stride = shared_len + k * dim;
    for p in (0..n).rev() {
        add_assign(gshared, &g[p * stride..p * stride + shared_len]);
    }
    for (p, pos) in indices.chunks(k).enumerate() {
        for (slot, &idx) in pos.iter().enumerate() {
            let src = p * stride + shared_len + slot * dim;
            add_assign(&mut gtable[idx * dim..(idx + 1) * dim], &g[src..src + dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The retained naive forward kernel: one scalar fold per output,
    /// rows-outer — exactly the pre-kernels `Tape::matmul` loop.
    fn naive_matmul_forward(m: &[f32], x: &[f32], rows: usize, cols: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n * rows];
        for r in 0..rows {
            let row = &m[r * cols..(r + 1) * cols];
            for p in 0..n {
                out[p * rows + r] = dot(row, &x[p * cols..(p + 1) * cols]);
            }
        }
        out
    }

    /// The retained naive backward kernel: the pre-kernels interleaved
    /// per-column loop, indexed exactly as `backward_into` indexed it.
    #[allow(clippy::needless_range_loop)] // ALLOW: mirrors the historical indexed loop verbatim.
    fn naive_matmul_backward(
        g: &[f32],
        m: &[f32],
        x: &[f32],
        rows: usize,
        cols: usize,
        n: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut gm = vec![0.0f32; rows * cols];
        let mut gx = vec![0.0f32; n * cols];
        for p in (0..n).rev() {
            for r in 0..rows {
                let gr = g[p * rows + r];
                if gr == 0.0 {
                    continue;
                }
                for c in 0..cols {
                    gm[r * cols + c] += gr * x[p * cols + c];
                    gx[p * cols + c] += gr * m[r * cols + c];
                }
            }
        }
        (gm, gx)
    }

    fn wave(len: usize, f: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * f).sin()).collect()
    }

    proptest! {
        /// Blocked forward is bit-identical to the naive kernel across
        /// ragged shapes: rows below/at/above the lane width, zero-length
        /// packs, single positions.
        #[test]
        fn blocked_forward_is_bit_identical(
            rows in 1usize..21,
            cols in 1usize..19,
            n in 0usize..5,
            seed in 0u32..50,
        ) {
            let f = 0.13 + seed as f32 * 0.017;
            let m = wave(rows * cols, f);
            let x = wave(n * cols, f + 0.31);
            let naive = naive_matmul_forward(&m, &x, rows, cols, n);
            let mut blocked = vec![0.0f32; n * rows];
            matmul_forward(&mut blocked, &m, &x, rows, cols, n, KernelMode::Reference);
            for (i, (a, b)) in blocked.iter().zip(&naive).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "out[{}]: {} vs {}", i, a, b);
            }
        }

        /// Split-pass backward (and its pooled block halves, at every
        /// block split) are bit-identical to the naive interleaved loop,
        /// including the `g == 0.0` skip path.
        #[test]
        fn split_backward_is_bit_identical(
            rows in 1usize..13,
            cols in 1usize..11,
            n in 1usize..5,
            zero_every in 1usize..5,
            seed in 0u32..50,
        ) {
            let f = 0.19 + seed as f32 * 0.023;
            let m = wave(rows * cols, f);
            let x = wave(n * cols, f + 0.41);
            let mut g = wave(n * rows, f + 0.07);
            for (i, gi) in g.iter_mut().enumerate() {
                if i % zero_every == 0 {
                    *gi = 0.0;
                }
            }
            let (gm_naive, gx_naive) = naive_matmul_backward(&g, &m, &x, rows, cols, n);

            let mut gm = vec![0.0f32; rows * cols];
            let mut gx = vec![0.0f32; n * cols];
            matmul_backward(&mut gm, &mut gx, &g, &m, &x, rows, cols, n, KernelMode::Reference);
            for (a, b) in gm.iter().zip(&gm_naive) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in gx.iter().zip(&gx_naive) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }

            // Every contiguous block split reproduces the same bits —
            // the property the pooled backward stakes byte-identity on.
            for split in 1..=rows {
                let mut gm = vec![0.0f32; rows * cols];
                let mut r0 = 0;
                while r0 < rows {
                    let hi = (r0 + split).min(rows);
                    matmul_backward_gm_block(
                        &mut gm[r0 * cols..hi * cols],
                        &g, &x, r0, rows, cols, n, KernelMode::Reference,
                    );
                    r0 = hi;
                }
                for (a, b) in gm.iter().zip(&gm_naive) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            for split in 1..=n {
                let mut gx = vec![0.0f32; n * cols];
                let mut p0 = 0;
                while p0 < n {
                    let hi = (p0 + split).min(n);
                    matmul_backward_gx_block(
                        &mut gx[p0 * cols..hi * cols],
                        &g, &m, p0, rows, cols, KernelMode::Reference,
                    );
                    p0 = hi;
                }
                for (a, b) in gx.iter().zip(&gx_naive) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        /// Fast-mode dots stay within a tight tolerance of the reference
        /// fold (reassociation only reorders additions of like-scale
        /// terms here).
        #[test]
        fn fast_dot_within_tolerance(
            len in 0usize..70,
            seed in 0u32..50,
        ) {
            let a = wave(len, 0.11 + seed as f32 * 0.013);
            let b = wave(len, 0.29 + seed as f32 * 0.007);
            let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
            let reference = dot(&a, &b);
            let fast = dot_fast(&a, &b);
            let tol = 1e-5 * (len.max(1) as f32);
            prop_assert!((fast - reference).abs() <= tol,
                "fast {} vs reference {} (len {})", fast, reference, len);
            // And both are close to the f64 ground truth.
            prop_assert!((f64::from(fast) - exact).abs() <= f64::from(tol));
        }
    }

    #[test]
    fn mode_parse_and_display_roundtrip() {
        for m in [KernelMode::Reference, KernelMode::Fast] {
            assert_eq!(KernelMode::parse(&m.to_string()), Some(m));
        }
        assert_eq!(KernelMode::parse("nonsense"), None);
        assert_eq!(KernelMode::default(), KernelMode::Reference);
    }

    #[test]
    fn fast_forward_matches_fast_dots() {
        let (rows, cols, n) = (9, 11, 3);
        let m = wave(rows * cols, 0.21);
        let x = wave(n * cols, 0.17);
        let mut out = vec![0.0f32; n * rows];
        matmul_forward(&mut out, &m, &x, rows, cols, n, KernelMode::Fast);
        for p in 0..n {
            for r in 0..rows {
                let want = dot_fast(&m[r * cols..(r + 1) * cols], &x[p * cols..(p + 1) * cols]);
                assert_eq!(out[p * rows + r].to_bits(), want.to_bits());
            }
        }
    }
}
