//! Cross-entropy pretraining — produces the "pre-trained language model"
//! that DPO-AF starts from.
//!
//! The paper begins with Llama2-7B, which already knows how to describe
//! driving maneuvers (imperfectly, mixing compliant and non-compliant
//! phrasings). We reproduce that starting point by pretraining [`CondLm`]
//! on a corpus of `(task, response)` pairs that deliberately mixes good
//! and sloppy instruction styles; the resulting model satisfies roughly
//! the fraction of specifications the corpus mixture dictates — the ~60%
//! baseline the paper reports before fine-tuning.

use crate::model::{CondLm, GradBuffer};
use crate::optim::Adam;
use crate::tokenizer::Token;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Pretraining hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainOptions {
    /// Full passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per gradient step.
    pub batch_size: usize,
}

impl Default for PretrainOptions {
    fn default() -> Self {
        PretrainOptions {
            epochs: 6,
            lr: 0.01,
            batch_size: 16,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainStats {
    /// Mean negative log-likelihood per sequence, by epoch.
    pub nll_per_epoch: Vec<f32>,
}

/// Pretrains a model in place with Adam on next-token cross-entropy.
///
/// # Panics
///
/// Panics if the corpus is empty.
// The corpus is rendered from the model's own tokenizer, so gradient
// calls cannot see out-of-vocabulary ids; a panic here is a caller bug
// worth failing loudly on during training.
#[allow(clippy::expect_used)]
pub fn pretrain(
    model: &mut CondLm,
    corpus: &[(usize, Vec<Token>)],
    options: PretrainOptions,
    rng: &mut impl Rng,
) -> PretrainStats {
    assert!(!corpus.is_empty(), "pretraining corpus must be non-empty");
    let started = std::time::Instant::now();
    let mut adam = Adam::new(options.lr, model.params().len());
    let mut order: Vec<usize> = (0..corpus.len()).collect();
    let mut nll_per_epoch = Vec::with_capacity(options.epochs);
    let mut tokens_seen = 0u64;
    for epoch in 0..options.epochs {
        order.shuffle(rng);
        let mut epoch_nll = 0.0f64;
        for batch in order.chunks(options.batch_size) {
            let mut grad = GradBuffer::zeros(model);
            for &i in batch {
                let (task, ref tokens) = corpus[i];
                tokens_seen += tokens.len() as u64;
                let (lp, g) = model
                    .log_prob_grad(task, tokens)
                    .expect("corpus uses model vocabulary");
                epoch_nll -= f64::from(lp);
                // Maximize log-likelihood = descend on −logP.
                grad.add_scaled(&g, -1.0 / batch.len() as f32);
            }
            adam.step(model.params_mut(), &grad.0);
        }
        let nll = (epoch_nll / corpus.len() as f64) as f32;
        nll_per_epoch.push(nll);
        obskit::event(
            "pretrain.epoch",
            vec![("epoch", epoch.into()), ("nll", nll.into())],
        );
    }
    if obskit::enabled() {
        obskit::counter_add("pretrain.tokens", tokens_seen);
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            obskit::gauge_set("pretrain.tokens_per_sec", tokens_seen as f64 / secs);
        }
    }
    PretrainStats { nll_per_epoch }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AdaptMode, LmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pretraining_reduces_nll_and_learns_pattern() {
        let cfg = LmConfig {
            vocab_size: 8,
            num_tasks: 2,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 8,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = CondLm::new(cfg, &mut rng);
        // Task 0 always says "3 4 5"; task 1 always says "5 4 3".
        let corpus: Vec<(usize, Vec<Token>)> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    (0, vec![3, 4, 5])
                } else {
                    (1, vec![5, 4, 3])
                }
            })
            .collect();
        let stats = pretrain(
            &mut model,
            &corpus,
            PretrainOptions {
                epochs: 30,
                lr: 0.02,
                batch_size: 8,
            },
            &mut rng,
        );
        assert!(stats.nll_per_epoch.first().unwrap() > stats.nll_per_epoch.last().unwrap());
        // The model now strongly prefers each task's sequence.
        let lp_good = model.log_prob(0, &[3, 4, 5]).unwrap();
        let lp_bad = model.log_prob(0, &[5, 4, 3]).unwrap();
        assert!(
            lp_good > lp_bad + 1.0,
            "task conditioning not learned: {lp_good} vs {lp_bad}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_corpus_panics() {
        let cfg = LmConfig {
            vocab_size: 4,
            num_tasks: 1,
            token_dim: 2,
            task_dim: 2,
            context: 2,
            hidden: 4,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = CondLm::new(cfg, &mut rng);
        pretrain(&mut model, &[], PretrainOptions::default(), &mut rng);
    }
}
