//! Cross-entropy pretraining — produces the "pre-trained language model"
//! that DPO-AF starts from.
//!
//! The paper begins with Llama2-7B, which already knows how to describe
//! driving maneuvers (imperfectly, mixing compliant and non-compliant
//! phrasings). We reproduce that starting point by pretraining [`CondLm`]
//! on a corpus of `(task, response)` pairs that deliberately mixes good
//! and sloppy instruction styles; the resulting model satisfies roughly
//! the fraction of specifications the corpus mixture dictates — the ~60%
//! baseline the paper reports before fine-tuning.

use crate::model::{CondLm, GradBuffer};
use crate::optim::Adam;
use crate::tokenizer::Token;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Pretraining hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainOptions {
    /// Full passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per gradient step.
    pub batch_size: usize,
}

impl Default for PretrainOptions {
    fn default() -> Self {
        PretrainOptions {
            epochs: 6,
            lr: 0.01,
            batch_size: 16,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainStats {
    /// Mean negative log-likelihood per sequence, by epoch.
    pub nll_per_epoch: Vec<f32>,
}

/// Pretrains a model in place with Adam on next-token cross-entropy.
///
/// # Panics
///
/// Panics if the corpus is empty.
// The corpus is rendered from the model's own tokenizer, so gradient
// calls cannot see out-of-vocabulary ids; a panic here is a caller bug
// worth failing loudly on during training.
#[allow(clippy::expect_used)] // ALLOW: out-of-vocabulary ids are a caller bug worth failing loudly on.
pub fn pretrain(
    model: &mut CondLm,
    corpus: &[(usize, Vec<Token>)],
    options: PretrainOptions,
    rng: &mut impl Rng,
) -> PretrainStats {
    pretrain_in(model, corpus, options, rng, None)
}

/// [`pretrain`] with the per-sequence gradient computations of each
/// batch fanned out across `pool` (when given and wider than one
/// thread).
///
/// Parallelism never changes the math: the RNG-driven epoch shuffle
/// stays sequential, per-sequence gradients are independent pure
/// functions of the frozen pre-step parameters, and the batch reduction
/// folds them **in batch order** — the same float additions in the same
/// order as the sequential loop, so trained weights are byte-identical
/// at any thread count.
///
/// # Panics
///
/// Panics if the corpus is empty.
// The corpus is rendered from the model's own tokenizer, so gradient
// calls cannot see out-of-vocabulary ids; a panic here is a caller bug
// worth failing loudly on during training.
#[allow(clippy::expect_used)] // ALLOW: out-of-vocabulary ids are a caller bug worth failing loudly on.
pub fn pretrain_in(
    model: &mut CondLm,
    corpus: &[(usize, Vec<Token>)],
    options: PretrainOptions,
    rng: &mut impl Rng,
    pool: Option<&parkit::ThreadPool>,
) -> PretrainStats {
    assert!(!corpus.is_empty(), "pretraining corpus must be non-empty");
    let started = std::time::Instant::now();
    let mut adam = Adam::new(options.lr, model.params().len());
    let mut order: Vec<usize> = (0..corpus.len()).collect();
    let mut nll_per_epoch = Vec::with_capacity(options.epochs);
    let mut tokens_seen = 0u64;
    for epoch in 0..options.epochs {
        order.shuffle(rng);
        let mut epoch_nll = 0.0f64;
        for batch in order.chunks(options.batch_size) {
            let mut grad = GradBuffer::zeros(model);
            let per_seq: Vec<(f32, GradBuffer)> = match pool {
                Some(pool) if pool.threads() > 1 => {
                    let frozen: &CondLm = model;
                    pool.map(batch, |_, &i| {
                        let (task, ref tokens) = corpus[i];
                        frozen
                            .log_prob_grad(task, tokens)
                            .expect("corpus uses model vocabulary")
                    })
                }
                _ => batch
                    .iter()
                    .map(|&i| {
                        let (task, ref tokens) = corpus[i];
                        model
                            .log_prob_grad(task, tokens)
                            .expect("corpus uses model vocabulary")
                    })
                    .collect(),
            };
            for (&i, (lp, g)) in batch.iter().zip(&per_seq) {
                tokens_seen += corpus[i].1.len() as u64;
                epoch_nll -= f64::from(*lp);
                // Maximize log-likelihood = descend on −logP.
                grad.add_scaled(g, -1.0 / batch.len() as f32);
            }
            adam.step(model.params_mut(), &grad.0);
        }
        let nll = (epoch_nll / corpus.len() as f64) as f32;
        nll_per_epoch.push(nll);
        obskit::event(
            "pretrain.epoch",
            vec![("epoch", epoch.into()), ("nll", nll.into())],
        );
        // Pretraining epochs are a flight-recorder beat (throttled).
        obskit::recorder::tick();
    }
    if obskit::enabled() {
        obskit::counter_add("pretrain.tokens", tokens_seen);
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            obskit::gauge_set("pretrain.tokens_per_sec", tokens_seen as f64 / secs);
        }
    }
    PretrainStats { nll_per_epoch }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AdaptMode, LmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pretraining_reduces_nll_and_learns_pattern() {
        let cfg = LmConfig {
            vocab_size: 8,
            num_tasks: 2,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 8,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = CondLm::new(cfg, &mut rng);
        // Task 0 always says "3 4 5"; task 1 always says "5 4 3".
        let corpus: Vec<(usize, Vec<Token>)> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    (0, vec![3, 4, 5])
                } else {
                    (1, vec![5, 4, 3])
                }
            })
            .collect();
        let stats = pretrain(
            &mut model,
            &corpus,
            PretrainOptions {
                epochs: 30,
                lr: 0.02,
                batch_size: 8,
            },
            &mut rng,
        );
        assert!(stats.nll_per_epoch.first().unwrap() > stats.nll_per_epoch.last().unwrap());
        // The model now strongly prefers each task's sequence.
        let lp_good = model.log_prob(0, &[3, 4, 5]).unwrap();
        let lp_bad = model.log_prob(0, &[5, 4, 3]).unwrap();
        assert!(
            lp_good > lp_bad + 1.0,
            "task conditioning not learned: {lp_good} vs {lp_bad}"
        );
    }

    /// Pooled gradient accumulation is a pure reordering of *where*
    /// gradients are computed, never of how they are reduced: weights
    /// after training are bit-identical to the sequential path.
    #[test]
    fn pooled_pretraining_is_bit_identical() {
        let cfg = LmConfig {
            vocab_size: 10,
            num_tasks: 2,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 8,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let corpus: Vec<(usize, Vec<Token>)> = (0..37)
            .map(|i| (i % 2, vec![3 + (i % 5) as Token, 4, 5 + (i % 3) as Token]))
            .collect();
        let opts = PretrainOptions {
            epochs: 3,
            lr: 0.02,
            batch_size: 8,
        };

        let mut rng = StdRng::seed_from_u64(9);
        let mut serial = CondLm::new(cfg, &mut rng);
        let stats_serial = pretrain(&mut serial, &corpus, opts, &mut rng);

        for threads in [2, 4] {
            let pool = parkit::ThreadPool::new(threads);
            let mut rng = StdRng::seed_from_u64(9);
            let mut pooled = CondLm::new(cfg, &mut rng);
            let stats_pooled = pretrain_in(&mut pooled, &corpus, opts, &mut rng, Some(&pool));
            assert_eq!(
                serial.params(),
                pooled.params(),
                "weights diverged at {threads} threads"
            );
            assert_eq!(stats_serial.nll_per_epoch, stats_pooled.nll_per_epoch);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_corpus_panics() {
        let cfg = LmConfig {
            vocab_size: 4,
            num_tasks: 1,
            token_dim: 2,
            task_dim: 2,
            context: 2,
            hidden: 4,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = CondLm::new(cfg, &mut rng);
        pretrain(&mut model, &[], PretrainOptions::default(), &mut rng);
    }
}
