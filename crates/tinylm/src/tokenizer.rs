use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A token id.
pub type Token = u32;

/// Beginning-of-sequence token (also used as left padding for the context
/// window).
pub const BOS: Token = 0;

/// End-of-sequence token; generation stops here.
pub const EOS: Token = 1;

/// A word-level tokenizer with a closed vocabulary.
///
/// Words are lowercased; punctuation is split off and dropped except `.`
/// `,` and `;`, which are tokens of their own (`;` separates steps in a
/// response). Unknown words at encode time are mapped to the dedicated
/// `<unk>` token.
///
/// # Example
///
/// ```
/// use tinylm::Tokenizer;
///
/// let tok = Tokenizer::from_corpus(["turn right at the traffic light ."]);
/// let ids = tok.encode("Turn RIGHT now!");
/// assert_eq!(tok.decode(&ids), "turn right <unk>");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, Token>,
}

/// The unknown-word token's surface form.
pub const UNK_WORD: &str = "<unk>";

fn split_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let lowered = raw.to_lowercase();
        let mut word = String::new();
        for c in lowered.chars() {
            if c.is_ascii_alphanumeric() || c == '-' || c == '\'' {
                word.push(c);
            } else {
                if !word.is_empty() {
                    out.push(std::mem::take(&mut word));
                }
                if matches!(c, '.' | ',' | ';') {
                    out.push(c.to_string());
                }
            }
        }
        if !word.is_empty() {
            out.push(word);
        }
    }
    out
}

impl Tokenizer {
    /// Builds a vocabulary from a corpus of strings. Token ids 0..3 are
    /// `BOS`, `EOS` and `<unk>`; the remaining ids are corpus words in
    /// first-seen order.
    pub fn from_corpus<S: AsRef<str>>(corpus: impl IntoIterator<Item = S>) -> Self {
        let mut words = vec!["<bos>".to_owned(), "<eos>".to_owned(), UNK_WORD.to_owned()];
        let mut index: HashMap<String, Token> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as Token))
            .collect();
        for text in corpus {
            for word in split_words(text.as_ref()) {
                if !index.contains_key(&word) {
                    index.insert(word.clone(), words.len() as Token);
                    words.push(word);
                }
            }
        }
        Tokenizer { words, index }
    }

    /// The `<unk>` token id.
    pub fn unk(&self) -> Token {
        2
    }

    /// Vocabulary size (including specials).
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }

    /// Encodes text to token ids (no `BOS`/`EOS` added).
    pub fn encode(&self, text: &str) -> Vec<Token> {
        split_words(text)
            .into_iter()
            .map(|w| self.index.get(&w).copied().unwrap_or(self.unk()))
            .collect()
    }

    /// Decodes token ids back to a space-joined string. `BOS`/`EOS` are
    /// skipped.
    pub fn decode(&self, tokens: &[Token]) -> String {
        tokens
            .iter()
            .filter(|&&t| t != BOS && t != EOS)
            .map(|&t| {
                self.words
                    .get(t as usize)
                    .map(String::as_str)
                    .unwrap_or(UNK_WORD)
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The surface form of one token.
    pub fn word(&self, token: Token) -> &str {
        self.words
            .get(token as usize)
            .map(String::as_str)
            .unwrap_or(UNK_WORD)
    }

    /// Looks up a single word's token id, if present.
    pub fn token_of(&self, word: &str) -> Option<Token> {
        self.index.get(word).copied()
    }

    /// Rebuilds the word→id index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as Token))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn specials_reserved() {
        let tok = Tokenizer::from_corpus(["a b"]);
        assert_eq!(tok.word(BOS), "<bos>");
        assert_eq!(tok.word(EOS), "<eos>");
        assert_eq!(tok.word(tok.unk()), UNK_WORD);
        assert_eq!(tok.vocab_size(), 5);
    }

    #[test]
    fn encode_decode_known_words() {
        let tok = Tokenizer::from_corpus(["turn right at the traffic light ; stop ."]);
        let ids = tok.encode("turn right ; stop");
        assert_eq!(tok.decode(&ids), "turn right ; stop");
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let tok = Tokenizer::from_corpus(["go"]);
        let ids = tok.encode("go zebra");
        assert_eq!(ids[1], tok.unk());
        assert_eq!(tok.decode(&ids), "go <unk>");
    }

    #[test]
    fn punctuation_tokens() {
        let tok = Tokenizer::from_corpus(["a . b , c ; d"]);
        let ids = tok.encode("a. b,c;d");
        let decoded = tok.decode(&ids);
        assert_eq!(decoded, "a . b , c ; d");
    }

    #[test]
    fn case_folding() {
        let tok = Tokenizer::from_corpus(["stop"]);
        assert_eq!(tok.encode("STOP"), tok.encode("stop"));
    }

    proptest! {
        /// decode ∘ encode is the identity on texts made of corpus words.
        #[test]
        fn roundtrip_on_known_words(indices in proptest::collection::vec(0usize..6, 1..12)) {
            let words = ["turn", "right", "stop", "light", ";", "."];
            let tok = Tokenizer::from_corpus([words.join(" ")]);
            let text = indices.iter().map(|&i| words[i]).collect::<Vec<_>>().join(" ");
            let ids = tok.encode(&text);
            prop_assert_eq!(tok.decode(&ids), text);
        }
    }
}
