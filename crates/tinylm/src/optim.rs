//! Optimizers over flat parameter vectors.

use serde::{Deserialize, Serialize};

/// Plain stochastic gradient *ascent/descent* with optional gradient
/// clipping.
///
/// The sign convention is descent: `step` subtracts `lr · grad`. Pass the
/// gradient of a *loss*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Clip gradients to this Euclidean norm (`None` = no clipping).
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            clip_norm: Some(5.0),
        }
    }

    /// Applies one descent step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grad` differ in length.
    pub fn step(&self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        let scale = clip_scale(grad, self.clip_norm);
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * scale * g;
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction and optional clipping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Clip gradients to this Euclidean norm (`None` = no clipping).
    pub clip_norm: Option<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer for a parameter vector of length `n`.
    pub fn new(lr: f32, n: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one descent step in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the construction-time `n`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grad.len(), self.m.len());
        self.t += 1;
        let scale = clip_scale(grad, self.clip_norm);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i] * scale;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Resets moments (e.g. between seeds).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

fn clip_scale(grad: &[f32], clip: Option<f32>) -> f32 {
    match clip {
        None => 1.0,
        Some(max_norm) => {
            let norm = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > max_norm && norm > 0.0 {
                max_norm / norm
            } else {
                1.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = (x-3)², minimized at 3.
    fn quad_grad(x: f32) -> f32 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_descends_quadratic() {
        let opt = Sgd::new(0.1);
        let mut x = vec![0.0f32];
        for _ in 0..200 {
            let g = vec![quad_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(0.1, 1);
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let g = vec![quad_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn clipping_bounds_step() {
        let opt = Sgd {
            lr: 1.0,
            clip_norm: Some(1.0),
        };
        let mut x = vec![0.0f32, 0.0];
        opt.step(&mut x, &[300.0, 400.0]); // norm 500 → scaled to 1
        let moved = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!((moved - 1.0).abs() < 1e-5);
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(0.1, 2);
        let mut x = vec![0.0f32, 0.0];
        opt.step(&mut x, &[1.0, -1.0]);
        assert!(opt.t == 1);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.iter().all(|&m| m == 0.0));
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn sgd_length_mismatch_panics() {
        let opt = Sgd::new(0.1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[1.0, 2.0]);
    }
}
