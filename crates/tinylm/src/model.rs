use crate::tape::{dot, GradArena, Tape};
use crate::tokenizer::{Token, BOS, EOS};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::ops::Range;

/// Which parameters fine-tuning is allowed to update.
///
/// Mirrors the paper's Appendix E: full fine-tuning updates every weight;
/// LoRA holds each base matrix `W` constant and trains a low-rank product
/// `A·B` so that the effective weight is `W + A·B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptMode {
    /// All parameters are trainable.
    Full,
    /// Only low-rank adapters on the two MLP matrices are trainable.
    Lora {
        /// Adapter rank `k ≪ d`.
        rank: usize,
    },
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LmConfig {
    /// Vocabulary size (including `BOS`/`EOS`/`<unk>`).
    pub vocab_size: usize,
    /// Number of distinct task prompts the model can condition on.
    pub num_tasks: usize,
    /// Token embedding dimension.
    pub token_dim: usize,
    /// Task embedding dimension.
    pub task_dim: usize,
    /// Context window: number of previous tokens fed to the MLP.
    pub context: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Which parameters are trainable.
    pub adapt: AdaptMode,
    /// Scale applied to the LoRA delta (`W + scale · A·B`).
    pub lora_scale: f32,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            vocab_size: 0,
            num_tasks: 0,
            token_dim: 12,
            task_dim: 8,
            context: 4,
            hidden: 48,
            adapt: AdaptMode::Lora { rank: 4 },
            lora_scale: 1.0,
        }
    }
}

impl LmConfig {
    /// MLP input width: task embedding plus `context` token embeddings.
    pub fn input_dim(&self) -> usize {
        self.task_dim + self.context * self.token_dim
    }
}

/// Errors from language-model queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LmError {
    /// Task id exceeds `num_tasks`.
    TaskOutOfRange(usize),
    /// A token id exceeds the vocabulary.
    TokenOutOfRange(Token),
}

impl fmt::Display for LmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmError::TaskOutOfRange(t) => write!(f, "task id {t} out of range"),
            LmError::TokenOutOfRange(t) => write!(f, "token id {t} out of range"),
        }
    }
}

impl std::error::Error for LmError {}

/// Gradient of a scalar objective with respect to the model's full
/// parameter vector (same layout as [`CondLm::params`]; frozen entries are
/// zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradBuffer(pub Vec<f32>);

impl GradBuffer {
    /// An all-zero gradient for a model.
    pub fn zeros(model: &CondLm) -> Self {
        GradBuffer(vec![0.0; model.params().len()])
    }

    /// `self += c · other`.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths.
    pub fn add_scaled(&mut self, other: &GradBuffer, c: f32) {
        assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += c * b;
        }
    }

    /// `self *= c`.
    pub fn scale(&mut self, c: f32) {
        for a in &mut self.0 {
            *a *= c;
        }
    }

    /// Euclidean norm (useful for clipping and diagnostics).
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Reusable buffers for sequence scoring and gradients: a recyclable
/// [`Tape`] plus a [`GradArena`], so the hot training loop stops paying
/// an allocation storm per sequence. [`CondLm::log_prob_grad`] uses a
/// thread-local workspace automatically; hot loops that want explicit
/// control can hold one and call [`CondLm::log_prob_grad_in`].
#[derive(Debug, Default)]
pub struct SeqWorkspace {
    tape: Tape,
    arena: GradArena,
}

impl SeqWorkspace {
    /// A fresh workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh workspace whose tape is pinned to `mode` (the shared and
    /// default-constructed workspaces follow the process-global
    /// [`crate::kernels::mode`] instead). Used by tests that must not
    /// depend on — or race with — the global.
    pub fn with_mode(mode: crate::kernels::KernelMode) -> Self {
        SeqWorkspace {
            tape: Tape::with_mode(mode),
            arena: GradArena::default(),
        }
    }

    /// Runs `f` with this thread's shared workspace.
    pub fn with_tls<R>(f: impl FnOnce(&mut SeqWorkspace) -> R) -> R {
        thread_local! {
            static WS: RefCell<SeqWorkspace> = RefCell::new(SeqWorkspace::new());
        }
        WS.with(|ws| f(&mut ws.borrow_mut()))
    }

    /// Clears the tape for a new round of [`CondLm::seq_forward_in`]
    /// graphs (value and gradient buffers are recycled, not freed).
    pub fn reset(&mut self) {
        self.tape.reset();
    }
}

/// Handles into a sequence graph built by [`CondLm::seq_forward_in`]:
/// the sequence log-likelihood plus the leaf nodes
/// [`CondLm::seq_grad_in`] needs to scatter gradients back into the flat
/// parameter layout.
#[derive(Debug, Clone)]
pub struct SeqGraph {
    value: f32,
    root: crate::tape::VarId,
    w1: crate::tape::VarId,
    b1: crate::tape::VarId,
    w2: crate::tape::VarId,
    b2: crate::tape::VarId,
    task: usize,
    task_leaf: crate::tape::VarId,
    tok_table: crate::tape::VarId,
    lora: Option<(
        crate::tape::VarId,
        crate::tape::VarId,
        crate::tape::VarId,
        crate::tape::VarId,
    )>,
}

impl SeqGraph {
    /// The sequence log-likelihood `log P(response, EOS | task)`.
    pub fn value(&self) -> f32 {
        self.value
    }
}

/// Adds `scale · A·B` (`A`: `rows×rank`, `B`: `rank×cols`) into the
/// row-major `rows×cols` matrix `w`.
///
/// `B` is transposed into a scratch buffer once so every `(r, c)` entry
/// is a contiguous [`dot`] over `k` — cache-friendly instead of striding
/// `B` by `cols`, and bit-identical to the naive
/// `for k { dot += a[r·rank+k] · b[k·cols+c] }` triple loop it replaced
/// (same left-to-right fold over `k` from `0.0`).
fn merge_lora(
    w: &mut [f32],
    a: &[f32],
    b: &[f32],
    rows: usize,
    cols: usize,
    rank: usize,
    scale: f32,
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(a.len(), rows * rank);
    debug_assert_eq!(b.len(), rank * cols);
    let mut b_t = vec![0.0f32; rank * cols];
    for k in 0..rank {
        for c in 0..cols {
            b_t[c * rank + k] = b[k * cols + c];
        }
    }
    for r in 0..rows {
        let a_row = &a[r * rank..(r + 1) * rank];
        let w_row = &mut w[r * cols..(r + 1) * cols];
        for (c, w_rc) in w_row.iter_mut().enumerate() {
            *w_rc += scale * dot(a_row, &b_t[c * rank..(c + 1) * rank]);
        }
    }
}

/// Sampling options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleOptions {
    /// Softmax temperature (1.0 = untempered; higher = more diverse).
    pub temperature: f32,
    /// Hard cap on generated tokens (`EOS` not counted).
    pub max_len: usize,
    /// Keep only the `k` most likely tokens before sampling
    /// (`None` = no truncation).
    pub top_k: Option<usize>,
    /// Nucleus sampling: keep the smallest prefix of tokens whose
    /// cumulative probability reaches `p` (`None` = no truncation).
    pub top_p: Option<f32>,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions {
            temperature: 1.0,
            max_len: 80,
            top_k: None,
            top_p: None,
        }
    }
}

/// One scoring position: the context window and the target token.
type ScoredPosition = (Vec<Token>, Token);

/// Parameter ranges of the four LoRA matrices `(A1, B1, A2, B2)`.
type LoraSegments = (Range<usize>, Range<usize>, Range<usize>, Range<usize>);

/// Byte ranges of each parameter segment in the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Segments {
    tok_emb: Range<usize>,
    task_emb: Range<usize>,
    w1: Range<usize>,
    b1: Range<usize>,
    w2: Range<usize>,
    b2: Range<usize>,
    /// `(a1, b1l, a2, b2l)` when LoRA is enabled: `W1 += s·A1·B1`,
    /// `W2 += s·A2·B2`.
    lora: Option<LoraSegments>,
}

/// A conditional n-gram MLP language model.
///
/// `P(next | task, last k tokens) = softmax(W2 · tanh(W1 · x + b1) + b2)`
/// where `x` concatenates a learned task embedding with the embeddings of
/// the last `k` tokens. See the crate docs for why this stands in for the
/// paper's Llama2-7B.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use tinylm::{AdaptMode, CondLm, LmConfig, SampleOptions};
///
/// let cfg = LmConfig {
///     vocab_size: 16,
///     num_tasks: 2,
///     adapt: AdaptMode::Lora { rank: 2 },
///     ..LmConfig::default()
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let model = CondLm::new(cfg, &mut rng);
/// let response = model.sample(0, &mut rng, SampleOptions::default())?;
/// let lp = model.log_prob(0, &response)?;
/// assert!(lp <= 0.0);
/// # Ok::<(), tinylm::LmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondLm {
    cfg: LmConfig,
    params: Vec<f32>,
    seg: Segments,
}

impl CondLm {
    /// Initializes a model with small random weights (LoRA `B` matrices
    /// start at zero, so the adapter's initial delta is zero).
    pub fn new(cfg: LmConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.vocab_size > 2, "vocabulary must include specials");
        assert!(cfg.num_tasks > 0, "at least one task required");
        let v = cfg.vocab_size;
        let input = cfg.input_dim();
        let h = cfg.hidden;

        let mut offset = 0usize;
        let mut range = |len: usize| {
            let r = offset..offset + len;
            offset += len;
            r
        };
        let tok_emb = range(v * cfg.token_dim);
        let task_emb = range(cfg.num_tasks * cfg.task_dim);
        let w1 = range(h * input);
        let b1 = range(h);
        let w2 = range(v * h);
        let b2 = range(v);
        let lora = match cfg.adapt {
            AdaptMode::Full => None,
            AdaptMode::Lora { rank } => {
                let a1 = range(h * rank);
                let b1l = range(rank * input);
                let a2 = range(v * rank);
                let b2l = range(rank * h);
                Some((a1, b1l, a2, b2l))
            }
        };
        let seg = Segments {
            tok_emb,
            task_emb,
            w1,
            b1,
            w2,
            b2,
            lora,
        };

        let mut params = vec![0.0f32; offset];
        let init = |slice: &mut [f32], scale: f32, rng: &mut dyn rand::RngCore| {
            for p in slice {
                *p = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
            }
        };
        init(&mut params[seg.tok_emb.clone()], 0.5, rng);
        init(&mut params[seg.task_emb.clone()], 0.5, rng);
        init(
            &mut params[seg.w1.clone()],
            1.0 / (input as f32).sqrt(),
            rng,
        );
        init(&mut params[seg.w2.clone()], 1.0 / (h as f32).sqrt(), rng);
        if let Some((a1, _b1l, a2, _b2l)) = &seg.lora {
            init(&mut params[a1.clone()], 0.02, rng);
            init(&mut params[a2.clone()], 0.02, rng);
            // B matrices stay zero: initial adapter delta is zero.
        }
        CondLm { cfg, params, seg }
    }

    /// The model's configuration.
    pub fn config(&self) -> &LmConfig {
        &self.cfg
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable access for optimizers.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// `true` at positions fine-tuning may update. Under
    /// [`AdaptMode::Full`] every position is trainable; under LoRA only
    /// the adapter matrices are.
    pub fn trainable_mask(&self) -> Vec<bool> {
        let mut mask = vec![matches!(self.cfg.adapt, AdaptMode::Full); self.params.len()];
        if let Some((a1, b1l, a2, b2l)) = &self.seg.lora {
            for r in [a1, b1l, a2, b2l] {
                for m in &mut mask[r.clone()] {
                    *m = true;
                }
            }
        }
        mask
    }

    /// Number of trainable parameters.
    pub fn num_trainable(&self) -> usize {
        self.trainable_mask().iter().filter(|&&m| m).count()
    }

    fn tok_row(&self, t: Token) -> &[f32] {
        let d = self.cfg.token_dim;
        let base = self.seg.tok_emb.start + t as usize * d;
        &self.params[base..base + d]
    }

    fn task_row(&self, task: usize) -> &[f32] {
        let d = self.cfg.task_dim;
        let base = self.seg.task_emb.start + task * d;
        &self.params[base..base + d]
    }

    fn check_task(&self, task: usize) -> Result<(), LmError> {
        if task >= self.cfg.num_tasks {
            return Err(LmError::TaskOutOfRange(task));
        }
        Ok(())
    }

    fn check_tokens(&self, tokens: &[Token]) -> Result<(), LmError> {
        for &t in tokens {
            if t as usize >= self.cfg.vocab_size {
                return Err(LmError::TokenOutOfRange(t));
            }
        }
        Ok(())
    }

    /// Effective `W1` (base plus LoRA delta), materialized.
    fn w1_eff(&self) -> Vec<f32> {
        let mut w = self.params[self.seg.w1.clone()].to_vec();
        if let Some((a1, b1l, _, _)) = &self.seg.lora {
            let AdaptMode::Lora { rank } = self.cfg.adapt else {
                unreachable!("lora segments imply lora mode");
            };
            merge_lora(
                &mut w,
                &self.params[a1.clone()],
                &self.params[b1l.clone()],
                self.cfg.hidden,
                self.cfg.input_dim(),
                rank,
                self.cfg.lora_scale,
            );
        }
        w
    }

    /// Effective `W2`.
    fn w2_eff(&self) -> Vec<f32> {
        let mut w = self.params[self.seg.w2.clone()].to_vec();
        if let Some((_, _, a2, b2l)) = &self.seg.lora {
            let AdaptMode::Lora { rank } = self.cfg.adapt else {
                unreachable!("lora segments imply lora mode");
            };
            merge_lora(
                &mut w,
                &self.params[a2.clone()],
                &self.params[b2l.clone()],
                self.cfg.vocab_size,
                self.cfg.hidden,
                rank,
                self.cfg.lora_scale,
            );
        }
        w
    }

    /// Fast (tape-free) next-token log-probabilities given a task and the
    /// last `context` tokens (`ctx.len() == context`).
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] for out-of-range ids.
    ///
    /// # Panics
    ///
    /// Panics if `ctx.len() != config().context`.
    pub fn next_log_probs(&self, task: usize, ctx: &[Token]) -> Result<Vec<f32>, LmError> {
        self.check_task(task)?;
        self.check_tokens(ctx)?;
        Ok(self.next_log_probs_merged(&self.w1_eff(), &self.w2_eff(), task, ctx))
    }

    /// [`CondLm::next_log_probs`] with the effective weights already
    /// merged — lets sequence scoring pay the LoRA merge once instead of
    /// once per position. Callers must have validated `task`/`ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx.len() != config().context`.
    fn next_log_probs_merged(
        &self,
        w1: &[f32],
        w2: &[f32],
        task: usize,
        ctx: &[Token],
    ) -> Vec<f32> {
        assert_eq!(ctx.len(), self.cfg.context, "context length mismatch");
        let input = self.cfg.input_dim();
        let h = self.cfg.hidden;
        let v = self.cfg.vocab_size;

        let mut x = Vec::with_capacity(input);
        x.extend_from_slice(self.task_row(task));
        for &t in ctx {
            x.extend_from_slice(self.tok_row(t));
        }
        // Sampling is tape-free, so the mode is read per call from the
        // process global instead of a tape capture.
        let mode = crate::kernels::mode();
        let b1 = &self.params[self.seg.b1.clone()];
        let mut hid = vec![0.0f32; h];
        for (r, hid_r) in hid.iter_mut().enumerate() {
            let row = &w1[r * input..(r + 1) * input];
            *hid_r = (crate::kernels::dot_in(row, &x, mode) + b1[r]).tanh();
        }
        let b2 = &self.params[self.seg.b2.clone()];
        let mut logits = vec![0.0f32; v];
        for (r, logit) in logits.iter_mut().enumerate() {
            let row = &w2[r * h..(r + 1) * h];
            *logit = crate::kernels::dot_in(row, &hid, mode) + b2[r];
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_z = max + logits.iter().map(|l| (l - max).exp()).sum::<f32>().ln();
        for l in &mut logits {
            *l -= log_z;
        }
        logits
    }

    /// Builds the padded context windows and targets for scoring a
    /// response: predict `response[0]`, …, `response[n-1]`, then `EOS`.
    fn positions(&self, response: &[Token]) -> Vec<ScoredPosition> {
        let k = self.cfg.context;
        let mut padded = vec![BOS; k];
        padded.extend_from_slice(response);
        padded.push(EOS);
        (0..response.len() + 1)
            .map(|t| (padded[t..t + k].to_vec(), padded[t + k]))
            .collect()
    }

    /// Exact sequence log-likelihood
    /// `log P(response, EOS | task) = Σ_t log P(y_t | task, ctx_t)`.
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] for out-of-range ids.
    pub fn log_prob(&self, task: usize, response: &[Token]) -> Result<f32, LmError> {
        self.check_task(task)?;
        self.check_tokens(response)?;
        // Merge the LoRA deltas once for the whole sequence; the
        // per-position arithmetic is unchanged, so values are identical
        // to calling `next_log_probs` per position.
        let w1 = self.w1_eff();
        let w2 = self.w2_eff();
        let mut total = 0.0;
        for (ctx, target) in self.positions(response) {
            let lp = self.next_log_probs_merged(&w1, &w2, task, &ctx);
            total += lp[target as usize];
        }
        Ok(total)
    }

    /// Sequence log-likelihood and its gradient with respect to the full
    /// parameter vector (frozen entries zeroed per [`AdaptMode`]).
    ///
    /// Uses this thread's shared [`SeqWorkspace`], so repeated calls
    /// recycle tape and gradient buffers automatically.
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] for out-of-range ids.
    pub fn log_prob_grad(
        &self,
        task: usize,
        response: &[Token],
    ) -> Result<(f32, GradBuffer), LmError> {
        SeqWorkspace::with_tls(|ws| self.log_prob_grad_in(task, response, ws))
    }

    /// [`CondLm::log_prob_grad`] into an explicit workspace.
    ///
    /// The whole sequence is evaluated through the sequence-batched tape
    /// ops ([`Tape::matmul`], [`Tape::bias_log_softmax`], …): one tape
    /// node per layer instead of one per layer *per position*, with
    /// buffers recycled across calls. Values and gradients are
    /// bit-identical to the per-position graph — each batched op keeps
    /// the per-output accumulation order of its unbatched counterpart
    /// (see the op docs in [`crate::tape`] and the
    /// `batched_grad_is_bitwise_equal_to_reference` property test).
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] for out-of-range ids.
    pub fn log_prob_grad_in(
        &self,
        task: usize,
        response: &[Token],
        ws: &mut SeqWorkspace,
    ) -> Result<(f32, GradBuffer), LmError> {
        ws.reset();
        let graph = self.seq_forward_in(task, response, ws)?;
        let grad = self.seq_grad_in(&graph, ws);
        Ok((graph.value, grad))
    }

    /// Builds the batched forward graph for one sequence on the
    /// workspace tape and returns its handles. Several graphs may share
    /// one tape (e.g. a DPO pair's winner and loser); call
    /// [`SeqWorkspace::reset`] before the first of a round. Splitting
    /// forward from [`CondLm::seq_grad_in`] lets callers time the two
    /// phases separately.
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] for out-of-range ids.
    pub fn seq_forward_in(
        &self,
        task: usize,
        response: &[Token],
        ws: &mut SeqWorkspace,
    ) -> Result<SeqGraph, LmError> {
        self.check_task(task)?;
        self.check_tokens(response)?;
        let cfg = &self.cfg;
        let input = cfg.input_dim();
        let h = cfg.hidden;
        let v = cfg.vocab_size;
        let k = cfg.context;
        let n = response.len() + 1;

        // Packed context indices and targets, mirroring `positions`.
        let mut padded = vec![BOS; k];
        padded.extend_from_slice(response);
        padded.push(EOS);
        let mut indices = Vec::with_capacity(n * k);
        let mut targets = Vec::with_capacity(n);
        for t in 0..n {
            indices.extend(padded[t..t + k].iter().map(|&tok| tok as usize));
            targets.push(padded[t + k] as usize);
        }

        let tape = &mut ws.tape;
        // Shared parameter leaves.
        let w1 = tape.leaf_from(&self.params[self.seg.w1.clone()]);
        let b1 = tape.leaf_from(&self.params[self.seg.b1.clone()]);
        let w2 = tape.leaf_from(&self.params[self.seg.w2.clone()]);
        let b2 = tape.leaf_from(&self.params[self.seg.b2.clone()]);
        let task_leaf = tape.leaf_from(self.task_row(task));
        let tok_table = tape.leaf_from(&self.params[self.seg.tok_emb.clone()]);
        let lora_leaves = self.seg.lora.as_ref().map(|(a1, b1l, a2, b2l)| {
            (
                tape.leaf_from(&self.params[a1.clone()]),
                tape.leaf_from(&self.params[b1l.clone()]),
                tape.leaf_from(&self.params[a2.clone()]),
                tape.leaf_from(&self.params[b2l.clone()]),
            )
        });
        let rank = match cfg.adapt {
            AdaptMode::Lora { rank } => rank,
            AdaptMode::Full => 0,
        };

        let x = tape.pack_inputs(task_leaf, tok_table, cfg.token_dim, k, indices);
        let mut pre = tape.matmul(w1, h, input, x, n);
        if let Some((a1, b1l, _, _)) = lora_leaves {
            let bx = tape.matmul(b1l, rank, input, x, n);
            let abx = tape.matmul(a1, h, rank, bx, n);
            let scaled = tape.scale(abx, cfg.lora_scale);
            pre = tape.add(pre, scaled);
        }
        let pre_b = tape.broadcast_add(pre, b1, n);
        let hid = tape.tanh(pre_b);
        let mut logits = tape.matmul(w2, v, h, hid, n);
        if let Some((_, _, a2, b2l)) = lora_leaves {
            let bh = tape.matmul(b2l, rank, h, hid, n);
            let abh = tape.matmul(a2, v, rank, bh, n);
            let scaled = tape.scale(abh, cfg.lora_scale);
            logits = tape.add(logits, scaled);
        }
        let ls = tape.bias_log_softmax(logits, b2, n);
        let root = tape.gather_sum(ls, v, targets);
        let value = tape.scalar(root);

        if obskit::enabled() {
            obskit::counter_add("tape.nodes", tape.len() as u64);
        }
        Ok(SeqGraph {
            value,
            root,
            w1,
            b1,
            w2,
            b2,
            task,
            task_leaf,
            tok_table,
            lora: lora_leaves,
        })
    }

    /// Backpropagates through a graph built by [`CondLm::seq_forward_in`]
    /// and scatters leaf gradients into the flat parameter layout
    /// (frozen entries zeroed per [`AdaptMode`]).
    ///
    /// # Panics
    ///
    /// Panics if `graph` did not come from this workspace's tape.
    pub fn seq_grad_in(&self, graph: &SeqGraph, ws: &mut SeqWorkspace) -> GradBuffer {
        self.seq_grad_opt_in(graph, ws, None)
    }

    /// [`CondLm::seq_grad_in`] with the matmul gradient work fanned over
    /// a `parkit` pool via [`Tape::backward_into_pooled`] — byte-identical
    /// to the serial pass at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `graph` did not come from this workspace's tape.
    pub fn seq_grad_pooled_in(
        &self,
        graph: &SeqGraph,
        ws: &mut SeqWorkspace,
        pool: &parkit::ThreadPool,
    ) -> GradBuffer {
        self.seq_grad_opt_in(graph, ws, Some(pool))
    }

    fn seq_grad_opt_in(
        &self,
        graph: &SeqGraph,
        ws: &mut SeqWorkspace,
        pool: Option<&parkit::ThreadPool>,
    ) -> GradBuffer {
        let reuses_before = ws.arena.reuses();
        match pool {
            Some(pool) => ws
                .tape
                .backward_into_pooled(graph.root, &mut ws.arena, pool),
            None => ws.tape.backward_into(graph.root, &mut ws.arena),
        }
        if obskit::enabled() {
            obskit::counter_add("tape.grad_buffer_reuses", ws.arena.reuses() - reuses_before);
        }

        // Scatter into the flat layout.
        let arena = &ws.arena;
        let mut grad = vec![0.0f32; self.params.len()];
        grad[self.seg.w1.clone()].copy_from_slice(arena.grad(graph.w1));
        grad[self.seg.b1.clone()].copy_from_slice(arena.grad(graph.b1));
        grad[self.seg.w2.clone()].copy_from_slice(arena.grad(graph.w2));
        grad[self.seg.b2.clone()].copy_from_slice(arena.grad(graph.b2));
        grad[self.seg.tok_emb.clone()].copy_from_slice(arena.grad(graph.tok_table));
        {
            let d = self.cfg.task_dim;
            let base = self.seg.task_emb.start + graph.task * d;
            grad[base..base + d].copy_from_slice(arena.grad(graph.task_leaf));
        }
        if let (Some((a1r, b1r, a2r, b2r)), Some((a1, b1l, a2, b2l))) =
            (self.seg.lora.clone(), graph.lora)
        {
            grad[a1r].copy_from_slice(arena.grad(a1));
            grad[b1r].copy_from_slice(arena.grad(b1l));
            grad[a2r].copy_from_slice(arena.grad(a2));
            grad[b2r].copy_from_slice(arena.grad(b2l));
        }

        // Zero frozen entries.
        let mask = self.trainable_mask();
        for (g, m) in grad.iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        GradBuffer(grad)
    }

    /// The original per-position tape graph, kept as the bit-exactness
    /// oracle for the batched path.
    // The position walk always visits at least the EOS slot, so `total`
    // is `Some` by construction; a panic here is a bug in this method.
    #[cfg(test)]
    #[allow(clippy::expect_used)] // ALLOW: test helper; a panic here is a bug in this method.
    fn log_prob_grad_reference(
        &self,
        task: usize,
        response: &[Token],
    ) -> Result<(f32, GradBuffer), LmError> {
        self.check_task(task)?;
        self.check_tokens(response)?;
        let cfg = &self.cfg;
        let input = cfg.input_dim();
        let h = cfg.hidden;
        let v = cfg.vocab_size;

        let mut tape = Tape::new();
        // Shared parameter leaves.
        let w1 = tape.leaf(self.params[self.seg.w1.clone()].to_vec());
        let b1 = tape.leaf(self.params[self.seg.b1.clone()].to_vec());
        let w2 = tape.leaf(self.params[self.seg.w2.clone()].to_vec());
        let b2 = tape.leaf(self.params[self.seg.b2.clone()].to_vec());
        let task_leaf = tape.leaf(self.task_row(task).to_vec());
        let lora_leaves = self.seg.lora.as_ref().map(|(a1, b1l, a2, b2l)| {
            (
                tape.leaf(self.params[a1.clone()].to_vec()),
                tape.leaf(self.params[b1l.clone()].to_vec()),
                tape.leaf(self.params[a2.clone()].to_vec()),
                tape.leaf(self.params[b2l.clone()].to_vec()),
            )
        });
        let rank = match cfg.adapt {
            AdaptMode::Lora { rank } => rank,
            AdaptMode::Full => 0,
        };

        // One embedding leaf per (position, slot); grads scatter back.
        let positions = self.positions(response);
        let mut emb_leaves: Vec<(Token, crate::tape::VarId)> = Vec::new();
        let mut total: Option<crate::tape::VarId> = None;
        for (ctx, target) in &positions {
            let mut parts = vec![task_leaf];
            for &t in ctx {
                let leaf = tape.leaf(self.tok_row(t).to_vec());
                emb_leaves.push((t, leaf));
                parts.push(leaf);
            }
            let x = tape.concat(&parts);
            let mut pre = tape.matvec(w1, h, input, x);
            if let Some((a1, b1l, _, _)) = lora_leaves {
                let bx = tape.matvec(b1l, rank, input, x);
                let abx = tape.matvec(a1, h, rank, bx);
                let scaled = tape.scale(abx, cfg.lora_scale);
                pre = tape.add(pre, scaled);
            }
            let pre_b = tape.add(pre, b1);
            let hid = tape.tanh(pre_b);
            let mut logits = tape.matvec(w2, v, h, hid);
            if let Some((_, _, a2, b2l)) = lora_leaves {
                let bh = tape.matvec(b2l, rank, h, hid);
                let abh = tape.matvec(a2, v, rank, bh);
                let scaled = tape.scale(abh, cfg.lora_scale);
                logits = tape.add(logits, scaled);
            }
            let logits_b = tape.add(logits, b2);
            let ls = tape.log_softmax(logits_b);
            let picked = tape.index(ls, *target as usize);
            total = Some(match total {
                None => picked,
                Some(acc) => tape.add(acc, picked),
            });
        }
        let root = total.expect("at least the EOS position exists");
        let value = tape.scalar(root);
        let node_grads = tape.backward(root);

        // Scatter into the flat layout.
        let mut grad = vec![0.0f32; self.params.len()];
        grad[self.seg.w1.clone()].copy_from_slice(&node_grads[w1.index()]);
        grad[self.seg.b1.clone()].copy_from_slice(&node_grads[b1.index()]);
        grad[self.seg.w2.clone()].copy_from_slice(&node_grads[w2.index()]);
        grad[self.seg.b2.clone()].copy_from_slice(&node_grads[b2.index()]);
        {
            let d = cfg.task_dim;
            let base = self.seg.task_emb.start + task * d;
            for (i, g) in node_grads[task_leaf.index()].iter().enumerate() {
                grad[base + i] += g;
            }
        }
        for (t, leaf) in emb_leaves {
            let d = cfg.token_dim;
            let base = self.seg.tok_emb.start + t as usize * d;
            for (i, g) in node_grads[leaf.index()].iter().enumerate() {
                grad[base + i] += g;
            }
        }
        if let (Some((a1r, b1r, a2r, b2r)), Some((a1, b1l, a2, b2l))) =
            (self.seg.lora.clone(), lora_leaves)
        {
            grad[a1r].copy_from_slice(&node_grads[a1.index()]);
            grad[b1r].copy_from_slice(&node_grads[b1l.index()]);
            grad[a2r].copy_from_slice(&node_grads[a2.index()]);
            grad[b2r].copy_from_slice(&node_grads[b2l.index()]);
        }

        // Zero frozen entries.
        let mask = self.trainable_mask();
        for (g, m) in grad.iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok((value, GradBuffer(grad)))
    }

    /// Perplexity of the model on a corpus of `(task, response)` pairs:
    /// `exp(−Σ log P / Σ tokens)` (the `EOS` position counts).
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] for out-of-range ids.
    pub fn perplexity(&self, corpus: &[(usize, Vec<Token>)]) -> Result<f64, LmError> {
        let mut log_sum = 0.0f64;
        let mut tokens = 0usize;
        for (task, response) in corpus {
            log_sum += f64::from(self.log_prob(*task, response)?);
            tokens += response.len() + 1;
        }
        if tokens == 0 {
            return Ok(1.0);
        }
        Ok((-log_sum / tokens as f64).exp())
    }

    /// Returns a copy of this model under a different [`AdaptMode`],
    /// preserving the base weights and embeddings.
    ///
    /// The standard workflow pretrains with [`AdaptMode::Full`], then
    /// converts to LoRA for fine-tuning: the base becomes frozen and
    /// fresh adapters (initial delta zero) become the trainable set, so
    /// the converted model's distribution is identical to the original's.
    pub fn convert_adapt(&self, adapt: AdaptMode, rng: &mut impl Rng) -> CondLm {
        let cfg = LmConfig { adapt, ..self.cfg };
        let mut out = CondLm::new(cfg, rng);
        // Shared segments (everything up to the LoRA block) have identical
        // layout in both models.
        let shared = self.seg.b2.end;
        out.params[..shared].copy_from_slice(&self.params[..shared]);
        out
    }

    /// Samples a response autoregressively until `EOS` or `max_len`.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TaskOutOfRange`] for an unknown task.
    pub fn sample(
        &self,
        task: usize,
        rng: &mut impl Rng,
        options: SampleOptions,
    ) -> Result<Vec<Token>, LmError> {
        self.check_task(task)?;
        let k = self.cfg.context;
        let mut ctx = vec![BOS; k];
        let mut out = Vec::new();
        for _ in 0..options.max_len {
            let lp = self.next_log_probs(task, &ctx)?;
            let next = sample_from_log_probs(&lp, options, rng);
            if next == EOS {
                break;
            }
            out.push(next);
            ctx.rotate_left(1);
            let last = ctx.len() - 1;
            ctx[last] = next;
        }
        Ok(out)
    }
}

/// Samples an index from tempered log-probabilities with optional top-k
/// and nucleus truncation.
fn sample_from_log_probs(log_probs: &[f32], options: SampleOptions, rng: &mut impl Rng) -> Token {
    let temp = options.temperature.max(1e-4);
    let scaled: Vec<f32> = log_probs.iter().map(|&l| l / temp).collect();
    let max = scaled.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut weights: Vec<f32> = scaled.iter().map(|&l| (l - max).exp()).collect();

    if options.top_k.is_some() || options.top_p.is_some() {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        let total: f32 = weights.iter().sum();
        let mut keep = vec![false; weights.len()];
        let mut cumulative = 0.0f32;
        for (rank, &i) in order.iter().enumerate() {
            if let Some(k) = options.top_k {
                if rank >= k {
                    break;
                }
            }
            // Always keep at least the most likely token; stop once the
            // nucleus mass is reached.
            if rank > 0 {
                if let Some(p) = options.top_p {
                    if cumulative >= p * total {
                        break;
                    }
                }
            }
            keep[i] = true;
            cumulative += weights[i];
        }
        for (w, k) in weights.iter_mut().zip(keep) {
            if !k {
                *w = 0.0;
            }
        }
    }

    let total: f32 = weights.iter().sum();
    let mut draw = rng.gen::<f32>() * total;
    for (i, w) in weights.iter().enumerate() {
        draw -= w;
        if *w > 0.0 && draw <= 0.0 {
            return i as Token;
        }
    }
    // Fall back to the most likely kept token.
    weights
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as Token)
        .unwrap_or(EOS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg(adapt: AdaptMode) -> LmConfig {
        LmConfig {
            vocab_size: 10,
            num_tasks: 3,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 6,
            adapt,
            lora_scale: 1.0,
        }
    }

    fn model(adapt: AdaptMode, seed: u64) -> CondLm {
        let mut rng = StdRng::seed_from_u64(seed);
        CondLm::new(tiny_cfg(adapt), &mut rng)
    }

    #[test]
    fn log_probs_normalize() {
        let m = model(AdaptMode::Full, 1);
        let lp = m.next_log_probs(0, &[BOS, 3]).unwrap();
        let total: f32 = lp.iter().map(|l| l.exp()).sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sequence_log_prob_is_sum_of_positions() {
        let m = model(AdaptMode::Full, 2);
        let resp = vec![3, 4, 5];
        let manual: f32 = m
            .positions(&resp)
            .iter()
            .map(|(ctx, tgt)| m.next_log_probs(1, ctx).unwrap()[*tgt as usize])
            .sum();
        assert!((m.log_prob(1, &resp).unwrap() - manual).abs() < 1e-5);
    }

    #[test]
    fn grad_value_matches_fast_path() {
        for adapt in [AdaptMode::Full, AdaptMode::Lora { rank: 2 }] {
            let m = model(adapt, 3);
            let resp = vec![4, 7, 3, 3];
            let fast = m.log_prob(2, &resp).unwrap();
            let (taped, _) = m.log_prob_grad(2, &resp).unwrap();
            assert!((fast - taped).abs() < 1e-4, "{adapt:?}: {fast} vs {taped}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference_full() {
        let m = model(AdaptMode::Full, 4);
        let resp = vec![5, 2];
        let (_, grad) = m.log_prob_grad(0, &resp).unwrap();
        // Probe a handful of parameters across segments.
        let probes = [0usize, 11, 57, m.params().len() - 3];
        for &i in &probes {
            let h = 1e-2f32;
            let mut mp = m.clone();
            mp.params_mut()[i] += h;
            let mut mm = m.clone();
            mm.params_mut()[i] -= h;
            let num = (mp.log_prob(0, &resp).unwrap() - mm.log_prob(0, &resp).unwrap()) / (2.0 * h);
            assert!(
                (num - grad.0[i]).abs() < 3e-2,
                "param {i}: numeric {num} vs analytic {}",
                grad.0[i]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference_lora() {
        let m = model(AdaptMode::Lora { rank: 2 }, 5);
        let resp = vec![6, 8, 2];
        let (_, grad) = m.log_prob_grad(1, &resp).unwrap();
        let mask = m.trainable_mask();
        // Probe trainable (LoRA) entries.
        let idxs: Vec<usize> = (0..m.params().len()).filter(|&i| mask[i]).take(6).collect();
        for &i in &idxs {
            let h = 1e-2f32;
            let mut mp = m.clone();
            mp.params_mut()[i] += h;
            let mut mm = m.clone();
            mm.params_mut()[i] -= h;
            let num = (mp.log_prob(1, &resp).unwrap() - mm.log_prob(1, &resp).unwrap()) / (2.0 * h);
            assert!(
                (num - grad.0[i]).abs() < 3e-2,
                "param {i}: numeric {num} vs analytic {}",
                grad.0[i]
            );
        }
    }

    #[test]
    fn lora_freezes_base_weights() {
        let m = model(AdaptMode::Lora { rank: 2 }, 6);
        let (_, grad) = m.log_prob_grad(0, &[3, 4]).unwrap();
        let mask = m.trainable_mask();
        assert!(m.num_trainable() > 0);
        assert!(m.num_trainable() < m.params().len());
        for (g, m) in grad.0.iter().zip(mask) {
            if !m {
                assert_eq!(*g, 0.0);
            }
        }
    }

    #[test]
    fn lora_initial_delta_is_zero() {
        // With B initialized to zero, the LoRA model's distribution equals
        // a Full model with the same base weights... construct by copying.
        let m = model(AdaptMode::Lora { rank: 2 }, 7);
        // Effective weights equal base weights at init.
        assert_eq!(m.w1_eff(), m.params[m.seg.w1.clone()].to_vec());
        assert_eq!(m.w2_eff(), m.params[m.seg.w2.clone()].to_vec());
    }

    #[test]
    fn top_k_restricts_support() {
        let m = model(AdaptMode::Full, 15);
        let lp = m.next_log_probs(0, &[BOS, BOS]).unwrap();
        // The two most likely tokens.
        let mut order: Vec<usize> = (0..lp.len()).collect();
        order.sort_by(|&a, &b| lp[b].partial_cmp(&lp[a]).unwrap());
        let allowed: Vec<Token> = order[..2].iter().map(|&i| i as Token).collect();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let opts = SampleOptions {
                top_k: Some(2),
                max_len: 1,
                ..SampleOptions::default()
            };
            let out = m.sample(0, &mut rng, opts).unwrap();
            if let Some(&t) = out.first() {
                assert!(allowed.contains(&t), "token {t} outside top-2 {allowed:?}");
            } else {
                // EOS sampled — must itself be in the top-2.
                assert!(allowed.contains(&EOS));
            }
        }
    }

    #[test]
    fn top_p_one_keeps_full_support_and_tiny_p_is_greedy() {
        let m = model(AdaptMode::Full, 16);
        let mut rng = StdRng::seed_from_u64(1);
        // p → 0 degenerates to greedy decoding: deterministic output.
        let greedy = SampleOptions {
            top_p: Some(1e-6),
            max_len: 8,
            ..SampleOptions::default()
        };
        let a = m.sample(1, &mut rng, greedy).unwrap();
        let b = m.sample(1, &mut rng, greedy).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn perplexity_positive_and_improves_with_fit() {
        let m = model(AdaptMode::Full, 17);
        let corpus = vec![(0usize, vec![3, 4, 5]), (1usize, vec![5, 4])];
        let ppl = m.perplexity(&corpus).unwrap();
        assert!(ppl > 1.0);
        // An untrained model is near-uniform: perplexity ≈ vocab size.
        assert!(ppl < 50.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_bounded() {
        let m = model(AdaptMode::Full, 8);
        let opts = SampleOptions {
            temperature: 1.2,
            max_len: 12,
            ..SampleOptions::default()
        };
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let s1 = m.sample(0, &mut r1, opts).unwrap();
        let s2 = m.sample(0, &mut r2, opts).unwrap();
        assert_eq!(s1, s2);
        assert!(s1.len() <= 12);
        assert!(s1
            .iter()
            .all(|&t| (t as usize) < 10 && t != BOS && t != EOS));
    }

    #[test]
    fn errors_on_out_of_range() {
        let m = model(AdaptMode::Full, 9);
        assert!(matches!(
            m.log_prob(99, &[3]),
            Err(LmError::TaskOutOfRange(99))
        ));
        assert!(matches!(
            m.log_prob(0, &[99]),
            Err(LmError::TokenOutOfRange(99))
        ));
    }

    #[test]
    fn task_conditioning_changes_distribution() {
        let m = model(AdaptMode::Full, 10);
        let a = m.next_log_probs(0, &[BOS, BOS]).unwrap();
        let b = m.next_log_probs(1, &[BOS, BOS]).unwrap();
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-3, "tasks should induce different distributions");
    }

    #[test]
    fn convert_adapt_preserves_distribution() {
        let mut rng = StdRng::seed_from_u64(20);
        let full = CondLm::new(tiny_cfg(AdaptMode::Full), &mut rng);
        let lora = full.convert_adapt(AdaptMode::Lora { rank: 3 }, &mut rng);
        for task in 0..3 {
            let a = full.next_log_probs(task, &[BOS, 4]).unwrap();
            let b = lora.next_log_probs(task, &[BOS, 4]).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
        // And the converted model trains only its adapters.
        assert!(lora.num_trainable() < lora.params().len());
    }

    /// Nonzero LoRA weights everywhere, so merge/gradient comparisons
    /// exercise the adapter path for real.
    fn perturbed_lora_model(seed: u64) -> CondLm {
        let mut m = model(AdaptMode::Lora { rank: 2 }, seed);
        for (i, p) in m.params_mut().iter_mut().enumerate() {
            *p += ((i as f32 * 0.619).sin()) * 0.05;
        }
        m
    }

    #[test]
    fn merge_lora_matches_naive_triple_loop() {
        let m = perturbed_lora_model(30);
        let Some((a1, b1l, _, _)) = &m.seg.lora else {
            panic!("lora model");
        };
        let rank = 2;
        let input = m.cfg.input_dim();
        let h = m.cfg.hidden;
        let a = &m.params[a1.clone()];
        let b = &m.params[b1l.clone()];
        let mut naive = m.params[m.seg.w1.clone()].to_vec();
        for r in 0..h {
            for c in 0..input {
                let mut dot = 0.0;
                for k in 0..rank {
                    dot += a[r * rank + k] * b[k * input + c];
                }
                naive[r * input + c] += m.cfg.lora_scale * dot;
            }
        }
        assert_eq!(m.w1_eff(), naive, "blocked merge must be bit-identical");
    }

    #[test]
    fn log_prob_unchanged_by_hoisted_merge() {
        // The hoisted-merge sequence path must equal per-position
        // `next_log_probs` summation exactly.
        let m = perturbed_lora_model(31);
        let resp = vec![3, 7, 1, 4];
        let manual: f32 = m
            .positions(&resp)
            .iter()
            .map(|(ctx, tgt)| m.next_log_probs(1, ctx).unwrap()[*tgt as usize])
            .sum();
        assert_eq!(m.log_prob(1, &resp).unwrap().to_bits(), manual.to_bits());
    }

    #[test]
    fn workspace_reuse_is_bit_exact() {
        let m = perturbed_lora_model(32);
        let mut ws = SeqWorkspace::new();
        for resp in [vec![3, 4, 5], vec![1], vec![7, 7, 2, 2, 6], vec![]] {
            let (v_ws, g_ws) = m.log_prob_grad_in(0, &resp, &mut ws).unwrap();
            let (v_fresh, g_fresh) = m
                .log_prob_grad_in(0, &resp, &mut SeqWorkspace::new())
                .unwrap();
            assert_eq!(v_ws.to_bits(), v_fresh.to_bits());
            assert_eq!(g_ws, g_fresh);
        }
    }

    /// Two graphs built on one tape (the DPO pair layout) must not
    /// disturb each other: the first graph's gradient is bit-identical
    /// whether or not a second graph was appended before backward.
    /// Regression test — `seq_forward_in` once reset the tape itself,
    /// silently aliasing the first graph's node ids into the second's.
    #[test]
    fn shared_tape_graphs_are_independent() {
        let m = perturbed_lora_model(33);
        let mut solo = SeqWorkspace::new();
        let g_solo = m.seq_forward_in(1, &[3, 4, 5], &mut solo).unwrap();
        let grad_solo = m.seq_grad_in(&g_solo, &mut solo);

        let mut dual = SeqWorkspace::new();
        let g_first = m.seq_forward_in(1, &[3, 4, 5], &mut dual).unwrap();
        let g_second = m.seq_forward_in(1, &[6, 7], &mut dual).unwrap();
        let grad_first = m.seq_grad_in(&g_first, &mut dual);
        let grad_second = m.seq_grad_in(&g_second, &mut dual);

        assert_eq!(g_solo.value().to_bits(), g_first.value().to_bits());
        assert_eq!(grad_solo, grad_first);

        let mut solo2 = SeqWorkspace::new();
        let g_solo2 = m.seq_forward_in(1, &[6, 7], &mut solo2).unwrap();
        let grad_solo2 = m.seq_grad_in(&g_solo2, &mut solo2);
        assert_eq!(g_solo2.value().to_bits(), g_second.value().to_bits());
        assert_eq!(grad_solo2, grad_second);
    }

    proptest::proptest! {
        /// The batched sequence graph is bit-for-bit identical to the
        /// original per-position graph: same value bits, same gradient
        /// bits, for random sequences under both adapt modes.
        #[test]
        fn batched_grad_is_bitwise_equal_to_reference(
            resp in proptest::collection::vec(0u32..10, 0..8),
            task in 0usize..3,
            lora in 0usize..2,
            seed in 0u64..64,
        ) {
            let adapt = if lora == 1 { AdaptMode::Lora { rank: 2 } } else { AdaptMode::Full };
            let mut m = model(adapt, seed);
            for (i, p) in m.params_mut().iter_mut().enumerate() {
                *p += ((i as f32 * 0.377 + seed as f32).sin()) * 0.05;
            }
            let (v_new, g_new) = m.log_prob_grad(task, &resp).unwrap();
            let (v_ref, g_ref) = m.log_prob_grad_reference(task, &resp).unwrap();
            proptest::prop_assert_eq!(v_new.to_bits(), v_ref.to_bits());
            for (i, (a, b)) in g_new.0.iter().zip(&g_ref.0).enumerate() {
                proptest::prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "grad[{}] differs: {} vs {}", i, a, b
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let m = model(AdaptMode::Lora { rank: 2 }, 11);
        let json = serde_json::to_string(&m).unwrap();
        let back: CondLm = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert_eq!(
            m.log_prob(0, &[3, 4]).unwrap(),
            back.log_prob(0, &[3, 4]).unwrap()
        );
    }
}
