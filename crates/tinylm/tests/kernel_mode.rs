//! Integration tests for the process-global kernel mode — in their own
//! test binary (hence process) so flipping the global cannot race the
//! unit-test threads, which use pinned workspaces instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinylm::{kernels, AdaptMode, CondLm, KernelMode, LmConfig, SeqWorkspace};

fn model_and_seq() -> (CondLm, Vec<tinylm::Token>) {
    let cfg = LmConfig {
        vocab_size: 24,
        num_tasks: 2,
        adapt: AdaptMode::Full,
        ..LmConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let model = CondLm::new(cfg, &mut rng);
    let toks = (0..9).map(|_| rng.gen_range(3..24u32)).collect();
    (model, toks)
}

/// The global defaults to `Reference`; fresh and reset tapes capture
/// whatever the global currently is; pinned workspaces ignore it.
#[test]
fn global_mode_roundtrip() {
    assert_eq!(kernels::mode(), KernelMode::Reference);
    let (model, toks) = model_and_seq();

    // A default workspace built now captures Reference.
    let mut ws = SeqWorkspace::new();
    let v_ref = model
        .seq_forward_in(0, &toks, &mut ws)
        .expect("valid sequence")
        .value();

    // Flip the global: the same workspace picks it up on reset (the hot
    // paths reset before building each round's graphs).
    kernels::set_mode(KernelMode::Fast);
    ws.reset();
    let v_fast = model
        .seq_forward_in(0, &toks, &mut ws)
        .expect("valid sequence")
        .value();

    // A pinned workspace stays in its mode regardless of the global.
    let mut pinned = SeqWorkspace::with_mode(KernelMode::Reference);
    let v_pinned = model
        .seq_forward_in(0, &toks, &mut pinned)
        .expect("valid sequence")
        .value();

    kernels::set_mode(KernelMode::Reference);
    assert_eq!(v_pinned.to_bits(), v_ref.to_bits(), "pinned mode leaked");
    // Fast mode must agree closely but is allowed to differ in the last
    // bits — and on this shape it genuinely does, proving the flip took.
    assert_ne!(v_fast.to_bits(), v_ref.to_bits(), "mode flip had no effect");
    assert!((f64::from(v_fast) - f64::from(v_ref)).abs() <= 1e-4 * f64::from(v_ref.abs()));
}

/// Model-level fast-math tolerance: values and full gradients from a
/// pinned fast workspace track the reference within a tight relative
/// envelope across ragged sequence lengths.
#[test]
fn fast_mode_tracks_reference_at_model_level() {
    let (model, _) = model_and_seq();
    let mut rng = StdRng::seed_from_u64(11);
    let mut ws_ref = SeqWorkspace::with_mode(KernelMode::Reference);
    let mut ws_fast = SeqWorkspace::with_mode(KernelMode::Fast);
    for len in [1usize, 2, 5, 8, 13] {
        let toks: Vec<u32> = (0..len).map(|_| rng.gen_range(3..24u32)).collect();
        ws_ref.reset();
        ws_fast.reset();
        let g_ref = model
            .seq_forward_in(1, &toks, &mut ws_ref)
            .expect("valid sequence");
        let g_fast = model
            .seq_forward_in(1, &toks, &mut ws_fast)
            .expect("valid sequence");
        let (vr, vf) = (f64::from(g_ref.value()), f64::from(g_fast.value()));
        assert!(
            (vr - vf).abs() <= 1e-5 * vr.abs().max(1.0),
            "len {len}: value {vr} vs {vf}"
        );
        let d_ref = model.seq_grad_in(&g_ref, &mut ws_ref);
        let d_fast = model.seq_grad_in(&g_fast, &mut ws_fast);
        for (i, (a, b)) in d_ref.0.iter().zip(&d_fast.0).enumerate() {
            let (a, b) = (f64::from(*a), f64::from(*b));
            assert!(
                (a - b).abs() <= 1e-4 * a.abs().max(b.abs()).max(1.0),
                "len {len}: grad[{i}] {a} vs {b}"
            );
        }
    }
}
