//! The miniature DPO-AF loop for the warehouse domain, assembled from
//! the generic crates (no `dpo-af` dependency — this is the recipe,
//! re-instantiated).

use crate::domain::WarehouseDomain;
use crate::feedback::score_warehouse_response;
use dpo::{DpoTrainer, PreferenceDataset, TrainOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tinylm::{pretrain, AdaptMode, CondLm, LmConfig, PretrainOptions, SampleOptions};

/// Configuration for [`run_mini`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiniConfig {
    /// Master seed.
    pub seed: u64,
    /// Pretraining corpus size.
    pub corpus_size: usize,
    /// Pretraining epochs.
    pub pretrain_epochs: usize,
    /// Responses sampled per task per collection round.
    pub responses_per_task: usize,
    /// Collection rounds.
    pub rounds: usize,
    /// DPO epochs.
    pub epochs: usize,
    /// Responses per task for before/after evaluation.
    pub eval_samples: usize,
}

impl Default for MiniConfig {
    fn default() -> Self {
        MiniConfig {
            seed: 5,
            corpus_size: 600,
            pretrain_epochs: 6,
            responses_per_task: 6,
            rounds: 3,
            epochs: 80,
            eval_samples: 8,
        }
    }
}

impl MiniConfig {
    /// A reduced configuration for tests.
    pub fn smoke() -> Self {
        MiniConfig {
            corpus_size: 120,
            pretrain_epochs: 2,
            responses_per_task: 3,
            rounds: 1,
            epochs: 6,
            eval_samples: 2,
            ..MiniConfig::default()
        }
    }
}

/// What the mini pipeline reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniOutcome {
    /// Mean rules satisfied (of 8) before fine-tuning.
    pub before: f64,
    /// Mean rules satisfied (of 8) after fine-tuning.
    pub after: f64,
    /// Preference pairs trained on.
    pub pairs: usize,
    /// A sample decoded response from each model for task 0.
    pub sample_before: String,
    /// See `sample_before`.
    pub sample_after: String,
}

// Task ids and corpus tokens come from the domain itself, so sampling
// and training cannot see out-of-range inputs; fail loudly if they do.
#[allow(clippy::expect_used)] // ALLOW: domain-sourced ids cannot be out of range; fail loudly if they are.
fn evaluate(d: &WarehouseDomain, lm: &CondLm, samples: usize, rng: &mut impl Rng) -> f64 {
    let opts = SampleOptions {
        temperature: 0.6,
        max_len: 40,
        ..SampleOptions::default()
    };
    let mut total = 0usize;
    let mut count = 0usize;
    for task in &d.tasks {
        for _ in 0..samples {
            let tokens = lm.sample(task.id, rng, opts).expect("task in range");
            total += score_warehouse_response(d, task, &d.tokenizer.decode(&tokens));
            count += 1;
        }
    }
    total as f64 / count.max(1) as f64
}

/// Runs the warehouse DPO-AF loop end to end.
// Task ids and corpus tokens come from the domain itself, so sampling
// and training cannot see out-of-range inputs; fail loudly if they do.
#[allow(clippy::expect_used)] // ALLOW: domain-sourced ids cannot be out of range; fail loudly if they are.
pub fn run_mini(config: MiniConfig) -> MiniOutcome {
    let domain = WarehouseDomain::new();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // 1. Pretrain on the mixed corpus, then attach LoRA adapters.
    let cfg = LmConfig {
        vocab_size: domain.tokenizer.vocab_size(),
        num_tasks: domain.tasks.len(),
        adapt: AdaptMode::Full,
        hidden: 48,
        context: 4,
        ..LmConfig::default()
    };
    let mut base = CondLm::new(cfg, &mut rng);
    let corpus = domain.corpus(config.corpus_size, &mut rng);
    pretrain(
        &mut base,
        &corpus,
        PretrainOptions {
            epochs: config.pretrain_epochs,
            lr: 0.01,
            batch_size: 16,
        },
        &mut rng,
    );
    let reference = base.convert_adapt(AdaptMode::Lora { rank: 4 }, &mut rng);

    // 2. Collect verification-ranked preferences.
    let opts = SampleOptions {
        temperature: 1.1,
        max_len: 40,
        ..SampleOptions::default()
    };
    let mut dataset = PreferenceDataset::new();
    for _ in 0..config.rounds {
        for task in &domain.tasks {
            let scored: Vec<(Vec<tinylm::Token>, usize)> = (0..config.responses_per_task)
                .map(|_| {
                    let tokens = reference.sample(task.id, &mut rng, opts).expect("in range");
                    let score =
                        score_warehouse_response(&domain, task, &domain.tokenizer.decode(&tokens));
                    (tokens, score)
                })
                .collect();
            dataset.add_scored(task.id, &scored);
        }
    }

    // 3. DPO.
    let mut policy = reference.clone();
    if !dataset.is_empty() {
        let trainer = DpoTrainer::new(TrainOptions {
            beta: 0.6,
            lr: 1.5e-3,
            batch_size: 8,
            epochs: config.epochs,
            pairs_per_epoch: Some(32),
        });
        trainer
            .train(&mut policy, &reference, &dataset, &mut rng, |_, _| {})
            .expect("dataset in vocabulary");
    }

    // 4. Evaluate.
    let mut eval_rng = StdRng::seed_from_u64(config.seed ^ 0xbeef);
    let before = evaluate(&domain, &reference, config.eval_samples, &mut eval_rng);
    let after = evaluate(&domain, &policy, config.eval_samples, &mut eval_rng);

    let sample_opts = SampleOptions {
        temperature: 0.5,
        max_len: 40,
        ..SampleOptions::default()
    };
    let mut sample_rng = StdRng::seed_from_u64(config.seed ^ 0xcafe);
    let sample_before = domain.tokenizer.decode(
        &reference
            .sample(0, &mut sample_rng, sample_opts)
            .expect("task 0"),
    );
    let sample_after = domain.tokenizer.decode(
        &policy
            .sample(0, &mut sample_rng, sample_opts)
            .expect("task 0"),
    );

    MiniOutcome {
        before,
        after,
        pairs: dataset.len(),
        sample_before,
        sample_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_well_formed() {
        let outcome = run_mini(MiniConfig::smoke());
        assert!((0.0..=8.0).contains(&outcome.before));
        assert!((0.0..=8.0).contains(&outcome.after));
        assert!(!outcome.sample_before.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_mini(MiniConfig::smoke());
        let b = run_mini(MiniConfig::smoke());
        assert_eq!(a, b);
    }
}
