//! The warehouse rule book and automated feedback.

use crate::domain::{WarehouseDomain, WarehouseTask};
use autokit::ActSet;
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::specs::Spec;
use ltlcheck::{verify_all_fair, Justice, Ltl};

/// The eight warehouse rules.
pub fn warehouse_specs(d: &WarehouseDomain) -> Vec<Spec> {
    let human = Ltl::prop(d.human);
    let obstacle = Ltl::prop(d.obstacle);
    let shelf = Ltl::prop(d.shelf);
    let battery = Ltl::prop(d.battery_low);
    let mv = Ltl::act(d.move_forward);
    let pick = Ltl::act(d.pick);
    let place = Ltl::act(d.place);
    let wait = Ltl::act(d.wait);
    let dock = Ltl::act(d.dock);

    let spec = |name: &str, description: &str, formula: Ltl| Spec {
        name: name.to_owned(),
        description: description.to_owned(),
        formula,
    };
    vec![
        spec(
            "w_1",
            "never drive toward a nearby human",
            Ltl::always(Ltl::implies(human.clone(), Ltl::not(mv.clone()))),
        ),
        spec(
            "w_2",
            "a nearby human eventually makes the robot hold position",
            Ltl::always(Ltl::implies(human.clone(), Ltl::eventually(wait.clone()))),
        ),
        spec(
            "w_3",
            "never drive into an obstacle",
            Ltl::always(Ltl::implies(obstacle.clone(), Ltl::not(mv.clone()))),
        ),
        spec(
            "w_4",
            "only pick when a shelf is detected",
            Ltl::always(Ltl::implies(pick.clone(), shelf.clone())),
        ),
        spec(
            "w_5",
            "a low battery eventually sends the robot to the dock",
            Ltl::always(Ltl::implies(battery.clone(), Ltl::eventually(dock.clone()))),
        ),
        spec(
            "w_6",
            "the robot always commits to some action",
            Ltl::always(Ltl::any([
                mv.clone(),
                pick.clone(),
                place.clone(),
                wait.clone(),
                dock.clone(),
            ])),
        ),
        spec(
            "w_7",
            "if shelves keep appearing, a picking robot eventually picks",
            Ltl::implies(
                Ltl::always(Ltl::eventually(shelf.clone())),
                Ltl::eventually(pick.clone()),
            ),
        ),
        spec(
            "w_8",
            "never start a pick on a low battery",
            Ltl::always(Ltl::implies(battery.clone(), Ltl::not(pick.clone()))),
        ),
    ]
}

/// The floor's justice assumption: infinitely often a shelf is in view
/// while the aisle is clear and the battery is fine.
// The justice condition is propositional by construction.
#[allow(clippy::expect_used)] // ALLOW: the justice condition is propositional by construction.
pub fn warehouse_justice(d: &WarehouseDomain) -> Vec<Justice> {
    let condition = Ltl::all([
        Ltl::prop(d.shelf),
        Ltl::not(Ltl::prop(d.human)),
        Ltl::not(Ltl::prop(d.obstacle)),
        Ltl::not(Ltl::prop(d.battery_low)),
    ]);
    vec![Justice::new("aisle clears with a shelf in view", condition)
        .expect("propositional by construction")]
}

/// Scores a response for a task: number of warehouse rules satisfied
/// (0 on alignment failure). The robot's reactive action is `wait`; `ε`
/// defaults to `wait` (an observing robot is a holding robot).
pub fn score_warehouse_response(d: &WarehouseDomain, task: &WarehouseTask, text: &str) -> usize {
    let steps: Vec<String> = text
        .split(';')
        .map(|s| s.trim().trim_end_matches('.').trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    let options = FsaOptions {
        non_blocking: ActSet::singleton(d.wait),
        ..FsaOptions::default()
    };
    let Ok(ctrl) = synthesize(&task.prompt, &steps, &d.lexicon, options) else {
        return 0;
    };
    let ctrl = with_default_action(&ctrl, d.wait);
    let specs = warehouse_specs(d);
    let report = verify_all_fair(
        &d.floor_model(),
        &ctrl,
        specs.iter().map(|s| (s.name.as_str(), &s.formula)),
        &warehouse_justice(d),
    );
    report.num_satisfied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::WarehouseStyle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eight_satisfiable_rules() {
        let d = WarehouseDomain::new();
        let specs = warehouse_specs(&d);
        assert_eq!(specs.len(), 8);
        for s in &specs {
            assert!(
                ltlcheck::analysis::satisfiable(&s.formula),
                "{} unsatisfiable",
                s.name
            );
            assert!(
                !ltlcheck::analysis::valid(&s.formula),
                "{} tautology",
                s.name
            );
        }
    }

    #[test]
    fn justice_realizable_on_the_floor() {
        let d = WarehouseDomain::new();
        let model = d.floor_model();
        let justice = warehouse_justice(&d);
        assert!(model.states().any(|s| justice
            .iter()
            .all(|j| j.holds(model.label(s), autokit::ActSet::empty()))));
    }

    #[test]
    fn careful_outranks_hasty_outranks_reckless() {
        let d = WarehouseDomain::new();
        let mut rng = StdRng::seed_from_u64(3);
        let task = &d.tasks[0]; // pick from shelf
        let score = |style, rng: &mut StdRng| {
            let text = d.render(task, style, rng);
            score_warehouse_response(&d, task, &text)
        };
        let careful = score(WarehouseStyle::Careful, &mut rng);
        let hasty = score(WarehouseStyle::Hasty, &mut rng);
        let reckless = score(WarehouseStyle::Reckless, &mut rng);
        let unalignable = score(WarehouseStyle::Unalignable, &mut rng);
        assert!(careful > hasty, "careful {careful} vs hasty {hasty}");
        assert!(hasty > reckless, "hasty {hasty} vs reckless {reckless}");
        assert_eq!(unalignable, 0);
        // w_5 (battery → ◇dock) and w_8 (battery → ¬pick) are cross-task
        // rules a pure picking procedure cannot satisfy, so 6/8 is the
        // careful ceiling here — the same structure as the driving
        // domain's Φ₃ at stop signs.
        assert!(careful >= 6, "careful should satisfy almost all: {careful}");
    }

    #[test]
    fn careful_scores_high_on_every_task() {
        let d = WarehouseDomain::new();
        let mut rng = StdRng::seed_from_u64(4);
        for task in &d.tasks {
            let text = d.render(task, WarehouseStyle::Careful, &mut rng);
            let score = score_warehouse_response(&d, task, &text);
            assert!(score >= 6, "task {} (`{}`): {score}/8", task.id, text);
        }
    }
}
