//! # warehouse — a second DPO-AF domain
//!
//! The paper demonstrates DPO-AF on autonomous driving but notes that
//! "applicability is not limited to this domain". This crate is the
//! proof: a **warehouse robot** domain built from the same substrate
//! crates, with none of them modified —
//!
//! * a vocabulary and world model from `autokit` (humans, obstacles,
//!   shelves and battery state come and go; the robot moves, picks,
//!   places, waits and docks),
//! * an eight-rule safety/liveness rule book checked by `ltlcheck` under
//!   a justice assumption ("the aisle clears and a shelf appears
//!   infinitely often"),
//! * a paraphrase lexicon and templates compiled by `glm2fsa`,
//! * a conditional language model from `tinylm` fine-tuned by `dpo` on
//!   verification-ranked preferences.
//!
//! [`pipeline::run_mini`] runs the whole loop and reports the
//! before/after specification-satisfaction scores; the
//! `warehouse_robot` example prints the full story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod feedback;
pub mod pipeline;

pub use domain::{WarehouseDomain, WarehouseStyle, WarehouseTask};
pub use feedback::{score_warehouse_response, warehouse_justice, warehouse_specs};
pub use pipeline::{run_mini, MiniConfig, MiniOutcome};
