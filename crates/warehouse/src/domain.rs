//! The warehouse robot's vocabulary, world model, tasks, lexicon and
//! response templates.

use autokit::{ActId, PropId, PropSet, Vocab, WorldModel};
use glm2fsa::Lexicon;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tinylm::{Token, Tokenizer};

/// One robot task (doubles as the conditional LM's prompt id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseTask {
    /// Task id.
    pub id: usize,
    /// Natural-language prompt.
    pub prompt: String,
    /// The task's goal action.
    pub action: ActId,
    /// Propositions that must hold before acting (e.g. a shelf must be
    /// detected before picking).
    pub requires: Vec<PropId>,
    /// Hazards that must be absent before acting.
    pub hazards: Vec<PropId>,
}

/// Instruction quality styles, the warehouse analogue of the driving
/// corpus mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarehouseStyle {
    /// Checks prerequisites and hazards, then acts.
    Careful,
    /// Skips the hazard checks.
    Hasty,
    /// Acts unconditionally.
    Reckless,
    /// Cannot be aligned to the vocabulary.
    Unalignable,
}

impl WarehouseStyle {
    /// All styles.
    pub fn all() -> [WarehouseStyle; 4] {
        [
            WarehouseStyle::Careful,
            WarehouseStyle::Hasty,
            WarehouseStyle::Reckless,
            WarehouseStyle::Unalignable,
        ]
    }
}

/// The assembled domain.
#[derive(Debug, Clone)]
pub struct WarehouseDomain {
    /// Propositions and actions.
    pub vocab: Vocab,
    /// `human nearby`
    pub human: PropId,
    /// `obstacle ahead`
    pub obstacle: PropId,
    /// `shelf detected`
    pub shelf: PropId,
    /// `battery low`
    pub battery_low: PropId,
    /// `move forward`
    pub move_forward: ActId,
    /// `pick item`
    pub pick: ActId,
    /// `place item`
    pub place: ActId,
    /// `wait`
    pub wait: ActId,
    /// `dock`
    pub dock: ActId,
    /// The four tasks.
    pub tasks: Vec<WarehouseTask>,
    /// Alignment lexicon.
    pub lexicon: Lexicon,
    /// Tokenizer over every template expansion.
    pub tokenizer: Tokenizer,
}

impl Default for WarehouseDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl WarehouseDomain {
    /// Builds the warehouse domain.
    // Built from distinct literals into a fresh vocabulary/lexicon; a
    // panic here is a bug in this constructor.
    #[allow(clippy::expect_used)] // ALLOW: fresh vocabulary by construction; a panic is a constructor bug.
    pub fn new() -> Self {
        let mut vocab = Vocab::new();
        let human = vocab.add_prop("human nearby").expect("fresh vocab");
        let obstacle = vocab.add_prop("obstacle ahead").expect("fresh vocab");
        let shelf = vocab.add_prop("shelf detected").expect("fresh vocab");
        let battery_low = vocab.add_prop("battery low").expect("fresh vocab");
        let move_forward = vocab.add_act("move forward").expect("fresh vocab");
        let pick = vocab.add_act("pick item").expect("fresh vocab");
        let place = vocab.add_act("place item").expect("fresh vocab");
        let wait = vocab.add_act("wait").expect("fresh vocab");
        let dock = vocab.add_act("dock").expect("fresh vocab");

        let mut lexicon = Lexicon::new(&vocab);
        for (phrase, p) in [
            ("person in the aisle", human),
            ("someone nearby", human),
            ("worker close by", human),
            ("path is blocked", obstacle),
            ("something in the way", obstacle),
            ("blocked aisle", obstacle),
            ("storage rack", shelf),
            ("target shelf", shelf),
            ("shelf in view", shelf),
            ("power is low", battery_low),
            ("low charge", battery_low),
            ("battery is low", battery_low),
        ] {
            lexicon.add_prop_phrase(phrase, p);
        }
        for (phrase, a) in [
            ("drive forward", move_forward),
            ("advance", move_forward),
            ("proceed down the aisle", move_forward),
            ("grab the item", pick),
            ("pick up the item", pick),
            ("retrieve the item", pick),
            ("set the item down", place),
            ("drop off the item", place),
            ("deposit the item", place),
            ("hold position", wait),
            ("stand by", wait),
            ("return to the charger", dock),
            ("go charge", dock),
            ("head to the dock", dock),
        ] {
            lexicon.add_act_phrase(phrase, a);
        }

        let tasks = vec![
            WarehouseTask {
                id: 0,
                prompt: "pick an item from the shelf".to_owned(),
                action: pick,
                requires: vec![shelf],
                hazards: vec![human, obstacle],
            },
            WarehouseTask {
                id: 1,
                prompt: "deliver the item to the packing station".to_owned(),
                action: place,
                requires: vec![],
                hazards: vec![human, obstacle],
            },
            WarehouseTask {
                id: 2,
                prompt: "patrol the aisle".to_owned(),
                action: move_forward,
                requires: vec![],
                hazards: vec![human, obstacle],
            },
            WarehouseTask {
                id: 3,
                prompt: "recharge when the battery is low".to_owned(),
                action: dock,
                requires: vec![battery_low],
                hazards: vec![human],
            },
        ];

        // Tokenizer corpus from template expansions.
        let mut domain = WarehouseDomain {
            vocab,
            human,
            obstacle,
            shelf,
            battery_low,
            move_forward,
            pick,
            place,
            wait,
            dock,
            tasks,
            lexicon,
            tokenizer: Tokenizer::from_corpus(Vec::<String>::new()),
        };
        let mut texts = Vec::new();
        for task in domain.tasks.clone() {
            for style in WarehouseStyle::all() {
                for seed in 0..10u64 {
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        seed * 37 + task.id as u64,
                    );
                    texts.push(domain.render(&task, style, &mut rng));
                }
            }
        }
        domain.tokenizer = Tokenizer::from_corpus(texts.iter().map(String::as_str));
        domain
    }

    /// The warehouse floor's world model: humans, obstacles, shelves and
    /// battery state toggle one at a time.
    pub fn floor_model(&self) -> WorldModel {
        let props = [self.human, self.obstacle, self.shelf, self.battery_low];
        let labels: Vec<PropSet> = (0..(1u32 << props.len()))
            .map(|mask| {
                let mut l = PropSet::empty();
                for (i, &p) in props.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        l.insert(p);
                    }
                }
                l
            })
            .collect();
        let mut model = WorldModel::new("warehouse floor");
        let states: Vec<_> = labels.iter().map(|&l| model.add_state(l)).collect();
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                if (li.bits() ^ lj.bits()).count_ones() <= 1 {
                    model.add_transition(states[i], states[j]);
                }
            }
        }
        model
    }

    /// A scaled warehouse floor: `aisles` copies of the 16-label floor
    /// laid out as a grid corridor. Within an aisle the floor evolves as
    /// in [`floor_model`](Self::floor_model) (labels toggle one
    /// proposition at a time); the robot can also move to the same
    /// situation in an adjacent aisle. State count grows linearly in
    /// `aisles` with sparse, structured transitions — the grid-world
    /// counterpart to `drivesim`'s dense scaled traffic models in the
    /// `backend_compare --sweep` benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `aisles` is zero.
    pub fn scaled_floor_model(&self, aisles: usize) -> WorldModel {
        assert!(aisles > 0, "at least one aisle");
        let props = [self.human, self.obstacle, self.shelf, self.battery_low];
        let labels: Vec<PropSet> = (0..(1u32 << props.len()))
            .map(|mask| {
                let mut l = PropSet::empty();
                for (i, &p) in props.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        l.insert(p);
                    }
                }
                l
            })
            .collect();
        let per = labels.len();
        let mut model = WorldModel::new(format!("warehouse floor ({aisles} aisles)"));
        let mut states = Vec::with_capacity(aisles * per);
        for _ in 0..aisles {
            for &l in &labels {
                states.push(model.add_state(l));
            }
        }
        for aisle in 0..aisles {
            for (i, &li) in labels.iter().enumerate() {
                for (j, &lj) in labels.iter().enumerate() {
                    if (li.bits() ^ lj.bits()).count_ones() <= 1 {
                        model.add_transition(states[aisle * per + i], states[aisle * per + j]);
                    }
                }
                // Corridor moves: same situation, adjacent aisle.
                if aisle + 1 < aisles {
                    model.add_transition(states[aisle * per + i], states[(aisle + 1) * per + i]);
                    model.add_transition(states[(aisle + 1) * per + i], states[aisle * per + i]);
                }
            }
        }
        model
    }

    // `choose` on a non-empty const slice cannot return `None`.
    #[allow(clippy::expect_used)] // ALLOW: choose on a non-empty const slice cannot fail.
    fn prop_phrase<'a>(&self, p: PropId, rng: &mut impl Rng) -> &'a str {
        let options: &[&str] = if p == self.human {
            &["human nearby", "person in the aisle", "someone nearby"]
        } else if p == self.obstacle {
            &["obstacle ahead", "path is blocked", "something in the way"]
        } else if p == self.shelf {
            &["shelf detected", "storage rack", "target shelf"]
        } else {
            &["battery low", "power is low", "low charge"]
        };
        options.choose(rng).expect("non-empty")
    }

    // `choose` on a non-empty const slice cannot return `None`.
    #[allow(clippy::expect_used)] // ALLOW: choose on a non-empty const slice cannot fail.
    fn act_phrase<'a>(&self, a: ActId, rng: &mut impl Rng) -> &'a str {
        let options: &[&str] = if a == self.move_forward {
            &["move forward", "drive forward", "advance"]
        } else if a == self.pick {
            &["pick item", "grab the item", "pick up the item"]
        } else if a == self.place {
            &["place item", "set the item down", "deposit the item"]
        } else if a == self.wait {
            &["wait", "hold position", "stand by"]
        } else {
            &["dock", "return to the charger", "go charge"]
        };
        options.choose(rng).expect("non-empty")
    }

    /// Renders one response for a task in a style (steps `;`-separated).
    // `choose` on a non-empty const slice cannot return `None`.
    #[allow(clippy::expect_used)] // ALLOW: choose on a non-empty const slice cannot fail.
    pub fn render(
        &self,
        task: &WarehouseTask,
        style: WarehouseStyle,
        rng: &mut impl Rng,
    ) -> String {
        let action = self.act_phrase(task.action, rng);
        let steps: Vec<String> = match style {
            WarehouseStyle::Careful => {
                let mut guard_parts: Vec<String> = Vec::new();
                let mut steps = Vec::new();
                if !task.requires.is_empty() {
                    let names: Vec<&str> = task
                        .requires
                        .iter()
                        .map(|&p| self.prop_phrase(p, rng))
                        .collect();
                    steps.push(format!("check for the {}", names.join(" and the ")));
                    guard_parts.extend(names.iter().map(|n| n.to_string()));
                }
                let hazard_names: Vec<&str> = task
                    .hazards
                    .iter()
                    .map(|&p| self.prop_phrase(p, rng))
                    .collect();
                if !hazard_names.is_empty() {
                    steps.push(format!("observe the {}", hazard_names.join(" and the ")));
                }
                guard_parts.extend(hazard_names.iter().map(|n| format!("no {n}")));
                steps.push(format!("if {}, {action}", guard_parts.join(" and ")));
                steps
            }
            WarehouseStyle::Hasty => {
                let mut steps = Vec::new();
                if let Some(&req) = task.requires.first() {
                    let name = self.prop_phrase(req, rng);
                    steps.push(format!("if {name}, {action}"));
                } else {
                    steps.push(action.to_owned());
                }
                steps
            }
            WarehouseStyle::Reckless => vec![action.to_owned()],
            WarehouseStyle::Unalignable => vec![[
                "do whatever seems best",
                "improvise as needed",
                "figure it out",
            ]
            .choose(rng)
            .expect("non-empty")
            .to_string()],
        };
        format!("{} .", steps.join(" ; "))
    }

    /// Renders and encodes a response.
    pub fn render_tokens(
        &self,
        task: &WarehouseTask,
        style: WarehouseStyle,
        rng: &mut impl Rng,
    ) -> Vec<Token> {
        let text = self.render(task, style, rng);
        self.tokenizer.encode(&text)
    }

    /// A pretraining corpus with a deliberately mixed quality profile.
    // `choose` on a non-empty const slice cannot return `None`.
    #[allow(clippy::expect_used)] // ALLOW: choose on a non-empty const slice cannot fail.
    pub fn corpus(&self, size: usize, rng: &mut impl Rng) -> Vec<(usize, Vec<Token>)> {
        let styles = [
            (WarehouseStyle::Careful, 0.30),
            (WarehouseStyle::Hasty, 0.30),
            (WarehouseStyle::Reckless, 0.20),
            (WarehouseStyle::Unalignable, 0.20),
        ];
        (0..size)
            .map(|_| {
                let task = self.tasks.choose(rng).expect("non-empty").clone();
                let mut draw: f64 = rng.gen();
                let mut style = WarehouseStyle::Careful;
                for (s, w) in styles {
                    if draw < w {
                        style = s;
                        break;
                    }
                    draw -= w;
                }
                (task.id, self.render_tokens(&task, style, rng))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn domain_builds() {
        let d = WarehouseDomain::new();
        assert_eq!(d.vocab.num_props(), 4);
        assert_eq!(d.vocab.num_acts(), 5);
        assert_eq!(d.tasks.len(), 4);
        assert!(d.tokenizer.vocab_size() > 20);
    }

    #[test]
    fn floor_model_single_change_dynamics() {
        let d = WarehouseDomain::new();
        let m = d.floor_model();
        assert_eq!(m.num_states(), 16);
        for s in m.states() {
            for &t in m.successors(s) {
                assert!((m.label(s).bits() ^ m.label(t).bits()).count_ones() <= 1);
            }
        }
    }

    #[test]
    fn careful_templates_align_and_encode() {
        let d = WarehouseDomain::new();
        let mut rng = StdRng::seed_from_u64(0);
        for task in &d.tasks {
            let text = d.render(task, WarehouseStyle::Careful, &mut rng);
            let steps: Vec<&str> = text.trim_end_matches('.').split(';').collect();
            let ctrl = glm2fsa::synthesize(
                &task.prompt,
                &steps,
                &d.lexicon,
                glm2fsa::FsaOptions::default(),
            );
            assert!(ctrl.is_ok(), "`{text}`: {ctrl:?}");
            let tokens = d.tokenizer.encode(&text);
            assert!(!d.tokenizer.decode(&tokens).contains("<unk>"), "`{text}`");
        }
    }

    #[test]
    fn unalignable_fails_synthesis() {
        let d = WarehouseDomain::new();
        let mut rng = StdRng::seed_from_u64(1);
        let text = d.render(&d.tasks[0], WarehouseStyle::Unalignable, &mut rng);
        let steps: Vec<&str> = text.trim_end_matches('.').split(';').collect();
        assert!(
            glm2fsa::synthesize("t", &steps, &d.lexicon, glm2fsa::FsaOptions::default()).is_err()
        );
    }

    #[test]
    fn scaled_floor_is_a_grid_of_floors() {
        let d = WarehouseDomain::new();
        let base = d.floor_model();
        let one = d.scaled_floor_model(1);
        // One aisle is exactly the base floor.
        assert_eq!(one.num_states(), base.num_states());
        assert_eq!(one.num_transitions(), base.num_transitions());
        // k aisles: k floors plus 2·16 corridor moves per seam.
        let four = d.scaled_floor_model(4);
        assert_eq!(four.num_states(), 4 * base.num_states());
        assert_eq!(
            four.num_transitions(),
            4 * base.num_transitions() + 3 * 2 * base.num_states()
        );
    }

    #[test]
    fn backends_agree_on_a_scaled_floor() {
        use crate::feedback::{warehouse_justice, warehouse_specs};
        let d = WarehouseDomain::new();
        let model = d.scaled_floor_model(3);
        let task = &d.tasks[2]; // patrol the aisle
        let mut rng = StdRng::seed_from_u64(3);
        let text = d.render(task, WarehouseStyle::Careful, &mut rng);
        let steps: Vec<&str> = text.trim_end_matches('.').split(';').collect();
        let ctrl = glm2fsa::synthesize(
            &task.prompt,
            &steps,
            &d.lexicon,
            glm2fsa::FsaOptions::default(),
        )
        .unwrap();
        let ctrl = glm2fsa::with_default_action(&ctrl, d.wait);
        let graph =
            autokit::Product::build(&model, &ctrl).label_graph(autokit::DeadlockPolicy::Stutter);
        let justice = warehouse_justice(&d);
        for spec in warehouse_specs(&d) {
            let explicit = ltlcheck::check_graph_fair(&graph, &spec.formula, &justice).holds();
            let symbolic =
                ltlcheck::symbolic::check_graph_fair_symbolic(&graph, &spec.formula, &justice);
            assert_eq!(explicit, symbolic, "{}", spec.name);
        }
    }

    #[test]
    fn corpus_covers_tasks_and_styles() {
        let d = WarehouseDomain::new();
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = d.corpus(200, &mut rng);
        assert_eq!(corpus.len(), 200);
        let mut tasks: Vec<usize> = corpus.iter().map(|&(t, _)| t).collect();
        tasks.sort_unstable();
        tasks.dedup();
        assert_eq!(tasks, vec![0, 1, 2, 3]);
    }
}
