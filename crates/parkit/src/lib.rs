//! # parkit — a zero-dependency work-stealing thread pool
//!
//! The DPO-AF feedback loop spends almost all of its wall clock on
//! per-response formal verification — pure, independent work units that
//! repeat thousands of times per run. `parkit` is the workspace's
//! parallel substrate for exactly that shape of work:
//!
//! * **Work stealing.** Each worker owns a deque (owner LIFO at the
//!   bottom, thieves FIFO at the top — the Chase–Lev discipline, see
//!   [`mod@deque`] for why the buffer itself is lock-based) plus a global
//!   injector for tasks spawned from outside the pool. Idle workers
//!   steal, so uneven verification costs balance themselves.
//! * **Scoped spawning.** [`ThreadPool::scope`] lets tasks borrow from
//!   the enclosing stack frame; the scope cannot be exited until every
//!   task has finished, which is what makes the lifetime erasure sound.
//! * **Deterministic joins.** [`ThreadPool::map`] writes results into
//!   per-index slots and hands them back **in item order**. Runs are
//!   byte-identical at 1 or N threads as long as the mapped function is
//!   itself deterministic per item — the pipeline's reproducibility
//!   contract (DESIGN.md §8).
//! * **Panic propagation.** The first panic from any task is re-raised
//!   from the scope (after all tasks finish), never swallowed on a
//!   worker.
//! * **Caller participation.** A pool of `n` threads spawns `n - 1`
//!   workers; the scope owner helps execute tasks while it waits. A
//!   1-thread pool is exactly the sequential loop.
//!
//! Thread-count resolution ([`resolve_threads`]): explicit config >
//! `PARKIT_THREADS` environment variable > available parallelism.
//!
//! The pool feeds two `obskit` counters: `pool.tasks` (tasks spawned)
//! and `pool.steals` (tasks taken from another worker's deque), and
//! names its workers (`parkit-worker-N`) in Chrome traces.

#![warn(missing_docs)]

mod deque;
#[cfg(feature = "model")]
pub mod models;
mod pool;
mod shard;

pub use pool::{resolve_threads, Scope, ThreadPool};
pub use shard::{InsertOutcome, ShardedMap};

#[cfg(test)]
mod tests {
    // ALLOW: test-only panics are the assertion mechanism.
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn map_returns_results_in_item_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.map(&items, |i, &x| {
            // Stagger completion order so out-of-order finishes would
            // scramble a naive join.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    /// Determinism across pool widths with a task that actively invites
    /// interleaving: the index-ordered join must erase scheduling.
    #[test]
    fn map_deterministic_across_widths_under_yielding() {
        let items: Vec<u64> = (0..48).collect();
        let f = |i: usize, &x: &u64| {
            std::thread::yield_now();
            x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64)
        };
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for width in [1usize, 2, 4] {
            let pool = ThreadPool::new(width);
            assert_eq!(pool.map(&items, f), expect, "width {width}");
        }
    }

    #[test]
    fn map_on_one_thread_equals_map_on_many() {
        let serial = ThreadPool::new(1);
        let parallel = ThreadPool::new(8);
        let items: Vec<u64> = (0..200).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(2654435761).rotate_left(13);
        assert_eq!(serial.map(&items, f), parallel.map(&items, f));
    }

    /// Contention torture: many more tasks than threads, every task
    /// runs exactly once, and the scope owner's borrows survive.
    #[test]
    fn steal_correctness_under_contention() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        let n = 5_000;
        pool.scope(|s| {
            for i in 0..n {
                let hits = &hits;
                let sum = &sum;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let pool = ThreadPool::new(3);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..20 {
                    let completed = &completed;
                    s.spawn(move || {
                        if i == 11 {
                            panic!("task 11 exploded");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("panic must cross the scope");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("task 11 exploded"), "payload: {msg}");
        // Every non-panicking task still ran before the panic surfaced.
        assert_eq!(completed.load(Ordering::Relaxed), 19);
    }

    #[test]
    fn map_propagates_panic_too() {
        let pool = ThreadPool::new(2);
        let items = [1u32, 2, 3];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                assert!(x != 2, "poisoned item");
                x
            })
        }));
        assert!(result.is_err());
    }

    /// A task may open a scope of its own on the same pool (the shape
    /// nested spec-level parallelism produces). The inner scope's tasks
    /// run on the already-busy pool without deadlocking.
    #[test]
    fn nested_scopes_on_the_same_pool() {
        let pool = ThreadPool::new(3);
        let log = Mutex::new(Vec::new());
        let pool_ref = &pool;
        pool.scope(|s| {
            for outer in 0..4 {
                let log = &log;
                let pool = pool_ref;
                s.spawn(move || {
                    let inner: Vec<usize> = pool.map(&[10usize, 20, 30], |_, &x| x + outer);
                    if let Ok(mut l) = log.lock() {
                        l.push((outer, inner));
                    }
                });
            }
        });
        let mut entries = log.into_inner().unwrap_or_else(|p| p.into_inner());
        entries.sort();
        assert_eq!(entries.len(), 4);
        for (outer, inner) in entries {
            assert_eq!(inner, vec![10 + outer, 20 + outer, 30 + outer]);
        }
    }

    #[test]
    fn nested_map_inside_map() {
        let pool = ThreadPool::new(4);
        let rows: Vec<usize> = (0..8).collect();
        let out = pool.map(&rows, |_, &r| {
            let cols: Vec<usize> = (0..6).collect();
            pool.map(&cols, |_, &c| r * 10 + c)
        });
        for (r, row) in out.iter().enumerate() {
            let expect: Vec<usize> = (0..6).map(|c| r * 10 + c).collect();
            assert_eq!(row, &expect);
        }
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|s| {
            s.spawn(|| {});
            41 + 1
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn one_thread_pool_runs_inline_in_spawn_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move || {
                    if let Ok(mut o) = order.lock() {
                        o.push(i);
                    }
                });
            }
        });
        let order = order.into_inner().unwrap_or_else(|p| p.into_inner());
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    /// Dropping a pool joins its workers; a fresh pool per iteration
    /// must not leak threads or wedge.
    #[test]
    fn pools_shut_down_cleanly() {
        for threads in 1..=4 {
            let pool = ThreadPool::new(threads);
            let n = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..50 {
                    let n = &n;
                    s.spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(n.load(Ordering::Relaxed), 50);
            drop(pool);
        }
    }
}
