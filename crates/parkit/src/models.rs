//! conckit models of parkit's concurrency properties.
//!
//! Each function here builds one small, deterministic concurrent
//! scenario over the real pool/deque/map code (compiled against the
//! conckit shim) and returns the exploration [`Report`]. They are run
//! twice: as `#[test]`s in the `model`-feature test suite, and by the
//! `conc_check` bench binary which records schedule counts in CI.
//!
//! Scenarios are deliberately tiny — two or three threads, a handful of
//! tasks — because exhaustive exploration cost is exponential in
//! scheduling points. Within the preemption bound the coverage is still
//! total: every admissible interleaving of every sync operation in the
//! scenario, including the ones a torture test hits once a decade.

use crate::deque::WorkerDeque;
use crate::shard::ShardedMap;
use crate::ThreadPool;
use conckit::sync::atomic::{AtomicUsize, Ordering};
use conckit::sync::{Arc, Mutex};
use conckit::{explore, Config, Report};

/// Every spawned task runs exactly once — none lost, none duplicated —
/// across every interleaving of a 2-thread pool under contention.
pub fn pool_no_task_lost(config: &Config) -> Report {
    explore(config, || {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for i in 1..=3 {
                let (hits, sum) = (&hits, &sum);
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            3,
            "a task was lost or ran twice"
        );
        assert_eq!(sum.load(Ordering::Relaxed), 6, "task effects corrupted");
    })
}

/// `pool.map` returns results in item order under every schedule, with
/// a yield point inside the mapped function to widen the interleaving
/// space.
pub fn pool_map_order(config: &Config) -> Report {
    explore(config, || {
        let pool = ThreadPool::new(2);
        let out = pool.map(&[10usize, 20, 30], |i, &x| {
            conckit::thread::yield_now();
            x + i
        });
        assert_eq!(out, vec![10, 21, 32], "map order is schedule-dependent");
    })
}

/// A panicking task is contained: the panic surfaces from `scope`, the
/// other tasks still ran, and the pool (and its deques) stay usable.
pub fn pool_panic_containment(config: &Config) -> Report {
    explore(config, || {
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(|| panic!("seeded task panic"));
            });
        }));
        assert!(result.is_err(), "the task panic must cross the scope");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "sibling task was lost");
        // Neither the deques nor the scope latch are poisoned: the same
        // pool still completes fresh work.
        let out = pool.map(&[1u32, 2], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4], "pool wedged after a task panic");
    })
}

/// Dropping the pool quiesces from every reachable state: workers parked
/// on the wakeup condvar, mid-steal, or mid-task all observe shutdown
/// and join. A lost shutdown wakeup would deadlock here.
pub fn pool_shutdown_quiesces(config: &Config) -> Report {
    explore(config, || {
        let pool = ThreadPool::new(2);
        let n = AtomicUsize::new(0);
        pool.scope(|s| {
            let n = &n;
            s.spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        });
        drop(pool);
        assert_eq!(n.load(Ordering::Relaxed), 1);
    })
}

/// Owner LIFO / thief FIFO discipline on one deque under a concurrent
/// thief: whatever the interleaving, the thief takes from the old end,
/// the owner from the new end, and each task is taken exactly once.
pub fn deque_discipline(config: &Config) -> Report {
    explore(config, || {
        let deque = Arc::new(WorkerDeque::default());
        let taken: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let push = |tag: &'static str| {
            let taken = taken.clone();
            Box::new(move || {
                if let Ok(mut t) = taken.lock() {
                    t.push(tag);
                }
            }) as crate::pool::Task
        };
        deque.push(push("old"));
        deque.push(push("mid"));
        deque.push(push("new"));
        let thief = {
            let deque = deque.clone();
            conckit::thread::spawn(move || {
                if let Some(t) = deque.steal() {
                    t();
                }
            })
        };
        // Owner pops the newest item.
        if let Some(t) = deque.pop() {
            t();
        }
        let _ = thief.join();
        let log = taken.lock().map(|t| t.clone()).unwrap_or_default();
        assert_eq!(log.len(), 2, "a task was lost or run twice: {log:?}");
        assert!(
            log.contains(&"new"),
            "owner must take the LIFO end: {log:?}"
        );
        assert!(
            log.contains(&"old"),
            "thief must take the FIFO end: {log:?}"
        );
        assert_eq!(deque.len(), 1, "exactly one task should remain");
    })
}

/// Concurrent `get`/`insert` on a bounded [`ShardedMap`] never observes
/// a torn value and never exceeds the capacity bound, under every
/// interleaving — the property the verdict memo-cache stakes artifact
/// byte-identity on.
pub fn sharded_map_consistency(config: &Config) -> Report {
    explore(config, || {
        // One shard of capacity 1 maximizes collision and eviction
        // pressure; values are (v, 2v) pairs so tearing is detectable.
        let map: Arc<ShardedMap<u8, (u32, u32)>> = Arc::new(ShardedMap::new(1, Some(1)));
        let writer = {
            let map = map.clone();
            conckit::thread::spawn(move || {
                map.insert(1, (10, 20));
            })
        };
        map.insert(2, (7, 14));
        if let Some((a, b)) = map.get(&1) {
            assert_eq!((a, b), (10, 20), "torn read");
        }
        if let Some((a, b)) = map.get(&2) {
            assert_eq!((a, b), (7, 14), "torn read");
        }
        let _ = writer.join();
        assert!(map.len() <= 1, "capacity bound violated: {}", map.len());
        // The surviving entry is whichever insert the schedule ordered
        // last; it must be intact either way.
        let survivor = map.get(&1).or_else(|| map.get(&2));
        match survivor {
            Some(v) => assert!(v == (10, 20) || v == (7, 14), "torn survivor {v:?}"),
            None => panic!("both entries vanished from a capacity-1 map"),
        }
    })
}

/// The LRU touch path under contention: a concurrent `get` (which
/// relinks the entry to the recency-list front) racing a fresh insert
/// that must evict the current LRU tail. Under every interleaving the
/// list and map stay consistent: the capacity bound holds, values are
/// untorn, the new key always lands, and the survivor set is one of the
/// two orders the race admits.
pub fn sharded_map_lru_touch(config: &Config) -> Report {
    explore(config, || {
        // One shard of capacity 2, pre-seeded serially: recency order is
        // [2 (MRU), 1 (LRU)].
        let map: Arc<ShardedMap<u8, (u32, u32)>> = Arc::new(ShardedMap::new(1, Some(2)));
        map.insert(1, (10, 20));
        map.insert(2, (7, 14));
        let toucher = {
            let map = map.clone();
            conckit::thread::spawn(move || {
                // Touch 1. Before the insert: 1 becomes MRU and the
                // insert evicts 2. After the eviction of 1: a miss.
                if let Some(v) = map.get(&1) {
                    assert_eq!(v, (10, 20), "torn read");
                }
            })
        };
        map.insert(3, (5, 15));
        let _ = toucher.join();
        assert!(map.len() <= 2, "capacity bound violated: {}", map.len());
        let v3 = map.get(&3);
        assert_eq!(v3, Some((5, 15)), "the fresh insert must survive");
        let survived_1 = map.get(&1).inspect(|v| assert_eq!(*v, (10, 20)));
        let survived_2 = map.get(&2).inspect(|v| assert_eq!(*v, (7, 14)));
        // Exactly one of the seeds survives: 1 if the touch won the
        // race (2 was the LRU victim), 2 if the insert did.
        assert!(
            survived_1.is_some() != survived_2.is_some(),
            "survivors {survived_1:?}/{survived_2:?} admit no serial order"
        );
    })
}

/// One model: a closed concurrent scenario explored under a [`Config`].
pub type Model = fn(&Config) -> Report;

/// All models with their names, in a stable order — shared by the test
/// suite and the `conc_check` CI gate.
pub fn all() -> Vec<(&'static str, Model)> {
    vec![
        ("pool_no_task_lost", pool_no_task_lost),
        ("pool_map_order", pool_map_order),
        ("pool_panic_containment", pool_panic_containment),
        ("pool_shutdown_quiesces", pool_shutdown_quiesces),
        ("deque_discipline", deque_discipline),
        ("sharded_map_consistency", sharded_map_consistency),
        ("sharded_map_lru_touch", sharded_map_lru_touch),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::with_bound(2)
    }

    #[test]
    fn model_pool_no_task_lost() {
        pool_no_task_lost(&config()).assert_ok();
    }

    #[test]
    fn model_pool_map_order() {
        pool_map_order(&config()).assert_ok();
    }

    #[test]
    fn model_pool_panic_containment() {
        pool_panic_containment(&config()).assert_ok();
    }

    #[test]
    fn model_pool_shutdown_quiesces() {
        pool_shutdown_quiesces(&config()).assert_ok();
    }

    #[test]
    fn model_deque_discipline() {
        let report = deque_discipline(&config());
        report.assert_ok();
        assert!(report.schedules >= 2, "expected real branching");
    }

    #[test]
    fn model_sharded_map_consistency() {
        let report = sharded_map_consistency(&config());
        report.assert_ok();
        assert!(report.schedules >= 2, "expected real branching");
    }

    #[test]
    fn model_sharded_map_lru_touch() {
        let report = sharded_map_lru_touch(&config());
        report.assert_ok();
        assert!(report.schedules >= 2, "expected real branching");
    }
}
