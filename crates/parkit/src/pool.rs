//! The work-stealing pool: workers, injector, scopes and the
//! deterministic `map` join.

use crate::deque::WorkerDeque;
use conckit::sync::atomic::{AtomicUsize, Ordering};
use conckit::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A unit of work queued on the pool. Lifetimes are erased by
/// [`Scope::spawn`]; the scope's completion latch guarantees every task
/// has finished before the borrows it captured go out of scope.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Resolves a requested thread count to an effective one:
///
/// 1. an explicit `requested > 0` wins;
/// 2. else the `PARKIT_THREADS` environment variable, if set and positive;
/// 3. else [`std::thread::available_parallelism`] (1 if unknown).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("PARKIT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    conckit::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Wake/shutdown state shared between the pool handle and its workers.
struct PoolSync {
    /// Bumped on every push; sleeping workers recheck when it moves.
    generation: u64,
    /// Set by `Drop`; workers drain their queues and exit.
    shutdown: bool,
}

struct Shared {
    /// Tasks spawned from outside the pool's worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker thread.
    workers: Vec<WorkerDeque>,
    sync: Mutex<PoolSync>,
    cv: Condvar,
    /// Process-unique pool id, so nested pools never confuse the
    /// thread-local "which worker am I" marker.
    id: usize,
}

fn lock_sync(shared: &Shared) -> MutexGuard<'_, PoolSync> {
    match shared.sync.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_injector(shared: &Shared) -> MutexGuard<'_, VecDeque<Task>> {
    match shared.injector.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// `(pool id, worker index)` while running on a pool worker thread.
    static CURRENT_WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

impl Shared {
    /// Queues a task: onto the current worker's own deque when called
    /// from inside this pool (work stays local, thieves balance it),
    /// onto the global injector otherwise.
    fn push(&self, task: Task) {
        let local = CURRENT_WORKER
            .with(|c| c.get())
            .and_then(|(pool, idx)| (pool == self.id).then(|| &self.workers[idx]));
        match local {
            Some(deque) => deque.push(task),
            None => lock_injector(self).push_back(task),
        }
        let mut sync = lock_sync(self);
        sync.generation = sync.generation.wrapping_add(1);
        drop(sync);
        self.cv.notify_all();
    }

    /// Finds one runnable task: own deque first (LIFO), then the
    /// injector, then steals from the other workers (FIFO). `me` is the
    /// calling worker's index, or `None` for a caller helping from
    /// outside the pool.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(idx) = me {
            if let Some(t) = self.workers[idx].pop() {
                return Some(t);
            }
        }
        if let Some(t) = lock_injector(self).pop_front() {
            return Some(t);
        }
        // Steal sweep, starting just past our own slot so contending
        // thieves fan out instead of hammering worker 0.
        let n = self.workers.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.workers[victim].steal() {
                obskit::counter_add("pool.steals", 1);
                return Some(t);
            }
        }
        None
    }

    /// Total queued tasks across injector and worker deques (racy
    /// snapshot; used only to decide whether to sleep).
    fn queued(&self) -> usize {
        lock_injector(self).len() + self.workers.iter().map(WorkerDeque::len).sum::<usize>()
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((shared.id, idx))));
    obskit::set_thread_name(&format!("parkit-worker-{idx}"));
    loop {
        if let Some(task) = shared.find_task(Some(idx)) {
            task();
            continue;
        }
        let mut sync = lock_sync(&shared);
        if sync.shutdown {
            // Drain-before-exit: only stop once nothing is queued.
            if shared.queued() == 0 {
                return;
            }
            continue;
        }
        let gen = sync.generation;
        if shared.queued() == 0 {
            // Recheck under a timeout: a push between `find_task` and
            // the lock bumps `generation`, so we never sleep through it.
            if sync.generation == gen {
                let (guard, _timeout) =
                    match shared.cv.wait_timeout(sync, Duration::from_millis(20)) {
                        Ok(r) => r,
                        Err(poisoned) => {
                            let (g, t) = poisoned.into_inner();
                            (g, t)
                        }
                    };
                sync = guard;
            }
        }
        drop(sync);
    }
}

/// A fixed-size work-stealing thread pool.
///
/// `threads` is the pool's parallelism: `threads - 1` background workers
/// plus the calling thread, which always helps execute tasks while it
/// waits inside [`ThreadPool::scope`] or [`ThreadPool::map`]. A pool of
/// one thread therefore spawns no workers at all and runs every task
/// inline on the caller, in spawn order — the degenerate case the
/// determinism contract is anchored to.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<conckit::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

impl ThreadPool {
    /// Creates a pool with exactly `threads` threads of parallelism
    /// (counting the caller; see the type docs). `threads` of 0 is
    /// treated as 1.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            workers: (0..workers).map(|_| WorkerDeque::default()).collect(),
            sync: Mutex::new(PoolSync {
                generation: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = shared.clone();
                conckit::thread::Builder::new()
                    .name(format!("parkit-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .unwrap_or_else(|e| panic!("spawning parkit worker {idx} failed: {e}"))
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// [`ThreadPool::new`] over [`resolve_threads`]\(`requested`\):
    /// explicit request, else `PARKIT_THREADS`, else the machine.
    pub fn with_threads(requested: usize) -> ThreadPool {
        ThreadPool::new(resolve_threads(requested))
    }

    /// The pool's parallelism (workers + the helping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing from the
    /// enclosing stack frame can be spawned. Does not return until every
    /// spawned task has finished — that wait is what makes the borrow
    /// erasure in [`Scope::spawn`] sound. The caller helps execute tasks
    /// while it waits.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from a spawned task (after all tasks
    /// have completed), or the panic of `f` itself.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                done: Condvar::new(),
                done_lock: Mutex::new(()),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help until every spawned task is done — even when `f`
        // panicked, queued tasks still hold borrows into 'env.
        self.help_until_done(&scope.state);
        if let Some(payload) = take_panic(&scope.state) {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Applies `f` to every item and returns the results **in item
    /// order**, regardless of which thread computed what — the
    /// deterministic join the pipeline's reproducibility contract relies
    /// on. Single-thread pools (and single-item inputs) take a serial
    /// fast path that is exactly the sequential loop.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from any invocation of `f`.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        obskit::counter_add("pool.tasks", items.len() as u64);
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (i, item) in items.iter().enumerate() {
                let slots = &slots;
                let f = &f;
                s.spawn(move || {
                    let value = f(i, item);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(value);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let value = match slot.into_inner() {
                    Ok(v) => v,
                    Err(poisoned) => poisoned.into_inner(),
                };
                value.unwrap_or_else(|| panic!("map slot {i} never filled"))
            })
            .collect()
    }

    fn help_until_done(&self, state: &ScopeState) {
        while state.pending.load(Ordering::Acquire) != 0 {
            if let Some(task) = self.shared.find_task(current_index(&self.shared)) {
                task();
                continue;
            }
            // Nothing runnable here: tasks are in flight on workers.
            // Park briefly on the scope's latch; the last task notifies.
            let guard = match state.done_lock.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let _ = state.done.wait_timeout(guard, Duration::from_millis(5));
        }
    }
}

/// The calling thread's worker index in `shared`'s pool, if it is one of
/// that pool's workers (nested scopes run their waits on worker threads).
fn current_index(shared: &Shared) -> Option<usize> {
    CURRENT_WORKER
        .with(|c| c.get())
        .and_then(|(pool, idx)| (pool == shared.id).then_some(idx))
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut sync = lock_sync(&self.shared);
            sync.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion latch + first-panic slot for one scope.
struct ScopeState {
    pending: AtomicUsize,
    done: Condvar,
    done_lock: Mutex<()>,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

fn take_panic(state: &ScopeState) -> Option<Box<dyn Any + Send + 'static>> {
    match state.panic.lock() {
        Ok(mut p) => p.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    }
}

/// A spawn handle tied to an enclosing [`ThreadPool::scope`] call.
/// Spawned closures may borrow anything that outlives the scope
/// (`'env`); the scope blocks until they all finish.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns `f` onto the pool. Runs on any pool thread (or on the
    /// caller while it helps); panics are captured and re-raised by the
    /// enclosing [`ThreadPool::scope`] once every task has completed.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        obskit::counter_add("pool.tasks", 1);
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = self.state.clone();
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = match state.panic.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                slot.get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task out: wake the scope owner.
                let _guard = match state.done_lock.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                state.done.notify_all();
            }
        });
        // SAFETY: `task` may borrow data of lifetime 'env. The enclosing
        // `ThreadPool::scope` call does not return — by success, panic,
        // or a spawned task's panic — until `state.pending` has reached
        // zero, i.e. until this closure has run to completion (its
        // decrement is the last thing it does). The borrows therefore
        // never outlive the frames they point into, and the 'static
        // erasure is unobservable.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.shared.push(task);
    }
}
