//! A sharded, bounded, LRU concurrent map.
//!
//! The generic concurrency structure behind `dpo-af`'s verification
//! memo-cache, hoisted into parkit so the interleaving-sensitive part
//! can be model-checked with conckit alongside the pool it shares
//! traffic with. Keys hash to one of N shards, each a mutex around a
//! `HashMap` plus an intrusive recency list; contention is divided by N
//! and the critical sections are single map operations.
//!
//! **Bounded.** Each shard holds at most `ceil(capacity / shards)`
//! entries. Inserting a fresh key into a full shard evicts that shard's
//! least-recently-used entry. Recency is tracked with a slab-backed
//! doubly-linked list (slot indices, not pointers): `get`, `insert`,
//! touch and evict are all O(1), and a hit moves its entry to the front
//! inside the same lock the lookup already holds, so LRU costs nothing
//! over the FIFO it replaced while keeping hot verdicts resident under
//! a working set that no longer fits the bound. An unbounded map in a
//! long-running service is a slow leak; the bound turns it into a plain
//! working set.
//!
//! Eviction never changes *values*: a `get` after an eviction is a miss
//! that recomputes, so a bounded cache must produce byte-identical
//! downstream artifacts — the pipeline asserts exactly that.

use conckit::sync::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// What an [`ShardedMap::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The key was not present (an overwrite of an existing key is not
    /// fresh and can never evict).
    pub fresh: bool,
    /// A fresh insert displaced the shard's least-recently-used entry.
    pub evicted: bool,
}

/// Sentinel slot index terminating the recency list.
const NIL: usize = usize::MAX;

/// One resident entry: the key/value plus its recency-list links.
struct Entry<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

struct Shard<K, V> {
    /// Key → slot index into `slots`.
    map: HashMap<K, usize>,
    /// Slab of entries; linked through `prev`/`next` in recency order.
    slots: Vec<Entry<K, V>>,
    /// Slot indices freed by eviction, reused before growing the slab.
    free: Vec<usize>,
    /// Most-recently-used slot (`NIL` when empty).
    head: usize,
    /// Least-recently-used slot (`NIL` when empty) — the eviction victim.
    tail: usize,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Detaches slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links slot `i` at the front (most-recently-used end).
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    /// Marks slot `i` as most recently used.
    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }
}

/// A sharded hash map with per-shard LRU eviction. See the module docs.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard entry bound (`None` = unbounded).
    per_shard: Option<usize>,
}

impl<K, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// Creates a map with `shards` shards (0 is treated as 1) holding at
    /// most `capacity` entries in total (`None` = unbounded). The bound
    /// is split evenly, rounding up, so the effective total can exceed
    /// `capacity` by at most `shards - 1`.
    pub fn new(shards: usize, capacity: Option<usize>) -> ShardedMap<K, V> {
        let shards = shards.max(1);
        let per_shard = capacity.map(|c| c.div_ceil(shards).max(1));
        ShardedMap {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard,
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        // DefaultHasher with the default keys is deterministic within a
        // process, which is all shard routing needs.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns a clone of the value for `key`, if present, marking the
    /// entry most recently used (the touch happens inside the lock the
    /// lookup already holds).
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = match self.shard_of(key).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let i = *shard.map.get(key)?;
        shard.touch(i);
        Some(shard.slots[i].val.clone())
    }

    /// Inserts `key -> value`, evicting the shard's least-recently-used
    /// entry when a fresh key lands in a full shard. Both fresh inserts
    /// and overwrites mark the key most recently used.
    pub fn insert(&self, key: K, value: V) -> InsertOutcome {
        let mut shard = match self.shard_of(&key).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let shard = &mut *shard;
        if let Some(&i) = shard.map.get(&key) {
            shard.slots[i].val = value;
            shard.touch(i);
            return InsertOutcome {
                fresh: false,
                evicted: false,
            };
        }
        let entry = Entry {
            key: key.clone(),
            val: value,
            prev: NIL,
            next: NIL,
        };
        let i = match shard.free.pop() {
            Some(i) => {
                shard.slots[i] = entry;
                i
            }
            None => {
                shard.slots.push(entry);
                shard.slots.len() - 1
            }
        };
        shard.push_front(i);
        shard.map.insert(key, i);
        let evicted = match self.per_shard {
            Some(cap) if shard.map.len() > cap => {
                // Over the bound the shard holds ≥ 2 entries, so the
                // tail is a real slot and (being over-capacity by
                // exactly one fresh insert at the head) never the key
                // just inserted.
                let t = shard.tail;
                shard.unlink(t);
                shard.map.remove(&shard.slots[t].key);
                shard.free.push(t);
                true
            }
            _ => false,
        };
        InsertOutcome {
            fresh: true,
            evicted,
        }
    }

    /// Live entries across all shards (racy snapshot).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                match s.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                }
                .map
                .len()
            })
            .sum()
    }

    /// Whether the map holds no entries (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_overwrite() {
        let m: ShardedMap<String, u32> = ShardedMap::new(4, None);
        assert!(m.is_empty());
        assert_eq!(m.get(&"a".to_owned()), None);
        assert_eq!(
            m.insert("a".to_owned(), 1),
            InsertOutcome {
                fresh: true,
                evicted: false
            }
        );
        assert_eq!(
            m.insert("a".to_owned(), 2),
            InsertOutcome {
                fresh: false,
                evicted: false
            }
        );
        assert_eq!(m.get(&"a".to_owned()), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_bounds_every_shard() {
        // One shard so the arithmetic is exact.
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(3));
        for k in 0..10 {
            m.insert(k, k * 10);
        }
        assert_eq!(m.len(), 3);
        // Insert-only traffic degrades LRU to FIFO: the three newest
        // survive.
        for k in 7..10 {
            assert_eq!(m.get(&k), Some(k * 10), "key {k}");
        }
        for k in 0..7 {
            assert_eq!(m.get(&k), None, "key {k}");
        }
    }

    #[test]
    fn eviction_reported_per_insert() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(2));
        assert!(!m.insert(1, 1).evicted);
        assert!(!m.insert(2, 2).evicted);
        let out = m.insert(3, 3);
        assert!(out.fresh && out.evicted);
        // Overwrites never evict, even at capacity.
        let out = m.insert(3, 30);
        assert!(!out.fresh && !out.evicted);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn get_touches_recency() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(2));
        m.insert(1, 10);
        m.insert(2, 20);
        // Touch key 1: key 2 becomes the LRU victim.
        assert_eq!(m.get(&1), Some(10));
        assert!(m.insert(3, 30).evicted);
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&3), Some(30));
    }

    #[test]
    fn overwrite_touches_recency() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(2));
        m.insert(1, 10);
        m.insert(2, 20);
        // Overwriting key 1 refreshes it: key 2 becomes the victim.
        m.insert(1, 11);
        assert!(m.insert(3, 30).evicted);
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.get(&2), None);
    }

    #[test]
    fn evicted_slots_are_reused() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(2));
        for k in 0..100 {
            m.insert(k, k);
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&99), Some(99));
        assert_eq!(m.get(&98), Some(98));
    }

    #[test]
    fn sharded_capacity_rounds_up() {
        // 4 shards, capacity 6 -> 2 per shard; total never exceeds 8.
        let m: ShardedMap<u64, u64> = ShardedMap::new(4, Some(6));
        for k in 0..100 {
            m.insert(k, k);
        }
        assert!(m.len() <= 8, "len {}", m.len());
    }

    #[test]
    fn unbounded_never_evicts() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(8, None);
        for k in 0..1000 {
            assert!(!m.insert(k, k).evicted);
        }
        assert_eq!(m.len(), 1000);
    }

    /// Long mixed workloads keep the linked list and map consistent.
    #[test]
    fn mixed_workload_stays_consistent() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(2, Some(6));
        for round in 0..50u64 {
            for k in 0..10 {
                if (round + k) % 3 == 0 {
                    let _ = m.get(&k);
                } else {
                    m.insert(k, round * 100 + k);
                }
            }
            assert!(m.len() <= 8, "len {} round {round}", m.len());
        }
        // Every resident key returns the value of its last insert.
        for k in 0..10 {
            if let Some(v) = m.get(&k) {
                assert_eq!(v % 100, k);
            }
        }
    }
}
