//! A sharded, bounded, insertion-ordered concurrent map.
//!
//! The generic concurrency structure behind `dpo-af`'s verification
//! memo-cache, hoisted into parkit so the interleaving-sensitive part
//! can be model-checked with conckit alongside the pool it shares
//! traffic with. Keys hash to one of N shards, each a mutex around a
//! `HashMap` plus an insertion-order queue; contention is divided by N
//! and the critical sections are single map operations.
//!
//! **Bounded.** Each shard holds at most `ceil(capacity / shards)`
//! entries. Inserting a fresh key into a full shard evicts that shard's
//! oldest entry first — FIFO, not LRU: order maintenance is O(1) and
//! deterministic (no read-reordering races), and for memoized verifier
//! verdicts every entry is uniformly cheap to recompute, so recency
//! tracking buys little. An unbounded map in a long-running service is
//! a slow leak; the bound turns it into a plain working set.
//!
//! Eviction never changes *values*: a `get` after an eviction is a miss
//! that recomputes, so a bounded cache must produce byte-identical
//! downstream artifacts — the pipeline asserts exactly that.

use conckit::sync::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// What an [`ShardedMap::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The key was not present (an overwrite of an existing key is not
    /// fresh and can never evict).
    pub fresh: bool,
    /// A fresh insert displaced the shard's oldest entry.
    pub evicted: bool,
}

struct Shard<K, V> {
    map: HashMap<K, V>,
    /// Insertion order of live keys, oldest at the front.
    order: VecDeque<K>,
}

/// A sharded hash map with per-shard FIFO eviction. See the module docs.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard entry bound (`None` = unbounded).
    per_shard: Option<usize>,
}

impl<K, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// Creates a map with `shards` shards (0 is treated as 1) holding at
    /// most `capacity` entries in total (`None` = unbounded). The bound
    /// is split evenly, rounding up, so the effective total can exceed
    /// `capacity` by at most `shards - 1`.
    pub fn new(shards: usize, capacity: Option<usize>) -> ShardedMap<K, V> {
        let shards = shards.max(1);
        let per_shard = capacity.map(|c| c.div_ceil(shards).max(1));
        ShardedMap {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard,
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        // DefaultHasher with the default keys is deterministic within a
        // process, which is all shard routing needs.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns a clone of the value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = match self.shard_of(key).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.map.get(key).cloned()
    }

    /// Inserts `key -> value`, evicting the shard's oldest entry when a
    /// fresh key lands in a full shard. Overwriting an existing key
    /// keeps its original insertion-order position.
    pub fn insert(&self, key: K, value: V) -> InsertOutcome {
        let mut shard = match self.shard_of(&key).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if shard.map.insert(key.clone(), value).is_some() {
            return InsertOutcome {
                fresh: false,
                evicted: false,
            };
        }
        shard.order.push_back(key);
        let evicted = match self.per_shard {
            Some(cap) if shard.order.len() > cap => match shard.order.pop_front() {
                Some(oldest) => {
                    shard.map.remove(&oldest);
                    true
                }
                None => false,
            },
            _ => false,
        };
        InsertOutcome {
            fresh: true,
            evicted,
        }
    }

    /// Live entries across all shards (racy snapshot).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                match s.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                }
                .map
                .len()
            })
            .sum()
    }

    /// Whether the map holds no entries (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_overwrite() {
        let m: ShardedMap<String, u32> = ShardedMap::new(4, None);
        assert!(m.is_empty());
        assert_eq!(m.get(&"a".to_owned()), None);
        assert_eq!(
            m.insert("a".to_owned(), 1),
            InsertOutcome {
                fresh: true,
                evicted: false
            }
        );
        assert_eq!(
            m.insert("a".to_owned(), 2),
            InsertOutcome {
                fresh: false,
                evicted: false
            }
        );
        assert_eq!(m.get(&"a".to_owned()), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_bounds_every_shard() {
        // One shard so the arithmetic is exact.
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(3));
        for k in 0..10 {
            m.insert(k, k * 10);
        }
        assert_eq!(m.len(), 3);
        // FIFO: the three newest survive.
        for k in 7..10 {
            assert_eq!(m.get(&k), Some(k * 10), "key {k}");
        }
        for k in 0..7 {
            assert_eq!(m.get(&k), None, "key {k}");
        }
    }

    #[test]
    fn eviction_reported_per_insert() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(1, Some(2));
        assert!(!m.insert(1, 1).evicted);
        assert!(!m.insert(2, 2).evicted);
        let out = m.insert(3, 3);
        assert!(out.fresh && out.evicted);
        // Overwrites never evict, even at capacity.
        let out = m.insert(3, 30);
        assert!(!out.fresh && !out.evicted);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn sharded_capacity_rounds_up() {
        // 4 shards, capacity 6 -> 2 per shard; total never exceeds 8.
        let m: ShardedMap<u64, u64> = ShardedMap::new(4, Some(6));
        for k in 0..100 {
            m.insert(k, k);
        }
        assert!(m.len() <= 8, "len {}", m.len());
    }

    #[test]
    fn unbounded_never_evicts() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(8, None);
        for k in 0..1000 {
            assert!(!m.insert(k, k).evicted);
        }
        assert_eq!(m.len(), 1000);
    }
}
