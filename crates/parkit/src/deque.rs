//! Per-worker work-stealing deques.
//!
//! Each worker owns one deque and follows the Chase–Lev discipline: the
//! owner pushes and pops at the *bottom* (LIFO, so freshly spawned
//! subtasks stay cache-hot), thieves steal from the *top* (FIFO, so they
//! take the oldest — usually largest — pending unit of work). The
//! original Chase–Lev structure is a lock-free growable ring; this
//! workspace is zero-dependency and its parallel sections are coarse
//! (one task ≈ one formal-verification pass, ~milliseconds), so a short
//! critical section around a `VecDeque` gives the same scheduling
//! behavior with none of the unsafe memory-reclamation machinery. The
//! mutex is never held while a task runs.

use crate::pool::Task;
use conckit::sync::{Mutex, MutexGuard};
use std::collections::VecDeque;

/// One worker's deque. Owner operates on the bottom, thieves on the top.
#[derive(Default)]
pub(crate) struct WorkerDeque {
    inner: Mutex<VecDeque<Task>>,
}

/// Locks a deque, recovering from a poisoned mutex: the queue itself is
/// always in a consistent state (push/pop are single operations), so a
/// panicking task on another thread must not wedge the whole pool.
fn lock(inner: &Mutex<VecDeque<Task>>) -> MutexGuard<'_, VecDeque<Task>> {
    match inner.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl WorkerDeque {
    /// Owner push: bottom of the deque.
    pub(crate) fn push(&self, task: Task) {
        lock(&self.inner).push_back(task);
    }

    /// Owner pop: bottom of the deque (LIFO — newest first).
    pub(crate) fn pop(&self) -> Option<Task> {
        lock(&self.inner).pop_back()
    }

    /// Thief steal: top of the deque (FIFO — oldest first).
    pub(crate) fn steal(&self) -> Option<Task> {
        lock(&self.inner).pop_front()
    }

    /// Number of queued tasks (snapshot; may be stale immediately).
    pub(crate) fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

#[cfg(test)]
mod tests {
    // ALLOW: test-only panics are the assertion mechanism.
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn boxed(v: &std::sync::Arc<std::sync::Mutex<Vec<u32>>>, n: u32) -> Task {
        let v = v.clone();
        Box::new(move || {
            if let Ok(mut v) = v.lock() {
                v.push(n);
            }
        })
    }

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let d = WorkerDeque::default();
        d.push(boxed(&log, 1));
        d.push(boxed(&log, 2));
        d.push(boxed(&log, 3));
        assert_eq!(d.len(), 3);

        // A thief takes the oldest task; the owner the newest.
        let stolen = d.steal().expect("non-empty");
        let popped = d.pop().expect("non-empty");
        stolen();
        popped();
        let order = log.lock().expect("log lock").clone();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(d.len(), 1);
    }

    /// A panic while holding the deque mutex (never possible from task
    /// code, but conceivable from an allocator or instrumentation hook)
    /// poisons it; `lock` recovers because push/pop leave the queue
    /// consistent at every panic point.
    #[test]
    fn recovers_from_poisoned_mutex() {
        let d = std::sync::Arc::new(WorkerDeque::default());
        d.push(Box::new(|| {}));
        let d2 = d.clone();
        let result = std::thread::spawn(move || {
            let _guard = d2.inner.lock();
            panic!("poison the deque mutex");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must panic");
        // Every deque operation still works on the poisoned mutex.
        d.push(Box::new(|| {}));
        assert_eq!(d.len(), 2);
        assert!(d.steal().is_some());
        assert!(d.pop().is_some());
        assert!(d.pop().is_none());
    }
}
