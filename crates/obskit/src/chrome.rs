//! Chrome `trace_event` export.
//!
//! Renders a snapshot's spans and events in the Trace Event Format
//! accepted by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! each span becomes a complete (`"ph": "X"`) event with microsecond
//! timestamps, each structured event an instant (`"ph": "i"`) with its
//! fields attached under `args`, and each flight-recorder sample a set
//! of counter (`"ph": "C"`) points — one track per counter/gauge name,
//! so cache hit-rate and tokens/sec are visible *evolving over time*
//! alongside the span rows.

use crate::event::Event;
use crate::json::Value;
use crate::recorder::FlightSample;
use crate::span::SpanRecord;

/// Renders spans and events as a Trace Event Format JSON document.
pub fn chrome_trace(spans: &[SpanRecord], events: &[Event]) -> String {
    chrome_trace_named(spans, events, &[])
}

/// [`chrome_trace`] with per-thread track labels: each `(tid, name)`
/// pair becomes a `thread_name` metadata record, so pool workers show up
/// as e.g. `parkit-worker-2` instead of a bare tid.
pub fn chrome_trace_named(
    spans: &[SpanRecord],
    events: &[Event],
    thread_names: &[(u64, String)],
) -> String {
    chrome_trace_full(spans, events, thread_names, &[], None)
}

/// The full exporter: [`chrome_trace_named`] plus counter tracks built
/// from flight-recorder samples and a `process_name` metadata record
/// (named parkit workers already arrive via `thread_names`).
pub fn chrome_trace_full(
    spans: &[SpanRecord],
    events: &[Event],
    thread_names: &[(u64, String)],
    samples: &[FlightSample],
    process_name: Option<&str>,
) -> String {
    let mut trace_events: Vec<Value> =
        Vec::with_capacity(spans.len() + events.len() + thread_names.len() + 1);
    if let Some(name) = process_name {
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str("process_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(0.0)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::Str(name.to_owned()))]),
            ),
        ]));
    }
    for (tid, name) in thread_names {
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(*tid as f64)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::Str(name.clone()))]),
            ),
        ]));
    }
    for span in spans {
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str(span.name.clone())),
            ("cat".into(), Value::Str("span".into())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::Num(span.start_us as f64)),
            ("dur".into(), Value::Num(span.dur_us as f64)),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(span.thread as f64)),
        ]));
    }
    for event in events {
        let args: Vec<(String, Value)> = event
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str(event.name.clone())),
            ("cat".into(), Value::Str("event".into())),
            ("ph".into(), Value::Str("i".into())),
            // Thread-scoped instant marker.
            ("s".into(), Value::Str("t".into())),
            ("ts".into(), Value::Num(event.t_us as f64)),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(event.thread as f64)),
            ("args".into(), Value::Obj(args)),
        ]));
    }
    // One counter ("ph": "C") point per metric per flight sample.
    // Perfetto groups points sharing a name into a single track, so
    // each counter/gauge renders as a stepped time series.
    for sample in samples {
        for (name, v) in &sample.counters {
            trace_events.push(counter_point(name, sample.t_us, *v as f64));
        }
        for (name, v) in &sample.gauges {
            trace_events.push(counter_point(name, sample.t_us, *v));
        }
    }
    Value::Obj(vec![
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        ("traceEvents".into(), Value::Arr(trace_events)),
    ])
    .to_json()
}

fn counter_point(name: &str, t_us: u64, value: f64) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str(name.to_owned())),
        ("cat".into(), Value::Str("metric".into())),
        ("ph".into(), Value::Str("C".into())),
        ("ts".into(), Value::Num(t_us as f64)),
        ("pid".into(), Value::Num(1.0)),
        (
            "args".into(),
            Value::Obj(vec![("value".into(), Value::Num(value))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;
    use crate::json;

    #[test]
    fn trace_is_valid_json_with_one_entry_per_span_and_event() {
        let spans = vec![
            SpanRecord {
                name: "pipeline.verify".into(),
                start_us: 100,
                dur_us: 50,
                parent: None,
                thread: 3,
                depth: 0,
                alloc_count: 0,
                alloc_bytes: 0,
            },
            SpanRecord {
                name: "pipeline.parse".into(),
                start_us: 160,
                dur_us: 5,
                parent: None,
                thread: 3,
                depth: 0,
                alloc_count: 0,
                alloc_bytes: 0,
            },
        ];
        let events = vec![Event {
            name: "progress".into(),
            t_us: 170,
            thread: 3,
            fields: vec![("msg".into(), FieldValue::Str("hi \"there\"".into()))],
        }];
        let rendered = chrome_trace(&spans, &events);
        let doc = json::parse(&rendered).expect("chrome trace parses");
        let entries = doc
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries[0].get("ph").and_then(json::Value::as_str),
            Some("X")
        );
        assert_eq!(
            entries[0].get("ts").and_then(json::Value::as_num),
            Some(100.0)
        );
        assert_eq!(
            entries[0].get("dur").and_then(json::Value::as_num),
            Some(50.0)
        );
        assert_eq!(
            entries[2].get("ph").and_then(json::Value::as_str),
            Some("i")
        );
        assert_eq!(
            entries[2]
                .get("args")
                .and_then(|a| a.get("msg"))
                .and_then(json::Value::as_str),
            Some("hi \"there\"")
        );
    }

    #[test]
    fn full_trace_emits_process_name_and_counter_tracks() {
        let samples = vec![
            FlightSample {
                t_us: 1_000,
                counters: vec![("verify.cache_hits".into(), 4)],
                gauges: vec![("verify.cache_hit_rate".into(), 0.25)],
            },
            FlightSample {
                t_us: 2_000,
                counters: vec![("verify.cache_hits".into(), 9)],
                gauges: vec![("verify.cache_hit_rate".into(), 0.5)],
            },
        ];
        let rendered = chrome_trace_full(
            &[],
            &[],
            &[(7, "parkit-worker-0".into())],
            &samples,
            Some("bench_headline"),
        );
        let doc = json::parse(&rendered).expect("chrome trace parses");
        let entries = doc
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents array");
        // process_name + thread_name metadata, then 2 metrics × 2 samples.
        assert_eq!(entries.len(), 6);
        assert_eq!(
            entries[0].get("ph").and_then(json::Value::as_str),
            Some("M")
        );
        assert_eq!(
            entries[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(json::Value::as_str),
            Some("bench_headline")
        );
        let counters: Vec<&json::Value> = entries
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 4);
        assert_eq!(
            counters[0].get("name").and_then(json::Value::as_str),
            Some("verify.cache_hits")
        );
        assert_eq!(
            counters[1]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(json::Value::as_num),
            Some(0.25)
        );
    }
}
