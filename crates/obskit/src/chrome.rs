//! Chrome `trace_event` export.
//!
//! Renders a snapshot's spans and events in the Trace Event Format
//! accepted by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! each span becomes a complete (`"ph": "X"`) event with microsecond
//! timestamps, each structured event an instant (`"ph": "i"`) with its
//! fields attached under `args`.

use crate::event::Event;
use crate::json::Value;
use crate::span::SpanRecord;

/// Renders spans and events as a Trace Event Format JSON document.
pub fn chrome_trace(spans: &[SpanRecord], events: &[Event]) -> String {
    chrome_trace_named(spans, events, &[])
}

/// [`chrome_trace`] with per-thread track labels: each `(tid, name)`
/// pair becomes a `thread_name` metadata record, so pool workers show up
/// as e.g. `parkit-worker-2` instead of a bare tid.
pub fn chrome_trace_named(
    spans: &[SpanRecord],
    events: &[Event],
    thread_names: &[(u64, String)],
) -> String {
    let mut trace_events: Vec<Value> =
        Vec::with_capacity(spans.len() + events.len() + thread_names.len());
    for (tid, name) in thread_names {
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(*tid as f64)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::Str(name.clone()))]),
            ),
        ]));
    }
    for span in spans {
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str(span.name.clone())),
            ("cat".into(), Value::Str("span".into())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::Num(span.start_us as f64)),
            ("dur".into(), Value::Num(span.dur_us as f64)),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(span.thread as f64)),
        ]));
    }
    for event in events {
        let args: Vec<(String, Value)> = event
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        trace_events.push(Value::Obj(vec![
            ("name".into(), Value::Str(event.name.clone())),
            ("cat".into(), Value::Str("event".into())),
            ("ph".into(), Value::Str("i".into())),
            // Thread-scoped instant marker.
            ("s".into(), Value::Str("t".into())),
            ("ts".into(), Value::Num(event.t_us as f64)),
            ("pid".into(), Value::Num(1.0)),
            ("tid".into(), Value::Num(event.thread as f64)),
            ("args".into(), Value::Obj(args)),
        ]));
    }
    Value::Obj(vec![
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        ("traceEvents".into(), Value::Arr(trace_events)),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;
    use crate::json;

    #[test]
    fn trace_is_valid_json_with_one_entry_per_span_and_event() {
        let spans = vec![
            SpanRecord {
                name: "pipeline.verify".into(),
                start_us: 100,
                dur_us: 50,
                parent: None,
                thread: 3,
                depth: 0,
            },
            SpanRecord {
                name: "pipeline.parse".into(),
                start_us: 160,
                dur_us: 5,
                parent: None,
                thread: 3,
                depth: 0,
            },
        ];
        let events = vec![Event {
            name: "progress".into(),
            t_us: 170,
            thread: 3,
            fields: vec![("msg".into(), FieldValue::Str("hi \"there\"".into()))],
        }];
        let rendered = chrome_trace(&spans, &events);
        let doc = json::parse(&rendered).expect("chrome trace parses");
        let entries = doc
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries[0].get("ph").and_then(json::Value::as_str),
            Some("X")
        );
        assert_eq!(
            entries[0].get("ts").and_then(json::Value::as_num),
            Some(100.0)
        );
        assert_eq!(
            entries[0].get("dur").and_then(json::Value::as_num),
            Some(50.0)
        );
        assert_eq!(
            entries[2].get("ph").and_then(json::Value::as_str),
            Some("i")
        );
        assert_eq!(
            entries[2]
                .get("args")
                .and_then(|a| a.get("msg"))
                .and_then(json::Value::as_str),
            Some("hi \"there\"")
        );
    }
}
