//! The stable `BENCH_<name>.json` report schema and its validator.
//!
//! Every bench binary writes one of these via `--metrics-out`; CI, the
//! perf trajectory and the `bench_diff` regression gate consume them.
//! The schema is versioned through the `"schema"` marker — additive
//! changes keep the marker, anything that breaks a reader bumps it.
//! The current writer emits `obskit.bench.v2`; the validator still
//! accepts committed `obskit.bench.v1` baselines (v1 lacks the
//! histogram quantiles and the per-span allocation columns).
//!
//! ```json
//! {
//!   "schema": "obskit.bench.v2",
//!   "bench": "headline",
//!   "args": ["--fast"],
//!   "wall_ms": 1234.5,
//!   "counters": {"pipeline.pairs_formed": 96},
//!   "gauges": {"tinylm.pretrain_tokens_per_sec": 81234.0},
//!   "histograms": {
//!     "ltlcheck.lasso_len": {
//!       "count": 10, "sum": 55, "min": 2, "max": 9, "mean": 5.5,
//!       "p50": 5.0, "p90": 8.2, "p99": 9.0,
//!       "buckets": [{"lo": 2, "hi": 4, "count": 3}]
//!     }
//!   },
//!   "spans": [
//!     {"name": "pipeline.run", "count": 1, "total_ms": 1200.0,
//!      "max_ms": 1200.0, "self_ms": 10.0,
//!      "alloc_count": 420, "alloc_bytes": 1048576, "children": [...]}
//!   ]
//! }
//! ```

use crate::json::{self, Value};
use crate::metrics::MetricsSnapshot;
use crate::span::SpanNode;
use crate::Snapshot;

/// The schema marker the report writer currently emits.
pub const SCHEMA: &str = "obskit.bench.v2";

/// The previous schema marker; committed v1 baselines must keep
/// validating and diffing.
pub const SCHEMA_V1: &str = "obskit.bench.v1";

/// A complete bench report, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench name (`headline`, `fig9`, …).
    pub bench: String,
    /// Command-line arguments the run was invoked with.
    pub args: Vec<String>,
    /// Wall-clock milliseconds covered by the recorder.
    pub wall_ms: f64,
    /// Metric values at snapshot time.
    pub metrics: MetricsSnapshot,
    /// Aggregated span-timing forest.
    pub spans: Vec<SpanNode>,
}

impl BenchReport {
    /// Builds a report from a live snapshot.
    pub fn from_snapshot(bench: &str, args: &[String], snapshot: &Snapshot) -> BenchReport {
        BenchReport {
            bench: bench.to_owned(),
            args: args.to_vec(),
            wall_ms: snapshot.wall_ms,
            metrics: snapshot.metrics.clone(),
            spans: snapshot.spans.clone(),
        }
    }

    /// Serializes the report (pretty-printed, stable key order).
    pub fn to_json(&self) -> String {
        let counters = self
            .metrics
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
            .collect();
        let gauges = self
            .metrics
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v)))
            .collect();
        let histograms = self
            .metrics
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|b| {
                        Value::Obj(vec![
                            ("lo".into(), Value::Num(b.lo as f64)),
                            ("hi".into(), Value::Num(b.hi as f64)),
                            ("count".into(), Value::Num(b.count as f64)),
                        ])
                    })
                    .collect();
                let mut fields = vec![
                    ("count".into(), Value::Num(h.count as f64)),
                    ("sum".into(), Value::Num(h.sum as f64)),
                ];
                if let (Some(min), Some(max)) = (h.min, h.max) {
                    fields.push(("min".into(), Value::Num(min as f64)));
                    fields.push(("max".into(), Value::Num(max as f64)));
                }
                fields.push(("mean".into(), Value::Num(h.mean())));
                if let Some((p50, p90, p99)) = h.percentiles() {
                    fields.push(("p50".into(), Value::Num(p50)));
                    fields.push(("p90".into(), Value::Num(p90)));
                    fields.push(("p99".into(), Value::Num(p99)));
                }
                fields.push(("buckets".into(), Value::Arr(buckets)));
                (k.clone(), Value::Obj(fields))
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("bench".into(), Value::Str(self.bench.clone())),
            (
                "args".into(),
                Value::Arr(self.args.iter().map(|a| Value::Str(a.clone())).collect()),
            ),
            ("wall_ms".into(), Value::Num(self.wall_ms)),
            ("counters".into(), Value::Obj(counters)),
            ("gauges".into(), Value::Obj(gauges)),
            ("histograms".into(), Value::Obj(histograms)),
            (
                "spans".into(),
                Value::Arr(self.spans.iter().map(span_to_json).collect()),
            ),
        ])
        .to_json_pretty()
    }
}

fn span_to_json(node: &SpanNode) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str(node.name.clone())),
        ("count".into(), Value::Num(node.count as f64)),
        ("total_ms".into(), Value::Num(node.total_us as f64 / 1e3)),
        ("max_ms".into(), Value::Num(node.max_us as f64 / 1e3)),
        ("self_ms".into(), Value::Num(node.self_us() as f64 / 1e3)),
        ("alloc_count".into(), Value::Num(node.alloc_count as f64)),
        ("alloc_bytes".into(), Value::Num(node.alloc_bytes as f64)),
        (
            "children".into(),
            Value::Arr(node.children.iter().map(span_to_json).collect()),
        ),
    ])
}

/// What a report must additionally contain to pass validation.
#[derive(Debug, Clone, Default)]
pub struct Requirements {
    /// Metric names that must exist (in counters, gauges or histograms).
    pub metrics: Vec<String>,
    /// Span names that must appear somewhere in the span forest.
    pub spans: Vec<String>,
}

/// Validates a serialized report against the bench-report schema (the
/// current `obskit.bench.v2` or the legacy `obskit.bench.v1` — v2-only
/// fields are required exactly when the marker says v2) plus the given
/// requirements.
///
/// # Errors
///
/// Returns every problem found (schema violations first, then missing
/// requirements); an empty `Ok(())` means the report is conformant.
pub fn validate(text: &str, req: &Requirements) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![e.to_string()]),
    };

    let mut v2 = true;
    match doc.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        Some(SCHEMA_V1) => v2 = false,
        Some(other) => problems.push(format!("unknown schema marker `{other}`")),
        None => problems.push("missing string field `schema`".into()),
    }
    if doc.get("bench").and_then(Value::as_str).is_none() {
        problems.push("missing string field `bench`".into());
    }
    if doc.get("args").and_then(Value::as_arr).is_none() {
        problems.push("missing array field `args`".into());
    }
    match doc.get("wall_ms").and_then(Value::as_num) {
        Some(ms) if ms >= 0.0 => {}
        Some(ms) => problems.push(format!("`wall_ms` must be non-negative, got {ms}")),
        None => problems.push("missing numeric field `wall_ms`".into()),
    }

    for section in ["counters", "gauges"] {
        match doc.get(section).and_then(Value::as_obj) {
            None => problems.push(format!("missing object field `{section}`")),
            Some(fields) => {
                for (name, v) in fields {
                    match v.as_num() {
                        None => problems.push(format!("`{section}.{name}` is not a number")),
                        Some(n) if section == "counters" && (n < 0.0 || n.fract() != 0.0) => {
                            problems.push(format!(
                                "`counters.{name}` must be a non-negative integer, got {n}"
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }

    match doc.get("histograms").and_then(Value::as_obj) {
        None => problems.push("missing object field `histograms`".into()),
        Some(fields) => {
            for (name, h) in fields {
                validate_histogram(name, h, v2, &mut problems);
            }
        }
    }

    match doc.get("spans").and_then(Value::as_arr) {
        None => problems.push("missing array field `spans`".into()),
        Some(nodes) => {
            for node in nodes {
                validate_span(node, v2, &mut problems);
            }
        }
    }

    for name in &req.metrics {
        let found = ["counters", "gauges", "histograms"]
            .iter()
            .any(|s| doc.get(s).map(|o| o.get(name).is_some()).unwrap_or(false));
        if !found {
            problems.push(format!("required metric `{name}` is missing"));
        }
    }
    for name in &req.spans {
        let forest = doc.get("spans").and_then(Value::as_arr).unwrap_or(&[]);
        if !forest.iter().any(|n| span_forest_contains(n, name)) {
            problems.push(format!("required span `{name}` is missing"));
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn validate_histogram(name: &str, h: &Value, v2: bool, problems: &mut Vec<String>) {
    let count = h.get("count").and_then(Value::as_num);
    if count.is_none() || h.get("sum").and_then(Value::as_num).is_none() {
        problems.push(format!("histogram `{name}` lacks numeric count/sum"));
        return;
    }
    // v2 histograms with observations carry interpolated quantiles and
    // they must be ordered.
    if v2 && count.is_some_and(|c| c > 0.0) {
        let q = |f: &str| h.get(f).and_then(Value::as_num);
        match (q("p50"), q("p90"), q("p99")) {
            (Some(p50), Some(p90), Some(p99)) => {
                if !(p50 <= p90 && p90 <= p99) {
                    problems.push(format!(
                        "histogram `{name}`: quantiles not monotone (p50 {p50}, p90 {p90}, p99 {p99})"
                    ));
                }
            }
            _ => problems.push(format!("histogram `{name}` lacks numeric p50/p90/p99")),
        }
    }
    let Some(buckets) = h.get("buckets").and_then(Value::as_arr) else {
        problems.push(format!("histogram `{name}` lacks a buckets array"));
        return;
    };
    let mut bucket_total = 0.0;
    for b in buckets {
        let lo = b.get("lo").and_then(Value::as_num);
        let hi = b.get("hi").and_then(Value::as_num);
        let c = b.get("count").and_then(Value::as_num);
        match (lo, hi, c) {
            (Some(lo), Some(hi), Some(c)) => {
                if lo >= hi {
                    problems.push(format!("histogram `{name}` has bucket with lo >= hi"));
                }
                bucket_total += c;
            }
            _ => problems.push(format!("histogram `{name}` has a malformed bucket")),
        }
    }
    if let Some(count) = count {
        if bucket_total != count {
            problems.push(format!(
                "histogram `{name}`: bucket counts sum to {bucket_total}, count says {count}"
            ));
        }
    }
}

fn validate_span(node: &Value, v2: bool, problems: &mut Vec<String>) {
    let name = node.get("name").and_then(Value::as_str);
    if name.is_none() {
        problems.push("span node lacks a string `name`".into());
    }
    let label = name.unwrap_or("?");
    for field in ["count", "total_ms", "max_ms", "self_ms"] {
        if node.get(field).and_then(Value::as_num).is_none() {
            problems.push(format!("span `{label}` lacks numeric `{field}`"));
        }
    }
    if v2 {
        for field in ["alloc_count", "alloc_bytes"] {
            if node.get(field).and_then(Value::as_num).is_none() {
                problems.push(format!("span `{label}` lacks numeric `{field}`"));
            }
        }
    }
    match node.get("children").and_then(Value::as_arr) {
        None => problems.push(format!("span `{label}` lacks a `children` array")),
        Some(children) => {
            for child in children {
                validate_span(child, v2, problems);
            }
        }
    }
}

fn span_forest_contains(node: &Value, name: &str) -> bool {
    if node.get("name").and_then(Value::as_str) == Some(name) {
        return true;
    }
    node.get("children")
        .and_then(Value::as_arr)
        .is_some_and(|children| children.iter().any(|c| span_forest_contains(c, name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BucketCount, HistogramSnapshot};

    /// A fully deterministic report, shared with the golden-file test in
    /// the bench crate.
    pub fn sample_report() -> BenchReport {
        BenchReport {
            bench: "golden".into(),
            args: vec!["--fast".into()],
            wall_ms: 125.5,
            metrics: MetricsSnapshot {
                counters: vec![
                    ("ltlcheck.product_states".into(), 420),
                    ("pipeline.pairs_formed".into(), 96),
                ],
                gauges: vec![("tinylm.pretrain_tokens_per_sec".into(), 81000.0)],
                histograms: vec![(
                    "ltlcheck.lasso_len".into(),
                    HistogramSnapshot {
                        count: 3,
                        sum: 21,
                        min: Some(3),
                        max: Some(12),
                        buckets: vec![
                            BucketCount {
                                lo: 2,
                                hi: 4,
                                count: 1,
                            },
                            BucketCount {
                                lo: 4,
                                hi: 8,
                                count: 1,
                            },
                            BucketCount {
                                lo: 8,
                                hi: 16,
                                count: 1,
                            },
                        ],
                    },
                )],
            },
            spans: vec![SpanNode {
                name: "pipeline.run".into(),
                count: 1,
                total_us: 120_000,
                max_us: 120_000,
                alloc_count: 12,
                alloc_bytes: 4_096,
                children: vec![SpanNode {
                    name: "pipeline.verify".into(),
                    count: 30,
                    total_us: 90_000,
                    max_us: 9_000,
                    alloc_count: 0,
                    alloc_bytes: 0,
                    children: Vec::new(),
                }],
            }],
        }
    }

    #[test]
    fn report_serializes_and_validates() {
        let text = sample_report().to_json();
        let req = Requirements {
            metrics: vec![
                "pipeline.pairs_formed".into(),
                "ltlcheck.lasso_len".into(),
                "tinylm.pretrain_tokens_per_sec".into(),
            ],
            spans: vec!["pipeline.verify".into()],
        };
        assert_eq!(validate(&text, &req), Ok(()));
    }

    #[test]
    fn missing_requirements_are_reported() {
        let text = sample_report().to_json();
        let req = Requirements {
            metrics: vec!["no.such.metric".into()],
            spans: vec!["no.such.span".into()],
        };
        let problems = validate(&text, &req).expect_err("must fail");
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("no.such.metric"));
        assert!(problems[1].contains("no.such.span"));
    }

    #[test]
    fn schema_violations_are_reported() {
        // Wrong marker, fractional counter, inconsistent histogram.
        let text = r#"{
            "schema": "obskit.bench.v0",
            "bench": "x",
            "args": [],
            "wall_ms": 1,
            "counters": {"c": 1.5},
            "gauges": {},
            "histograms": {"h": {"count": 5, "sum": 1, "buckets": [
                {"lo": 4, "hi": 2, "count": 3}
            ]}},
            "spans": [{"name": "s", "count": 1, "total_ms": 1, "max_ms": 1}]
        }"#;
        let problems = validate(text, &Requirements::default()).expect_err("must fail");
        let joined = problems.join("\n");
        assert!(joined.contains("unknown schema marker"), "{joined}");
        assert!(joined.contains("`counters.c`"), "{joined}");
        assert!(joined.contains("lo >= hi"), "{joined}");
        assert!(joined.contains("bucket counts sum"), "{joined}");
        assert!(joined.contains("`children`"), "{joined}");
    }

    #[test]
    fn garbage_input_fails_with_parse_error() {
        let problems = validate("not json", &Requirements::default()).expect_err("must fail");
        assert!(problems[0].contains("parse error"));
    }
}
