//! # obskit — zero-dependency tracing + metrics for the DPO-AF pipeline
//!
//! A from-scratch observability layer shared by every crate in the
//! workspace: hierarchical wall-clock **spans**, a thread-safe **metrics
//! registry** (counters, gauges, log-scale histograms), structured
//! **events** with a human-readable console sink, a **Chrome-trace**
//! exporter (open in `chrome://tracing` or Perfetto), and the stable
//! [`report`] schema behind every `BENCH_<name>.json` artifact.
//!
//! ## The recorder is runtime-selected and off by default
//!
//! Libraries instrument unconditionally; whether anything is recorded is
//! decided by the process-global recorder flag. While disabled (the
//! default, and the state during `cargo test`), every instrumentation
//! call is a single relaxed atomic load — the no-op recorder. Binaries
//! opt in:
//!
//! ```
//! obskit::enable();
//! {
//!     let _stage = obskit::span("pipeline.verify");
//!     obskit::counter_add("ltlcheck.product_states", 42);
//!     obskit::progress!("checked {} states", 42);
//! }
//! let snapshot = obskit::snapshot();
//! assert_eq!(snapshot.metrics.counters[0].1, 42);
//! assert_eq!(snapshot.spans[0].name, "pipeline.verify");
//! obskit::disable();
//! ```
//!
//! Span taxonomy and metric naming conventions are documented in
//! DESIGN.md §7.

pub mod alloc;
pub mod chrome;
pub mod event;
pub mod flame;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod span;

pub use event::{Event, EventLog, FieldValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use recorder::FlightSample;
pub use report::{BenchReport, Requirements};
pub use span::{SpanNode, SpanRecord, SpanStore};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether the global recorder is on. Relaxed is enough: a lost race
/// around enable/disable only drops or keeps a stray measurement.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether `progress!` lines also reach stderr (the human sink).
static CONSOLE: AtomicBool = AtomicBool::new(true);

/// Microsecond timestamp (since process anchor) of the last `enable()`.
static ENABLED_AT_US: AtomicU64 = AtomicU64::new(0);

struct Global {
    registry: Registry,
    spans: SpanStore,
    events: EventLog,
    /// Human-readable names for trace threads (`thread_id() → name`).
    thread_names: Mutex<Vec<(u64, String)>>,
}

static GLOBAL: OnceLock<Global> = OnceLock::new();

fn global() -> &'static Global {
    GLOBAL.get_or_init(|| Global {
        registry: Registry::new(),
        spans: SpanStore::default(),
        events: EventLog::default(),
        thread_names: Mutex::new(Vec::new()),
    })
}

/// Monotonic process time anchor for all timestamps.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds since the process anchor.
pub(crate) fn now_us() -> u64 {
    anchor().elapsed().as_micros() as u64
}

/// A metrics snapshot of the global registry (flight-recorder /
/// panic-hook plumbing).
pub(crate) fn global_registry_snapshot() -> MetricsSnapshot {
    global().registry.snapshot()
}

/// Dense per-thread id (0, 1, 2, …) for trace attribution.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

thread_local! {
    /// Stack of open span ids on this thread (for parent links).
    static SPAN_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// The innermost open span id on this thread, mirrored out of
    /// `SPAN_STACK` into a plain `Cell` so the tracking allocator can
    /// read it mid-allocation (the `RefCell` may legitimately be
    /// borrowed while its `Vec` reallocates, which *is* an allocation).
    /// `u32::MAX` = no open span.
    static CURRENT_SPAN: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Innermost open span on this thread, for allocation attribution.
/// `try_with` so allocations during thread teardown degrade to
/// unattributed instead of aborting.
pub(crate) fn current_span_for_alloc() -> Option<u32> {
    CURRENT_SPAN
        .try_with(|c| {
            let id = c.get();
            (id != u32::MAX).then_some(id)
        })
        .ok()
        .flatten()
}

fn set_current_span(id: Option<u32>) {
    let _ = CURRENT_SPAN.try_with(|c| c.set(id.unwrap_or(u32::MAX)));
}

/// Names of the spans currently open on this thread, outermost first —
/// what the flight recorder's panic dump reports as the span stack.
pub fn current_span_stack() -> Vec<String> {
    // try_with + try_borrow: callable from a panic hook even if the
    // panic interrupted a span-stack mutation.
    let ids = SPAN_STACK
        .try_with(|s| s.try_borrow().map(|s| s.clone()).unwrap_or_default())
        .unwrap_or_default();
    global().spans.names(&ids)
}

/// Turns the global recorder on, clearing all previously recorded data.
///
/// Must not be called while spans are open (ids would dangle into the
/// cleared store); binaries call it once at startup.
pub fn enable() {
    let g = global();
    g.registry.clear();
    g.spans.clear();
    g.events.clear();
    alloc::reset();
    recorder::clear();
    ENABLED_AT_US.store(now_us(), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Selects the no-op recorder again. Recorded data stays readable via
/// [`snapshot`] until the next [`enable`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` while the global recorder is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Routes `progress!` lines to stderr (`true`, default) or drops the
/// human-readable copy (`false`); the structured event is kept either way.
pub fn set_console(on: bool) {
    CONSOLE.store(on, Ordering::Relaxed);
}

/// Adds `v` to the global counter `name` (no-op while disabled).
pub fn counter_add(name: &str, v: u64) {
    if enabled() {
        global().registry.counter_add(name, v);
    }
}

/// Sets the global gauge `name` (no-op while disabled).
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        global().registry.gauge_set(name, v);
    }
}

/// Records `v` into the global histogram `name` (no-op while disabled).
pub fn observe(name: &str, v: u64) {
    if enabled() {
        global().registry.observe(name, v);
    }
}

/// An RAII guard for one span; the span closes when the guard drops.
#[must_use = "a span measures the scope of its guard; drop closes it"]
#[derive(Debug)]
pub struct Span {
    id: Option<u32>,
}

impl Span {
    /// A guard that records nothing (what [`span`] returns while the
    /// recorder is disabled).
    pub fn noop() -> Span {
        Span { id: None }
    }

    /// Captures this span's identity as a [`Handoff`] token that can be
    /// moved into tasks running on other threads. Opening a span there
    /// with [`span_under`] parents it to this span, so fan-out work
    /// aggregates under the stage that spawned it instead of forming
    /// per-worker root spans.
    pub fn handoff(&self) -> Handoff {
        Handoff { parent: self.id }
    }
}

/// A cross-thread span-parentage token; see [`Span::handoff`].
///
/// `Copy` and `Send` on purpose: one token is typically captured by many
/// pool tasks. A token from a disabled recorder (or from [`Span::noop`])
/// degrades gracefully — [`span_under`] then opens an ordinary root span.
#[derive(Debug, Clone, Copy)]
pub struct Handoff {
    parent: Option<u32>,
}

/// Opens a span named `name` whose parent is the span behind `handoff`,
/// even when that span lives on another thread. The new span is pushed
/// onto *this* thread's span stack, so further nested [`span`] calls on
/// this thread chain under it.
pub fn span_under(name: &str, handoff: Handoff) -> Span {
    if !enabled() {
        return Span::noop();
    }
    let Some(parent) = handoff.parent else {
        return span(name);
    };
    let id = global()
        .spans
        .open_under(name, now_us(), parent, thread_id());
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    set_current_span(Some(id));
    Span { id: Some(id) }
}

/// Names the current thread for trace attribution (e.g. Chrome-trace
/// track labels). Recorded regardless of whether the recorder is
/// enabled — a thread's identity is not a measurement — and surviving
/// [`enable`]'s data clear, so pools created before `enable()` keep
/// their labels. Last call per thread wins.
pub fn set_thread_name(name: &str) {
    let tid = thread_id();
    let mut names = match global().thread_names.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(entry) = names.iter_mut().find(|(t, _)| *t == tid) {
        entry.1 = name.to_owned();
    } else {
        names.push((tid, name.to_owned()));
    }
}

/// Opens a span named `name` on the current thread. While the recorder
/// is disabled this is one atomic load and no allocation.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span::noop();
    }
    let (parent, depth) = SPAN_STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied(), s.len() as u16)
    });
    let id = global()
        .spans
        .open(name, now_us(), parent, thread_id(), depth);
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    set_current_span(Some(id));
    Span { id: Some(id) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            global().spans.close(id, now_us());
            let top = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(pos) = s.iter().rposition(|&open| open == id) {
                    s.remove(pos);
                }
                s.last().copied()
            });
            set_current_span(top);
        }
    }
}

/// Records a structured event (no-op while disabled).
pub fn event(name: &str, fields: Vec<(&str, FieldValue)>) {
    if !enabled() {
        return;
    }
    global().events.push(Event {
        name: name.to_owned(),
        t_us: now_us(),
        thread: thread_id(),
        fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    });
}

/// Implementation of [`progress!`]; prefer the macro.
pub fn progress_args(args: std::fmt::Arguments<'_>) {
    if !enabled() {
        return;
    }
    let msg = args.to_string();
    if CONSOLE.load(Ordering::Relaxed) {
        eprintln!("{msg}");
    }
    global().events.push(Event {
        name: "progress".to_owned(),
        t_us: now_us(),
        thread: thread_id(),
        fields: vec![("msg".to_owned(), FieldValue::Str(msg))],
    });
}

/// A progress line: human-readable on stderr (the default console sink)
/// *and* a structured `progress` event in the log. Replaces the ad-hoc
/// `eprintln!` progress reporting; silent while the recorder is off.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress_args(::core::format_args!($($arg)*))
    };
}

/// Everything the global recorder has collected.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Wall-clock milliseconds since the last [`enable`].
    pub wall_ms: f64,
    /// All metric values.
    pub metrics: MetricsSnapshot,
    /// Flat span records (open spans closed at snapshot time).
    pub span_records: Vec<SpanRecord>,
    /// The aggregated span-timing forest.
    pub spans: Vec<SpanNode>,
    /// All structured events.
    pub events: Vec<Event>,
    /// Human-readable thread names (`thread id → name`), in
    /// registration order.
    pub thread_names: Vec<(u64, String)>,
    /// Flight-recorder ring contents, oldest first.
    pub samples: Vec<FlightSample>,
    /// Process-wide allocation totals, when the tracking allocator was
    /// on at any point since [`enable`].
    pub alloc: Option<alloc::AllocTotals>,
}

/// Snapshots the global recorder (readable whether or not it is still
/// enabled).
pub fn snapshot() -> Snapshot {
    let g = global();
    let now = now_us();
    let mut span_records = g.spans.snapshot(now);
    let mut metrics = g.registry.snapshot();
    // Fold allocation data in: per-span attribution onto the records
    // (span id = record index), totals as `alloc.*` metrics so reports,
    // requirements and the perf gate see them like any other metric.
    let alloc = alloc::tracked_any().then(alloc::totals);
    if alloc.is_some() {
        let per_span = alloc::per_span();
        for (record, stats) in span_records.iter_mut().zip(&per_span) {
            record.alloc_count = stats.allocs;
            record.alloc_bytes = stats.bytes;
        }
    }
    if let Some(totals) = &alloc {
        fold_alloc_metrics(&mut metrics, totals);
    }
    let spans = span::aggregate(&span_records);
    Snapshot {
        wall_ms: now.saturating_sub(ENABLED_AT_US.load(Ordering::Relaxed)) as f64 / 1e3,
        metrics,
        span_records,
        spans,
        events: g.events.snapshot(),
        thread_names: match g.thread_names.lock() {
            Ok(names) => names.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        },
        samples: recorder::samples(),
        alloc,
    }
}

/// Merges allocation totals into a metrics snapshot under the `alloc.*`
/// names, keeping both metric lists name-sorted. Shared by [`snapshot`]
/// and the flight recorder so final reports and periodic samples agree
/// on naming.
pub(crate) fn fold_alloc_metrics(
    metrics: &mut metrics::MetricsSnapshot,
    totals: &alloc::AllocTotals,
) {
    metrics.counters.extend([
        ("alloc.allocs".to_owned(), totals.allocs),
        ("alloc.bytes_allocated".to_owned(), totals.bytes_allocated),
        ("alloc.bytes_freed".to_owned(), totals.bytes_freed),
        ("alloc.frees".to_owned(), totals.frees),
    ]);
    metrics.counters.sort();
    metrics.gauges.extend([
        (
            "alloc.current_bytes".to_owned(),
            totals.current_bytes as f64,
        ),
        ("alloc.peak_bytes".to_owned(), totals.peak_bytes as f64),
    ]);
    metrics.gauges.sort_by(|a, b| a.0.cmp(&b.0));
}
