//! Structured events: named points in time with typed fields.
//!
//! Events replace ad-hoc `eprintln!` progress lines: the human-readable
//! line still reaches stderr by default (the *console sink*), and the
//! structured form lands in the event log for JSON export.

use std::sync::Mutex;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    /// The value as a JSON tree.
    pub fn to_json_value(&self) -> crate::json::Value {
        use crate::json::Value;
        match self {
            FieldValue::U64(v) => Value::Num(*v as f64),
            FieldValue::I64(v) => Value::Num(*v as f64),
            FieldValue::F64(v) => Value::Num(*v),
            FieldValue::Str(s) => Value::Str(s.clone()),
            FieldValue::Bool(b) => Value::Bool(*b),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (`progress`, `dpo.epoch`, …).
    pub name: String,
    /// Microseconds since the recorder was enabled.
    pub t_us: u64,
    /// Recording thread id.
    pub thread: u64,
    /// Named fields in declaration order.
    pub fields: Vec<(String, FieldValue)>,
}

/// Append-only event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

fn lock(events: &Mutex<Vec<Event>>) -> std::sync::MutexGuard<'_, Vec<Event>> {
    match events.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl EventLog {
    /// Appends an event.
    pub fn push(&self, event: Event) {
        lock(&self.events).push(event);
    }

    /// Copies out every event recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all events.
    pub fn clear(&self) {
        lock(&self.events).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order_with_typed_fields() {
        let log = EventLog::default();
        log.push(Event {
            name: "dpo.epoch".into(),
            t_us: 10,
            thread: 0,
            fields: vec![
                ("epoch".into(), 3usize.into()),
                ("loss".into(), 0.25f32.into()),
                ("done".into(), false.into()),
            ],
        });
        log.push(Event {
            name: "progress".into(),
            t_us: 20,
            thread: 0,
            fields: vec![("msg".into(), "hello".into())],
        });
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].fields[0].1, FieldValue::U64(3));
        assert_eq!(events[0].fields[1].1, FieldValue::F64(0.25));
        assert_eq!(events[1].fields[0].1, FieldValue::Str("hello".into()));
        log.clear();
        assert!(log.is_empty());
    }
}
