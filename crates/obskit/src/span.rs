//! Hierarchical wall-clock spans.
//!
//! A span is opened with [`crate::span`] and closed when its guard
//! drops; the store records `(name, start, duration, parent, thread)`
//! per span. Parentage comes from a per-thread stack, so nesting follows
//! lexical scope on each thread. [`aggregate`] folds the flat record
//! list into a name-keyed timing tree for reports.

use std::sync::Mutex;

/// One recorded (possibly still open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (dot-separated, e.g. `pipeline.verify`).
    pub name: String,
    /// Start time in microseconds since the recorder was enabled.
    pub start_us: u64,
    /// Duration in microseconds; [`OPEN`] while the span is running.
    pub dur_us: u64,
    /// Index of the enclosing span on the same thread, if any.
    pub parent: Option<u32>,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: u16,
    /// Heap allocations attributed to this span (0 unless the tracking
    /// allocator was on; filled in at snapshot time).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Sentinel duration of a span that has not finished yet.
pub const OPEN: u64 = u64::MAX;

impl SpanRecord {
    /// `true` once the span has closed.
    pub fn is_closed(&self) -> bool {
        self.dur_us != OPEN
    }
}

/// Append-only store of span records.
#[derive(Debug, Default)]
pub struct SpanStore {
    records: Mutex<Vec<SpanRecord>>,
}

fn lock(store: &Mutex<Vec<SpanRecord>>) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
    match store.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SpanStore {
    /// Opens a span and returns its id.
    pub fn open(
        &self,
        name: &str,
        start_us: u64,
        parent: Option<u32>,
        thread: u64,
        depth: u16,
    ) -> u32 {
        let mut records = lock(&self.records);
        let id = records.len() as u32;
        records.push(SpanRecord {
            name: name.to_owned(),
            start_us,
            dur_us: OPEN,
            parent,
            thread,
            depth,
            alloc_count: 0,
            alloc_bytes: 0,
        });
        id
    }

    /// Opens a span under an explicit parent id — the cross-thread
    /// variant behind [`crate::span_under`]. The child's depth is
    /// derived from the parent record under the same lock, so handoff
    /// chains nest correctly in the aggregated forest.
    pub fn open_under(&self, name: &str, start_us: u64, parent: u32, thread: u64) -> u32 {
        let mut records = lock(&self.records);
        let depth = records
            .get(parent as usize)
            .map_or(0, |p| p.depth.saturating_add(1));
        let id = records.len() as u32;
        records.push(SpanRecord {
            name: name.to_owned(),
            start_us,
            dur_us: OPEN,
            parent: Some(parent),
            thread,
            depth,
            alloc_count: 0,
            alloc_bytes: 0,
        });
        id
    }

    /// The names of the given span ids, in order (unknown ids are
    /// skipped) — used by the flight recorder's panic dump to render
    /// the panicking thread's open span stack.
    pub fn names(&self, ids: &[u32]) -> Vec<String> {
        let records = lock(&self.records);
        ids.iter()
            .filter_map(|&id| records.get(id as usize).map(|r| r.name.clone()))
            .collect()
    }

    /// Closes span `id` at `end_us`.
    pub fn close(&self, id: u32, end_us: u64) {
        let mut records = lock(&self.records);
        if let Some(r) = records.get_mut(id as usize) {
            r.dur_us = end_us.saturating_sub(r.start_us);
        }
    }

    /// Copies out every record; spans still open are closed *in the
    /// copy* at `now_us` so snapshots taken mid-run stay meaningful.
    pub fn snapshot(&self, now_us: u64) -> Vec<SpanRecord> {
        lock(&self.records)
            .iter()
            .map(|r| {
                let mut r = r.clone();
                if !r.is_closed() {
                    r.dur_us = now_us.saturating_sub(r.start_us);
                }
                r
            })
            .collect()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all records.
    pub fn clear(&self) {
        lock(&self.records).clear();
    }
}

/// One node of the aggregated span-timing tree: all spans that share a
/// name *and* an ancestor name path are folded together.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// How many spans folded into this node.
    pub count: u64,
    /// Total wall-clock microseconds across those spans.
    pub total_us: u64,
    /// Longest single span.
    pub max_us: u64,
    /// Heap allocations attributed to the folded spans (0 unless the
    /// tracking allocator was on for the run).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Child nodes in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_owned(),
            count: 0,
            total_us: 0,
            max_us: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut SpanNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(SpanNode::new(name));
        let last = self.children.len() - 1;
        &mut self.children[last]
    }

    /// Microseconds not accounted for by children (clamped at 0).
    pub fn self_us(&self) -> u64 {
        self.total_us
            .saturating_sub(self.children.iter().map(|c| c.total_us).sum())
    }

    /// Depth-first search for a node by name anywhere in this subtree.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Folds flat span records into a forest keyed by name paths: two spans
/// aggregate into the same node iff the name chains from their roots
/// match. Roots appear in first-seen order.
pub fn aggregate(records: &[SpanRecord]) -> Vec<SpanNode> {
    // Name path per record, computed via parent links.
    let mut paths: Vec<Vec<&str>> = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let mut path = match r.parent {
            // Parents always precede children in the store.
            Some(p) if (p as usize) < i => paths[p as usize].clone(),
            _ => Vec::new(),
        };
        path.push(r.name.as_str());
        paths.push(path);
    }

    let mut forest: Vec<SpanNode> = Vec::new();
    for (r, path) in records.iter().zip(&paths) {
        let mut segments = path.iter();
        let Some(&root_name) = segments.next() else {
            continue;
        };
        let root = match forest.iter().position(|n| n.name == root_name) {
            Some(i) => &mut forest[i],
            None => {
                forest.push(SpanNode::new(root_name));
                let last = forest.len() - 1;
                &mut forest[last]
            }
        };
        let node = segments.fold(root, |node, seg| node.child_mut(seg));
        node.count += 1;
        node.total_us += r.dur_us;
        node.max_us = node.max_us.max(r.dur_us);
        node.alloc_count += r.alloc_count;
        node.alloc_bytes += r.alloc_bytes;
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, start: u64, dur: u64, parent: Option<u32>, depth: u16) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            start_us: start,
            dur_us: dur,
            parent,
            thread: 0,
            depth,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }

    #[test]
    fn aggregate_folds_same_path_and_keeps_hierarchy() {
        // run { sample { verify } sample { verify } } — two sample spans
        // fold into one node, as do their verify children.
        let records = vec![
            rec("run", 0, 100, None, 0),
            rec("sample", 5, 30, Some(0), 1),
            rec("verify", 10, 20, Some(1), 2),
            rec("sample", 40, 50, Some(0), 1),
            rec("verify", 45, 40, Some(3), 2),
        ];
        let forest = aggregate(&records);
        assert_eq!(forest.len(), 1);
        let run = &forest[0];
        assert_eq!((run.count, run.total_us), (1, 100));
        assert_eq!(run.children.len(), 1);
        let sample = &run.children[0];
        assert_eq!(
            (sample.name.as_str(), sample.count, sample.total_us),
            ("sample", 2, 80)
        );
        assert_eq!(sample.max_us, 50);
        let verify = &sample.children[0];
        assert_eq!((verify.count, verify.total_us), (2, 60));
        // Self time subtracts child totals.
        assert_eq!(run.self_us(), 20);
        assert_eq!(sample.self_us(), 20);
        // find() reaches nested nodes.
        assert_eq!(run.find("verify").map(|n| n.count), Some(2));
        assert_eq!(run.find("missing"), None);
    }

    #[test]
    fn same_name_different_parent_stays_separate() {
        let records = vec![
            rec("a", 0, 10, None, 0),
            rec("x", 1, 2, Some(0), 1),
            rec("b", 20, 10, None, 0),
            rec("x", 21, 3, Some(2), 1),
        ];
        let forest = aggregate(&records);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].children[0].total_us, 2);
        assert_eq!(forest[1].children[0].total_us, 3);
    }

    #[test]
    fn store_open_close_snapshot() {
        let store = SpanStore::default();
        let a = store.open("a", 100, None, 0, 0);
        let b = store.open("b", 150, Some(a), 0, 1);
        store.close(b, 250);
        // `a` is still open: the snapshot closes it at `now`.
        let snap = store.snapshot(1_100);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].dur_us, 1_000);
        assert_eq!(snap[1].dur_us, 100);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
    }
}
