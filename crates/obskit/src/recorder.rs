//! Flight recorder: a bounded ring of periodic metric samples plus a
//! panic hook that dumps the black box.
//!
//! Long-running processes (the planned DPO-AF server, multi-hour bench
//! sweeps) need two things a final-snapshot report cannot give: how
//! metrics *evolved* over the run, and what the process was doing when
//! it died. The flight recorder covers both with zero background
//! threads: instrumented code calls [`tick`] at natural beats (pipeline
//! iterations, training epochs, scored batches) and the recorder keeps
//! a sample — every counter and gauge, timestamped — whenever the
//! configured minimum interval has elapsed, in a bounded ring that
//! forgets the oldest sample first. The samples surface as
//! counter/gauge tracks in the Chrome trace and as the `samples` field
//! of [`crate::Snapshot`].
//!
//! [`install_panic_hook`] chains a hook that, on panic with the
//! recorder enabled, writes a JSON black box to stderr (and to a file
//! when [`set_panic_dump_path`] was given one): the panic message and
//! location, the panicking thread's open span stack, the ring of
//! recent samples, and the final metric values. The previous hook runs
//! afterwards, so default backtraces are preserved.

use crate::json::Value;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One timestamped metric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSample {
    /// Microseconds since the process time anchor.
    pub t_us: u64,
    /// Counter values at sample time, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at sample time, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

/// Default ring capacity (samples kept).
pub const DEFAULT_CAPACITY: usize = 240;
/// Default minimum microseconds between kept samples.
pub const DEFAULT_MIN_INTERVAL_US: u64 = 250_000;

static RING: Mutex<VecDeque<FlightSample>> = Mutex::new(VecDeque::new());
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static MIN_INTERVAL_US: AtomicU64 = AtomicU64::new(DEFAULT_MIN_INTERVAL_US);
static LAST_SAMPLE_US: AtomicU64 = AtomicU64::new(0);
static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

fn ring() -> std::sync::MutexGuard<'static, VecDeque<FlightSample>> {
    match RING.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sets the ring capacity and the minimum interval between kept
/// samples. A capacity of 0 disables sampling entirely.
pub fn configure(capacity: usize, min_interval_us: u64) {
    CAPACITY.store(capacity, Ordering::Relaxed);
    MIN_INTERVAL_US.store(min_interval_us, Ordering::Relaxed);
}

/// Drops all samples and resets the throttle (called by
/// [`crate::enable`]).
pub fn clear() {
    ring().clear();
    LAST_SAMPLE_US.store(0, Ordering::Relaxed);
}

/// Offers the recorder a sampling opportunity. Cheap to call from hot
/// beats: while the global recorder is off, or before the minimum
/// interval has elapsed, this is a couple of relaxed loads. Otherwise
/// one metrics snapshot is pushed into the ring (evicting the oldest
/// sample when full).
pub fn tick() {
    if !crate::enabled() || CAPACITY.load(Ordering::Relaxed) == 0 {
        return;
    }
    let now = crate::now_us();
    let last = LAST_SAMPLE_US.load(Ordering::Relaxed);
    if now.saturating_sub(last) < MIN_INTERVAL_US.load(Ordering::Relaxed) && last != 0 {
        return;
    }
    // A racing tick may double-sample; harmless for telemetry.
    LAST_SAMPLE_US.store(now, Ordering::Relaxed);
    force_tick();
}

/// Takes a sample unconditionally (recorder permitting) — stage
/// boundaries use this so the ring always has the interesting edges.
pub fn force_tick() {
    if !crate::enabled() || CAPACITY.load(Ordering::Relaxed) == 0 {
        return;
    }
    let mut metrics = crate::global_registry_snapshot();
    // Fold live allocation totals in under the same `alloc.*` names the
    // final snapshot uses, so the Chrome trace grows heap/churn tracks
    // whenever tracking is on.
    if crate::alloc::tracked_any() {
        crate::fold_alloc_metrics(&mut metrics, &crate::alloc::totals());
    }
    let sample = FlightSample {
        t_us: crate::now_us(),
        counters: metrics.counters,
        gauges: metrics.gauges,
    };
    let mut ring = ring();
    let cap = CAPACITY.load(Ordering::Relaxed);
    while ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(sample);
}

/// A copy of the ring, oldest sample first.
pub fn samples() -> Vec<FlightSample> {
    ring().iter().cloned().collect()
}

/// Where the panic hook should additionally write its JSON dump (on
/// top of stderr). `None` (the default) keeps stderr only.
pub fn set_panic_dump_path(path: Option<PathBuf>) {
    let mut slot = match DUMP_PATH.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = path;
}

/// The black-box JSON document the panic hook dumps.
fn black_box(panic_msg: &str, location: &str) -> Value {
    let metrics = crate::global_registry_snapshot();
    let samples: Vec<Value> = samples()
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("t_us".into(), Value::Num(s.t_us as f64)),
                (
                    "counters".into(),
                    Value::Obj(
                        s.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                            .collect(),
                    ),
                ),
                (
                    "gauges".into(),
                    Value::Obj(
                        s.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Num(*v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str("obskit.flight.v1".into())),
        ("panic".into(), Value::Str(panic_msg.into())),
        ("location".into(), Value::Str(location.into())),
        (
            "span_stack".into(),
            Value::Arr(
                crate::current_span_stack()
                    .into_iter()
                    .map(Value::Str)
                    .collect(),
            ),
        ),
        ("samples".into(), Value::Arr(samples)),
        (
            "counters".into(),
            Value::Obj(
                metrics
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Value::Obj(
                metrics
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Renders the black box for the given panic payload — separated from
/// the hook so tests can exercise the dump without panicking.
pub fn render_black_box(panic_msg: &str, location: &str) -> String {
    black_box(panic_msg, location).to_json_pretty()
}

/// Installs the flight-recorder panic hook (idempotent). The hook only
/// acts while the global recorder is enabled, so test binaries and
/// library users who never record see stock panic behavior.
pub fn install_panic_hook() {
    if HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if crate::enabled() {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned());
            let location = info
                .location()
                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                .unwrap_or_else(|| "<unknown>".to_owned());
            let dump = render_black_box(&msg, &location);
            eprintln!("== obskit flight recorder (panic black box) ==\n{dump}");
            let path = match DUMP_PATH.lock() {
                Ok(g) => g.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            };
            if let Some(path) = path {
                if let Err(e) = std::fs::write(&path, &dump) {
                    eprintln!("flight recorder: writing {} failed: {e}", path.display());
                } else {
                    eprintln!("flight recorder: black box written to {}", path.display());
                }
            }
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring mechanics without the global recorder: capacity bound and
    /// eviction order (FIFO) are pure data-structure behavior, tested
    /// here by direct pushes.
    #[test]
    fn ring_is_bounded_fifo() {
        clear();
        configure(3, 0);
        let mut r = ring();
        for i in 0..5u64 {
            while r.len() >= 3 {
                r.pop_front();
            }
            r.push_back(FlightSample {
                t_us: i,
                counters: Vec::new(),
                gauges: Vec::new(),
            });
        }
        drop(r);
        let kept: Vec<u64> = samples().iter().map(|s| s.t_us).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        clear();
        configure(DEFAULT_CAPACITY, DEFAULT_MIN_INTERVAL_US);
    }

    #[test]
    fn tick_is_a_noop_while_disabled() {
        // The global recorder is off during unit tests; tick must not
        // record anything.
        clear();
        tick();
        force_tick();
        assert!(samples().is_empty());
    }

    #[test]
    fn black_box_renders_valid_json() {
        let dump = render_black_box("boom", "src/lib.rs:1:1");
        let doc = crate::json::parse(&dump).expect("dump parses");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("obskit.flight.v1")
        );
        assert_eq!(doc.get("panic").and_then(Value::as_str), Some("boom"));
        assert!(doc.get("span_stack").and_then(Value::as_arr).is_some());
        assert!(doc.get("samples").and_then(Value::as_arr).is_some());
    }
}
