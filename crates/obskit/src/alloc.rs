//! Heap-allocation profiling: a tracking [`GlobalAlloc`] wrapper with
//! per-span attribution.
//!
//! [`TrackingAlloc`] wraps the system allocator. A binary installs it
//! once:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: obskit::alloc::TrackingAlloc = obskit::alloc::TrackingAlloc::new();
//! ```
//!
//! and the allocator stays a pure pass-through (one relaxed atomic load
//! per call) until [`set_tracking`]`(true)` turns accounting on — the
//! same runtime-switch discipline as the span/metrics recorder, so
//! libraries never pay for profiling they did not ask for. While
//! tracking, every allocation updates global totals
//! (allocs/frees/bytes/peak) *and* is attributed to the span currently
//! open on the allocating thread, which is how the `obskit.bench.v2`
//! report can say "`dpo.backward` allocated 1.2 GB in 40k calls".
//!
//! ## Attribution model
//!
//! Each thread keeps a `Cell<u32>` with the id of its innermost open
//! span (maintained by `span`/`span_under`/`Span::drop` in the crate
//! root; `u32::MAX` = none). On allocation the id is read — a plain
//! `Cell`, never a `RefCell`, because the allocator can run while the
//! span stack itself is mid-mutation — and the size is added to a
//! global table indexed by span id. Frees are *not* attributed:
//! ownership routinely crosses spans (a buffer allocated in
//! `pipeline.collect` dies in `pipeline.train`), so per-span numbers
//! are gross allocation pressure, not live bytes. Global totals do
//! track frees and the live-byte peak.
//!
//! ## Re-entrancy
//!
//! Growing the attribution table allocates, which re-enters the
//! allocator. A thread-local guard short-circuits the attribution path
//! (never the global totals, which are plain atomics) while the table
//! lock is held, so the recursion terminates and the non-reentrant
//! `Mutex` is never taken twice on one thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Whether allocation accounting is on (independent of the span
/// recorder so the allocator can stay pass-through during ordinary
/// recorded runs).
static TRACKING: AtomicBool = AtomicBool::new(false);
/// Latched true by `set_tracking(true)`, cleared by [`reset`]: "this
/// process has alloc data worth reporting".
static TRACKED_ANY: AtomicBool = AtomicBool::new(false);

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static BYTES_FREED: AtomicU64 = AtomicU64::new(0);
/// Live bytes relative to the tracking start — signed, because blocks
/// allocated before tracking began may be freed while it is on.
static CURRENT_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// Per-span gross allocation totals, indexed by span id.
static PER_SPAN: Mutex<Vec<SpanAlloc>> = Mutex::new(Vec::new());

thread_local! {
    /// Re-entrancy guard for the attribution path (see module docs).
    static IN_TRACKING: Cell<bool> = const { Cell::new(false) };
}

/// Gross allocation totals attributed to one span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAlloc {
    /// Number of allocations made while the span was innermost.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

/// Process-wide allocation totals since tracking was last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AllocTotals {
    /// Allocations observed.
    pub allocs: u64,
    /// Deallocations observed.
    pub frees: u64,
    /// Bytes requested across all allocations.
    pub bytes_allocated: u64,
    /// Bytes returned across all deallocations.
    pub bytes_freed: u64,
    /// Live bytes relative to the tracking start (may be negative when
    /// pre-tracking blocks are freed while tracking).
    pub current_bytes: i64,
    /// High-water mark of `current_bytes`.
    pub peak_bytes: i64,
}

/// Turns allocation accounting on or off. Off (the default) leaves the
/// installed [`TrackingAlloc`] a pass-through costing one relaxed load.
pub fn set_tracking(on: bool) {
    if on {
        TRACKED_ANY.store(true, Ordering::Relaxed);
    }
    TRACKING.store(on, Ordering::Relaxed);
}

/// `true` while allocation accounting is on.
pub fn tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// `true` once tracking has been on since the last [`reset`] — the
/// snapshot uses this to decide whether `alloc.*` metrics belong in the
/// report.
pub fn tracked_any() -> bool {
    TRACKED_ANY.load(Ordering::Relaxed)
}

fn table() -> MutexGuard<'static, Vec<SpanAlloc>> {
    match PER_SPAN.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f` on the attribution table with the re-entrancy guard held,
/// so allocations made by `f` (or by the table growing) skip the
/// attribution path instead of deadlocking on `PER_SPAN`.
fn with_table<R>(f: impl FnOnce(&mut Vec<SpanAlloc>) -> R) -> Option<R> {
    IN_TRACKING
        .try_with(|guard| {
            if guard.get() {
                return None;
            }
            guard.set(true);
            let result = f(&mut table());
            guard.set(false);
            Some(result)
        })
        .ok()
        .flatten()
}

/// Zeroes every total and drops the attribution table; called by
/// `obskit::enable()` so each recorded run starts from a clean slate.
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    FREES.store(0, Ordering::Relaxed);
    BYTES_ALLOCATED.store(0, Ordering::Relaxed);
    BYTES_FREED.store(0, Ordering::Relaxed);
    CURRENT_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    TRACKED_ANY.store(false, Ordering::Relaxed);
    with_table(Vec::clear);
}

/// Current process-wide totals.
pub fn totals() -> AllocTotals {
    AllocTotals {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        bytes_freed: BYTES_FREED.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// A copy of the per-span attribution table (index = span id).
pub fn per_span() -> Vec<SpanAlloc> {
    with_table(|t| t.clone()).unwrap_or_default()
}

/// Accounts one allocation of `size` bytes. Public within the crate so
/// the snapshot/tests can exercise accounting without installing the
/// allocator process-wide.
pub(crate) fn note_alloc(size: usize) {
    if !tracking() {
        return;
    }
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    let Some(span) = crate::current_span_for_alloc() else {
        return;
    };
    with_table(|t| {
        let idx = span as usize;
        if t.len() <= idx {
            t.resize(idx + 1, SpanAlloc::default());
        }
        t[idx].allocs += 1;
        t[idx].bytes += size as u64;
    });
}

/// Accounts one deallocation of `size` bytes (global totals only; see
/// the module docs for why frees are not attributed to spans).
pub(crate) fn note_dealloc(size: usize) {
    if !tracking() {
        return;
    }
    FREES.fetch_add(1, Ordering::Relaxed);
    BYTES_FREED.fetch_add(size as u64, Ordering::Relaxed);
    CURRENT_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that forwards to [`System`] and, while
/// [`set_tracking`] is on, accounts every call (see module docs).
#[derive(Debug, Default)]
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// A pass-through tracking allocator (accounting starts only when
    /// [`set_tracking`]`(true)` is called).
    pub const fn new() -> TrackingAlloc {
        TrackingAlloc
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the accounting side-effects touch only atomics
// and a guarded mutex and never observe or alter the returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged from our own caller,
        // who upholds the GlobalAlloc contract for it.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: as in `alloc` — the layout is forwarded unchanged.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from our `alloc`/`alloc_zeroed`/
        // `realloc`, which delegate to `System`, so they satisfy
        // `System::dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments are forwarded unchanged from a caller
        // upholding the GlobalAlloc realloc contract.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Accounted as free+alloc: keeps allocs/frees balanced and
            // the byte totals exact.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All accounting in one test: tracking is process-global state and
    /// the test harness runs `#[test]`s in parallel.
    #[test]
    fn accounting_end_to_end() {
        reset();
        // Off: notes are dropped.
        note_alloc(64);
        assert_eq!(totals(), AllocTotals::default());
        assert!(!tracked_any());

        set_tracking(true);
        note_alloc(64);
        note_alloc(32);
        note_dealloc(32);
        let t = totals();
        assert_eq!((t.allocs, t.frees), (2, 1));
        assert_eq!((t.bytes_allocated, t.bytes_freed), (96, 32));
        assert_eq!(t.current_bytes, 64);
        assert_eq!(t.peak_bytes, 96);
        assert!(tracked_any());

        // Freeing a pre-tracking block drives live bytes negative
        // without panicking; the peak stays put.
        note_dealloc(1_000);
        assert_eq!(totals().current_bytes, 64 - 1_000);
        assert_eq!(totals().peak_bytes, 96);

        set_tracking(false);
        note_alloc(1);
        assert_eq!(totals().allocs, 2);
        reset();
        assert_eq!(totals(), AllocTotals::default());
        assert!(per_span().is_empty());
    }

    #[test]
    fn with_table_is_reentrancy_safe() {
        // A nested with_table call (as a re-entered allocation would
        // make) is skipped rather than deadlocking.
        let outer = with_table(|t| {
            let nested = with_table(|_| ());
            t.len() + usize::from(nested.is_some())
        });
        assert_eq!(outer, Some(0));
    }
}
