//! Collapsed-stack ("folded") flamegraph export.
//!
//! Renders flat span records in the format `flamegraph.pl` /
//! [inferno](https://github.com/jonhoo/inferno) / speedscope consume:
//! one line per distinct span-name path, `root;child;leaf <value>`,
//! where the value is the path's **exclusive self-time in
//! microseconds** — each record's duration minus the duration of its
//! direct children, folded across all records sharing the name path.
//! Summing a subtree of the flamegraph therefore reproduces the
//! subtree root's inclusive time, which is what makes "where does the
//! wall actually go inside `dpo.backward`" readable at a glance.
//!
//! Lines are emitted in lexicographic path order so the output is
//! byte-stable for a deterministic run.

use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// Folds span records into collapsed-stack lines weighted by exclusive
/// self-time (µs). Records with zero self-time still appear when the
/// path has no other weight, so the hierarchy stays connected.
pub fn folded(records: &[SpanRecord]) -> String {
    // Per-record sum of direct-child durations, via parent links.
    let mut child_us = vec![0u64; records.len()];
    for r in records {
        if let Some(p) = r.parent {
            if let Some(slot) = child_us.get_mut(p as usize) {
                *slot = slot.saturating_add(r.dur_us);
            }
        }
    }
    // Name path per record (parents always precede children in the
    // store, same invariant `span::aggregate` relies on).
    let mut paths: Vec<String> = Vec::with_capacity(records.len());
    let mut folds: BTreeMap<String, u64> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        let path = match r.parent {
            Some(p) if (p as usize) < i => format!("{};{}", paths[p as usize], r.name),
            _ => r.name.clone(),
        };
        let self_us = r.dur_us.saturating_sub(child_us[i]);
        *folds.entry(path.clone()).or_insert(0) += self_us;
        paths.push(path);
    }
    let mut out = String::new();
    for (path, us) in &folds {
        out.push_str(path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, dur: u64, parent: Option<u32>) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            start_us: 0,
            dur_us: dur,
            parent,
            thread: 0,
            depth: 0,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }

    #[test]
    fn folds_self_time_along_name_paths() {
        // run(100) { train(60) { backward(45) } train(20) } — the two
        // train spans fold; self-times: run 20, train 35, backward 45.
        let records = vec![
            rec("run", 100, None),
            rec("train", 60, Some(0)),
            rec("backward", 45, Some(1)),
            rec("train", 20, Some(0)),
        ];
        let out = folded(&records);
        assert_eq!(out, "run 20\nrun;train 35\nrun;train;backward 45\n");
        // Folded self-times sum back to the root's inclusive time.
        let total: u64 = out
            .lines()
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse::<u64>().ok())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn separate_roots_stay_separate_and_sorted() {
        let records = vec![rec("b", 5, None), rec("a", 3, None)];
        assert_eq!(folded(&records), "a 3\nb 5\n");
        assert_eq!(folded(&[]), "");
    }

    #[test]
    fn child_longer_than_parent_clamps_at_zero() {
        // Cross-thread children can outlive the parent's measured wall;
        // self-time saturates instead of wrapping.
        let records = vec![rec("p", 10, None), rec("c", 25, Some(0))];
        assert_eq!(folded(&records), "p 0\np;c 25\n");
    }
}
