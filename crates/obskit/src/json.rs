//! A minimal JSON value, writer and parser.
//!
//! obskit deliberately has no dependencies (it is linked into every
//! hot-path crate), so the report schema and its validator carry their
//! own JSON support: an ordered [`Value`] tree, a pretty-printer with
//! stable output (object keys keep insertion order — golden files diff
//! cleanly), and a recursive-descent parser for the validator side.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so that serialized
/// reports are byte-stable across runs with identical data.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive up to 2^53 exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; fail soft.
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending byte offset on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as the replacement char:
                            // the report writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it
                    // arrived as &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_like_document() {
        let v = Value::Obj(vec![
            ("schema".into(), Value::Str("obskit.bench.v1".into())),
            ("wall_ms".into(), Value::Num(12.5)),
            (
                "counters".into(),
                Value::Obj(vec![("a.b".into(), Value::Num(3.0))]),
            ),
            (
                "arr".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Num(-2.0)]),
            ),
        ]);
        for rendered in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&rendered), Ok(v.clone()), "{rendered}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(3.0).to_json(), "3");
        assert_eq!(Value::Num(3.5).to_json(), "3.5");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\tü";
        let rendered = Value::Str(s.into()).to_json();
        assert_eq!(parse(&rendered), Ok(Value::Str(s.into())));
        let from_unicode_escape = parse(r#""ü""#).ok();
        assert_eq!(from_unicode_escape, Some(Value::Str("ü".into())));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"a": 1, "b": [true], "c": "x"}"#).ok();
        let v = v.as_ref();
        assert_eq!(
            v.and_then(|v| v.get("a")).and_then(Value::as_num),
            Some(1.0)
        );
        assert_eq!(
            v.and_then(|v| v.get("b"))
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(
            v.and_then(|v| v.get("c")).and_then(Value::as_str),
            Some("x")
        );
        assert_eq!(v.and_then(|v| v.get("missing")), None);
    }
}
