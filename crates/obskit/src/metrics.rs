//! Thread-safe metrics: counters, gauges and log-scale histograms behind
//! a name-keyed [`Registry`].
//!
//! All primitives are lock-free once obtained (relaxed atomics); the
//! registry itself takes a read lock per name lookup. Naming convention:
//! `<crate>.<noun>` in `snake_case`, e.g. `ltlcheck.product_states`,
//! `pipeline.pairs_formed` (see DESIGN.md §7).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

/// A histogram over `u64` observations with fixed log-scale (power-of-two)
/// buckets: bucket 0 holds exact zeros, bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Also tracks exact count, sum, min and max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index for an observation.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The half-open `[lo, hi)` range of bucket `i` (bucket 64's upper bound
/// saturates at `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), 1 << i),
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (individual fields are read
    /// atomically; cross-field skew is possible under concurrent writes
    /// and acceptable for telemetry).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then(|| {
                        let (lo, hi) = bucket_bounds(i);
                        BucketCount { lo, hi, count: c }
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
    /// Observations that fell in `[lo, hi)`.
    pub count: u64,
}

/// Point-in-time view of a [`Histogram`] (only non-empty buckets).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations (wrapping on overflow).
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
    /// Non-empty buckets in ascending range order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from the log₂
    /// buckets with linear interpolation inside the containing bucket —
    /// the Prometheus `histogram_quantile` construction, tightened by
    /// the exact `min`/`max` the histogram also tracks: results are
    /// clamped to `[min, max]`, so the p0/p100 ends are exact and
    /// single-observation histograms report that observation at every
    /// quantile. Returns `None` when the histogram is empty.
    ///
    /// Monotone in `q` by construction (cumulative rank walk over
    /// ascending buckets), so `p50 ≤ p90 ≤ p99` always holds.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min? as f64, self.max? as f64);
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0.0;
        for b in &self.buckets {
            let c = b.count as f64;
            if seen + c >= rank {
                // Interpolate inside [lo, hi) by the rank fraction
                // covered within this bucket (rank 0 ⇒ lo).
                let frac = if c > 0.0 { (rank - seen) / c } else { 0.0 };
                let est = b.lo as f64 + (b.hi as f64 - b.lo as f64) * frac;
                return Some(est.clamp(min, max));
            }
            seen += c;
        }
        Some(max)
    }

    /// The (p50, p90, p99) triple reports carry, or `None` when empty.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
        ))
    }
}

/// Point-in-time view of a whole [`Registry`], with stable (sorted)
/// iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A name-keyed collection of metrics. Handles are `Arc`s, so call sites
/// may cache them to skip the lookup on very hot paths.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

/// Lock helper: a poisoned metrics lock only means another thread
/// panicked mid-insert; the map itself is still structurally sound, so
/// recover the guard rather than propagating the poison.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn get_or_insert<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = read(map).get(name) {
        return Arc::clone(existing);
    }
    Arc::clone(write(map).entry(name.to_owned()).or_default())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// `counter(name).add(v)`.
    pub fn counter_add(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    /// `gauge(name).set(v)`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// `histogram(name).observe(v)`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).observe(v);
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = read(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> = read(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = read(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Drops every metric (names and values).
    pub fn clear(&self) {
        write(&self.counters).clear();
        write(&self.gauges).clear();
        write(&self.histograms).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_set("g", 1.25);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.gauge("g").get(), 1.25);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_owned(), 5)]);
        assert_eq!(snap.gauges, vec![("g".to_owned(), 1.25)]);
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // Exact boundary cases: each power of two starts a new bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 2 + 1);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i < 64 {
                assert_eq!(bucket_index(hi - 1), i, "upper bound of bucket {i}");
                assert_eq!(bucket_index(hi), i + 1, "first value past bucket {i}");
            }
            assert!(lo < hi);
        }
    }

    #[test]
    fn histogram_snapshot_aggregates() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 8, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 113);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(100));
        assert!((s.mean() - 113.0 / 6.0).abs() < 1e-12);
        // Buckets: {0}, [1,2)×2, [2,4), [8,16), [64,128).
        let counts: Vec<(u64, u64, u64)> =
            s.buckets.iter().map(|b| (b.lo, b.hi, b.count)).collect();
        assert_eq!(
            counts,
            vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (8, 16, 1), (64, 128, 1)]
        );
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), s.count);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.percentiles(), None);
    }

    #[test]
    fn quantiles_of_a_single_sample_are_that_sample() {
        let h = Histogram::default();
        h.observe(37);
        let s = h.snapshot();
        // The min/max clamp pins every quantile to the one observation,
        // despite the [32, 64) bucket being 32 wide.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(37.0), "q={q}");
        }
        assert_eq!(s.percentiles(), Some((37.0, 37.0, 37.0)));
    }

    #[test]
    fn quantiles_interpolate_and_respect_bucket_boundaries() {
        let h = Histogram::default();
        // 8 observations of 4 (bucket [4,8)), 2 of 16 (bucket [16,32)).
        for _ in 0..8 {
            h.observe(4);
        }
        h.observe(16);
        h.observe(16);
        let s = h.snapshot();
        // p50: rank 5 of 8 inside [4,8) → 4 + 4·(5/8) = 6.5.
        assert_eq!(s.quantile(0.5), Some(6.5));
        // p80: rank 8 is exactly the [4,8) bucket's last observation —
        // still interpolated inside that bucket, not the next one.
        assert_eq!(s.quantile(0.8), Some(8.0));
        // p90: rank 9, first of the [16,32) bucket: 16 + 16·(1/2) = 24,
        // clamped to the observed max of 16.
        assert_eq!(s.quantile(0.9), Some(16.0));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(s.quantile(-1.0), Some(4.0));
        assert_eq!(s.quantile(2.0), Some(16.0));
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::default();
        let mut x: u64 = 0x9e37;
        for _ in 0..500 {
            // Cheap deterministic scatter across several buckets.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.observe(x >> 52);
        }
        let s = h.snapshot();
        let qs: Vec<f64> = (0..=20)
            .filter_map(|i| s.quantile(f64::from(i) / 20.0))
            .collect();
        assert_eq!(qs.len(), 21, "quantiles of a non-empty histogram exist");
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        let (p50, p90, p99) = s.percentiles().expect("non-empty");
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= s.min.map(|m| m as f64).expect("min"));
        assert!(p99 <= s.max.map(|m| m as f64).expect("max"));
    }

    #[test]
    fn clear_forgets_names() {
        let r = Registry::new();
        r.counter_add("x", 1);
        r.observe("h", 5);
        r.clear();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn registry_is_thread_safe_under_parallel_increments() {
        let r = Registry::new();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let r = &r;
                scope.spawn(move || {
                    let cached = r.counter("hot");
                    for i in 0..PER_THREAD {
                        cached.add(1);
                        r.counter_add("named", 1);
                        r.observe("h", t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(r.counter("hot").get(), THREADS * PER_THREAD);
        assert_eq!(r.counter("named").get(), THREADS * PER_THREAD);
        let h = r.histogram("h").snapshot();
        assert_eq!(h.count, THREADS * PER_THREAD);
        assert_eq!(h.min, Some(0));
        assert_eq!(h.max, Some(THREADS * PER_THREAD - 1));
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), h.count);
    }
}
