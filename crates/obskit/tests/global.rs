//! Integration tests for the global recorder facade.
//!
//! The recorder is process-global, so everything that toggles it lives
//! in ONE test function — the test harness runs separate `#[test]`s in
//! parallel threads and interleaved enable/disable would race.

use obskit::FieldValue;

#[test]
fn global_recorder_end_to_end() {
    // While disabled (the default), nothing records.
    assert!(!obskit::enabled());
    obskit::counter_add("noop.counter", 7);
    obskit::observe("noop.hist", 1);
    {
        let _s = obskit::span("noop.span");
    }
    let before = obskit::snapshot();
    assert!(before.metrics.counters.is_empty());
    assert!(before.span_records.is_empty());

    // Enabled: spans nest via the per-thread stack, metrics accumulate,
    // events carry typed fields.
    obskit::enable();
    assert!(obskit::enabled());
    obskit::set_console(false); // keep test output clean
    {
        let _outer = obskit::span("test.outer");
        obskit::counter_add("test.counter", 2);
        obskit::counter_add("test.counter", 3);
        obskit::gauge_set("test.gauge", 1.5);
        obskit::observe("test.hist", 10);
        {
            let _inner = obskit::span("test.inner");
            obskit::progress!("step {}", 1);
        }
        obskit::event("test.event", vec![("k", FieldValue::from(9usize))]);
    }
    // A span on another thread gets its own root (no cross-thread parent).
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _t = obskit::span("test.thread");
        });
    });
    // … unless the parent is handed off explicitly: the fan-out span
    // parents to `test.fanout` across the thread boundary, and spans
    // opened while it is on the worker's stack chain under it.
    {
        let fanout = obskit::span("test.fanout");
        let token = fanout.handoff();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                obskit::set_thread_name("test-worker");
                let _task = obskit::span_under("test.task", token);
                let _leaf = obskit::span("test.leaf");
            });
        });
    }
    let snap = obskit::snapshot();
    obskit::disable();
    obskit::set_console(true);

    assert_eq!(snap.metrics.counters, vec![("test.counter".to_string(), 5)]);
    assert_eq!(snap.metrics.gauges, vec![("test.gauge".to_string(), 1.5)]);
    assert_eq!(snap.metrics.histograms.len(), 1);
    assert_eq!(snap.metrics.histograms[0].1.count, 1);

    // Span forest: test.outer > test.inner, and test.thread as a root.
    let outer = snap
        .spans
        .iter()
        .find(|n| n.name == "test.outer")
        .expect("outer span aggregated");
    assert_eq!(outer.count, 1);
    assert_eq!(outer.children.len(), 1);
    assert_eq!(outer.children[0].name, "test.inner");
    assert!(outer.total_us >= outer.children[0].total_us);
    assert!(snap.spans.iter().any(|n| n.name == "test.thread"));

    // Flat records keep parent links and per-thread depth.
    let outer_rec = snap
        .span_records
        .iter()
        .position(|r| r.name == "test.outer")
        .expect("outer record");
    let inner_rec = snap
        .span_records
        .iter()
        .find(|r| r.name == "test.inner")
        .expect("inner record");
    assert_eq!(inner_rec.parent, Some(outer_rec as u32));
    assert_eq!(inner_rec.depth, 1);
    let thread_rec = snap
        .span_records
        .iter()
        .find(|r| r.name == "test.thread")
        .expect("thread record");
    assert_eq!(thread_rec.parent, None);
    assert_ne!(thread_rec.thread, inner_rec.thread);

    // Handoff parentage: test.fanout > test.task > test.leaf in the
    // aggregated forest even though task/leaf ran on another thread.
    let fanout = snap
        .spans
        .iter()
        .find(|n| n.name == "test.fanout")
        .expect("fanout span aggregated");
    let task = fanout.find("test.task").expect("task under fanout");
    assert_eq!(task.count, 1);
    assert!(task.find("test.leaf").is_some(), "leaf chains under task");
    let fanout_rec = snap
        .span_records
        .iter()
        .position(|r| r.name == "test.fanout")
        .expect("fanout record");
    let task_rec = snap
        .span_records
        .iter()
        .find(|r| r.name == "test.task")
        .expect("task record");
    assert_eq!(task_rec.parent, Some(fanout_rec as u32));
    assert_eq!(task_rec.depth, 1);
    assert_ne!(
        task_rec.thread, snap.span_records[fanout_rec].thread,
        "handoff crossed a thread boundary"
    );

    // The worker registered a human-readable name, and the Chrome
    // exporter renders it as thread_name metadata.
    assert!(snap
        .thread_names
        .iter()
        .any(|(tid, name)| *tid == task_rec.thread && name == "test-worker"));
    let trace =
        obskit::chrome::chrome_trace_named(&snap.span_records, &snap.events, &snap.thread_names);
    assert!(trace.contains("thread_name"), "{trace}");
    assert!(trace.contains("test-worker"), "{trace}");

    // Events: the progress! line and the explicit event, in order.
    let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["progress", "test.event"]);
    assert_eq!(
        snap.events[0].fields,
        vec![("msg".to_string(), FieldValue::Str("step 1".into()))]
    );

    // After disable, new data is dropped again …
    obskit::counter_add("test.counter", 100);
    let after = obskit::snapshot();
    assert_eq!(
        after.metrics.counters,
        vec![("test.counter".to_string(), 5)]
    );

    // … and re-enable starts from a clean slate.
    obskit::enable();
    let clean = obskit::snapshot();
    assert!(clean.metrics.counters.is_empty());
    assert!(clean.span_records.is_empty());
    assert!(clean.events.is_empty());
    obskit::disable();
}
