//! The certkit CI gate.
//!
//! Runs two suites and exits non-zero if either finds a problem:
//!
//! 1. **Preset certification** — every preset scenario × rule-book case
//!    is model-checked with certificates and each verdict's evidence is
//!    validated by the independent checker; then the explicit and
//!    symbolic backends are differentially compared on the same matrix.
//! 2. **Randomized differential + certification** — seeded random
//!    graphs and formulas (mirroring the proptest generators) are run
//!    through both backends and through certificate validation.
//! 3. **Scaled-model differential** — the backends are compared on
//!    scaled-up world models (`drivesim::scaled`, the warehouse grid
//!    corridor) under a wall-clock budget: the first scaled case always
//!    runs to completion, further cases run while budget remains. This
//!    is the regime the partitioned symbolic encoding (DESIGN.md §14)
//!    is built for, so it is exactly where a divergence would hide.
//!
//! Any backend disagreement is minimized and dumped as a JSON repro
//! file (`certkit-repro-*.json`) before exiting.
//!
//! Usage: `certkit [--random N] [--seed S] [--scaled-budget-ms MS]`

// ALLOW: a CI gate terminates on the first inconsistency; panicking accessors
// are the point here, not a liability.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use autokit::{ActSet, LabelGraph, ProductState, PropSet, Vocab};
use certkit::differential::{differential, minimize, repro_json, Disagreement};
use ltlcheck::{Justice, Ltl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut random_cases: usize = 200;
    let mut seed: u64 = 0x00C0_FFEE;
    let mut scaled_budget = std::time::Duration::from_millis(20_000);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--random" => {
                random_cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--random takes a count");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--scaled-budget-ms" => {
                scaled_budget = std::time::Duration::from_millis(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scaled-budget-ms takes milliseconds"),
                );
            }
            other => {
                eprintln!(
                    "usage: certkit [--random N] [--seed S] [--scaled-budget-ms MS] (got `{other}`)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut repros = 0usize;

    // --- suite 1: preset certification + differential -------------------
    println!("certkit: certifying preset scenario × rule-book matrix...");
    let report = match certkit::certify_presets() {
        Ok(r) => r,
        Err((name, e)) => {
            eprintln!("certkit: FAIL: verdict evidence rejected on {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "certkit: ok: {} cases, {} checks ({} holds, {} fails) all certified",
        report.cases, report.checks, report.holds, report.fails
    );

    println!("certkit: differential explicit-vs-symbolic on the preset matrix...");
    let mut preset_checks = 0usize;
    for case in certkit::presets::preset_cases() {
        for spec in &case.specs {
            preset_checks += 1;
            if let Some(dis) = differential(&case.graph, &spec.formula, &case.justice) {
                let name = format!(
                    "{}/{}/{} × {}",
                    case.domain, case.scenario, case.controller, spec.name
                );
                report_disagreement(&name, &dis, &case.justice, &mut repros);
            }
        }
    }
    if repros == 0 {
        println!("certkit: ok: {preset_checks} preset checks, backends agree");
    }

    // --- suite 2: randomized differential + certification ----------------
    println!(
        "certkit: randomized differential + certification ({random_cases} cases, seed {seed})..."
    );
    let vocab = gate_vocab();
    let justice_pool = [
        Vec::new(),
        vec![Justice::new("a io", ltlcheck::parse("a", &vocab).unwrap()).unwrap()],
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cert_failures = 0usize;
    for case in 0..random_cases {
        let graph = random_graph(&mut rng, &vocab);
        let phi = random_formula(&mut rng, &vocab, 3);
        let justice = &justice_pool[case % justice_pool.len()];
        if let Some(dis) = differential(&graph, &phi, justice) {
            report_disagreement(&format!("random case {case}"), &dis, justice, &mut repros);
        }
        let certified = ltlcheck::check_graph_fair_certified(&graph, &phi, justice);
        if let Err(e) = certkit::check_certified(&graph, &phi, justice, &certified) {
            eprintln!("certkit: FAIL: random case {case}: evidence rejected: {e}");
            cert_failures += 1;
        }
    }
    if repros == 0 && cert_failures == 0 {
        println!("certkit: ok: {random_cases} random cases, backends agree, all certified");
    }

    // --- suite 3: scaled-model differential under a time budget ----------
    println!(
        "certkit: scaled-model differential (budget {} ms)...",
        scaled_budget.as_millis()
    );
    let started = std::time::Instant::now();
    let mut scaled_checks = 0usize;
    for (i, case) in scaled_cases().iter().enumerate() {
        // The first scaled case always runs to completion; later cases
        // only start while budget remains.
        if i > 0 && started.elapsed() > scaled_budget {
            println!("certkit: scaled budget reached after {i} case(s)");
            break;
        }
        for spec in &case.specs {
            scaled_checks += 1;
            if let Some(dis) = differential(&case.graph, &spec.formula, &case.justice) {
                let name = format!("{} × {}", case.name, spec.name);
                report_disagreement(&name, &dis, &case.justice, &mut repros);
            }
        }
    }
    if repros == 0 {
        println!(
            "certkit: ok: {scaled_checks} scaled checks in {:.1?}, backends agree",
            started.elapsed()
        );
    }

    if repros == 0 && cert_failures == 0 {
        println!("certkit: gate passed");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "certkit: gate FAILED: {repros} backend disagreement(s), {cert_failures} rejected verdict(s)"
        );
        ExitCode::FAILURE
    }
}

/// Prints, minimizes and dumps one backend disagreement.
fn report_disagreement(name: &str, dis: &Disagreement, justice: &[Justice], repros: &mut usize) {
    eprintln!(
        "certkit: FAIL: {name}: explicit says {}, symbolic says {}",
        verdict_word(dis.explicit_holds),
        verdict_word(dis.symbolic_holds)
    );
    let min = minimize(dis, justice);
    let path = format!("certkit-repro-{}.json", *repros);
    match repro_json(&min).map(|json| std::fs::write(&path, json)) {
        Ok(Ok(())) => eprintln!(
            "certkit:       minimized to {} node(s), formula size {}; repro written to {path}",
            min.graph.num_nodes(),
            min.phi.size()
        ),
        Ok(Err(e)) => eprintln!("certkit:       could not write {path}: {e}"),
        Err(e) => eprintln!("certkit:       could not serialize repro: {e}"),
    }
    *repros += 1;
}

fn verdict_word(holds: bool) -> &'static str {
    if holds {
        "holds"
    } else {
        "fails"
    }
}

/// One scaled differential case: a product label graph, the specs to
/// check, and the justice assumptions in force.
struct ScaledCase {
    name: String,
    graph: LabelGraph,
    specs: Vec<ltlcheck::specs::Spec>,
    justice: Vec<Justice>,
}

/// The scaled cases, cheapest first: a 64-label conservative traffic
/// world (twice the A6 benchmark's label space) and a 6-aisle warehouse
/// corridor, each verified against its domain rule book.
fn scaled_cases() -> Vec<ScaledCase> {
    use autokit::{DeadlockPolicy, Product};
    let mut cases = Vec::new();

    let d = autokit::presets::DrivingDomain::new();
    let lex = glm2fsa::Lexicon::driving(&d);
    let ctrl = glm2fsa::synthesize(
        "turn right",
        &["If no car from the left and no pedestrian at your right, turn right."],
        &lex,
        glm2fsa::FsaOptions::default(),
    )
    .expect("canonical steps align");
    let ctrl = glm2fsa::with_default_action(&ctrl, d.stop);
    let model = drivesim::scaled::scaled_conservative_model(&d, 64);
    cases.push(ScaledCase {
        name: "driving/conservative-64".to_owned(),
        graph: Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter),
        specs: ltlcheck::specs::driving_specs(&d),
        justice: Vec::new(),
    });

    let w = warehouse::WarehouseDomain::new();
    let (task_name, steps) = speclint::presets::WAREHOUSE_STEPS[2];
    let options = glm2fsa::FsaOptions {
        non_blocking: ActSet::singleton(w.wait),
        ..glm2fsa::FsaOptions::default()
    };
    let ctrl = glm2fsa::synthesize(task_name, steps, &w.lexicon, options)
        .expect("canonical warehouse steps align");
    let ctrl = glm2fsa::with_default_action(&ctrl, w.wait);
    let model = w.scaled_floor_model(6);
    cases.push(ScaledCase {
        name: "warehouse/corridor-6".to_owned(),
        graph: Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter),
        specs: warehouse::warehouse_specs(&w),
        justice: warehouse::warehouse_justice(&w),
    });

    cases
}

/// The gate's random-case vocabulary: two propositions and one action,
/// mirroring the in-crate proptest generators.
fn gate_vocab() -> Vocab {
    let mut v = Vocab::new();
    v.add_prop("a").unwrap();
    v.add_prop("b").unwrap();
    v.add_act("s").unwrap();
    v
}

/// A random non-blocking label graph over the gate vocabulary: 1–6 nodes
/// with random labels, random edges, self-loops patched in where a node
/// would deadlock.
fn random_graph(rng: &mut StdRng, v: &Vocab) -> LabelGraph {
    let a = v.prop("a").unwrap();
    let b = v.prop("b").unwrap();
    let s = v.act("s").unwrap();
    let n = rng.gen_range(1usize..=6);
    let labels: Vec<(PropSet, ActSet)> = (0..n)
        .map(|_| {
            let mut props = PropSet::empty();
            if rng.gen_bool(0.5) {
                props.insert(a);
            }
            if rng.gen_bool(0.5) {
                props.insert(b);
            }
            let mut acts = ActSet::empty();
            if rng.gen_bool(0.5) {
                acts.insert(s);
            }
            (props, acts)
        })
        .collect();
    let mut succs = vec![Vec::new(); n];
    let edges = rng.gen_range(1usize..=2 * n);
    for _ in 0..edges {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        if !succs[from].contains(&to) {
            succs[from].push(to);
        }
    }
    for (i, out) in succs.iter_mut().enumerate() {
        if out.is_empty() {
            out.push(i);
        }
    }
    LabelGraph {
        origin: (0..n).map(|i| ProductState { model: i, ctrl: 0 }).collect(),
        labels,
        succs,
        initial: vec![0],
    }
}

/// A random LTL formula of bounded depth over the gate vocabulary.
fn random_formula(rng: &mut StdRng, v: &Vocab, depth: usize) -> Ltl {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        match rng.gen_range(0u8..5) {
            0 => Ltl::True,
            1 => Ltl::False,
            2 => Ltl::prop(v.prop("a").unwrap()),
            3 => Ltl::prop(v.prop("b").unwrap()),
            _ => Ltl::act(v.act("s").unwrap()),
        }
    } else {
        match rng.gen_range(0u8..6) {
            0 => Ltl::not(random_formula(rng, v, depth - 1)),
            1 => Ltl::next(random_formula(rng, v, depth - 1)),
            2 => Ltl::and(
                random_formula(rng, v, depth - 1),
                random_formula(rng, v, depth - 1),
            ),
            3 => Ltl::or(
                random_formula(rng, v, depth - 1),
                random_formula(rng, v, depth - 1),
            ),
            4 => Ltl::until(
                random_formula(rng, v, depth - 1),
                random_formula(rng, v, depth - 1),
            ),
            _ => Ltl::release(
                random_formula(rng, v, depth - 1),
                random_formula(rng, v, depth - 1),
            ),
        }
    }
}
