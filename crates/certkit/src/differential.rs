//! Explicit-vs-symbolic differential harness.
//!
//! Both `ltlcheck` backends — the explicit-state SCC search
//! ([`ltlcheck::check_graph_fair`]) and the BDD-based Emerson–Lei
//! fixpoint ([`ltlcheck::symbolic::check_graph_fair_symbolic`]) — decide
//! the same question. Any disagreement means at least one of them is
//! wrong, which would silently poison every preference pair the training
//! loop ranks. This module detects disagreements, shrinks them to a
//! minimal reproducer (greedy delta-debugging over graph nodes, edges
//! and formula subterms), and serializes the reproducer as JSON.

use autokit::LabelGraph;
use ltlcheck::symbolic::check_graph_fair_symbolic;
use ltlcheck::{check_graph_fair, Justice, Ltl};
use serde::{Deserialize, Serialize};

/// A case where the two backends returned different verdicts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Disagreement {
    /// The graph both backends checked.
    pub graph: LabelGraph,
    /// The specification both backends checked.
    pub phi: Ltl,
    /// Names of the justice assumptions in force (conditions are
    /// reconstructed by the repro consumer from its own domain).
    pub justice_names: Vec<String>,
    /// The explicit backend's verdict.
    pub explicit_holds: bool,
    /// The symbolic backend's verdict.
    pub symbolic_holds: bool,
}

/// Runs both backends; returns a [`Disagreement`] if their verdicts
/// differ, `None` when they agree.
pub fn differential(graph: &LabelGraph, phi: &Ltl, justice: &[Justice]) -> Option<Disagreement> {
    let explicit_holds = check_graph_fair(graph, phi, justice).holds();
    let symbolic_holds = check_graph_fair_symbolic(graph, phi, justice);
    if explicit_holds == symbolic_holds {
        return None;
    }
    Some(Disagreement {
        graph: graph.clone(),
        phi: phi.clone(),
        justice_names: justice.iter().map(|j| j.name().to_owned()).collect(),
        explicit_holds,
        symbolic_holds,
    })
}

/// Greedily shrinks a disagreement while it still reproduces: drop graph
/// nodes, then individual edges, then simplify the formula. Every
/// candidate is re-checked against both backends, so the result is a
/// (locally) minimal disagreement.
pub fn minimize(dis: &Disagreement, justice: &[Justice]) -> Disagreement {
    let still_disagrees = |graph: &LabelGraph, phi: &Ltl| -> bool {
        !graph.initial.is_empty()
            && check_graph_fair(graph, phi, justice).holds()
                != check_graph_fair_symbolic(graph, phi, justice)
    };
    let mut cur = dis.clone();
    loop {
        let mut shrunk = false;
        // Nodes.
        for v in 0..cur.graph.num_nodes() {
            if cur.graph.num_nodes() <= 1 {
                break;
            }
            let g = remove_node(&cur.graph, v);
            if still_disagrees(&g, &cur.phi) {
                cur.graph = g;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        // Edges.
        'edges: for v in 0..cur.graph.num_nodes() {
            for k in 0..cur.graph.succs[v].len() {
                let mut g = cur.graph.clone();
                g.succs[v].remove(k);
                if still_disagrees(&g, &cur.phi) {
                    cur.graph = g;
                    shrunk = true;
                    break 'edges;
                }
            }
        }
        if shrunk {
            continue;
        }
        // Formula. Only strictly smaller candidates are accepted, which
        // guarantees termination of the outer loop.
        for cand in shrinks(&cur.phi) {
            if cand.size() < cur.phi.size() && still_disagrees(&cur.graph, &cand) {
                cur.phi = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    cur.explicit_holds = check_graph_fair(&cur.graph, &cur.phi, justice).holds();
    cur.symbolic_holds = check_graph_fair_symbolic(&cur.graph, &cur.phi, justice);
    cur
}

/// The graph with node `v` (and all edges touching it) removed and the
/// remaining nodes re-indexed.
fn remove_node(graph: &LabelGraph, v: usize) -> LabelGraph {
    let remap = |u: usize| if u > v { u - 1 } else { u };
    let keep = |u: &usize| *u != v;
    LabelGraph {
        labels: graph
            .labels
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != v)
            .map(|(_, &l)| l)
            .collect(),
        origin: graph
            .origin
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != v)
            .map(|(_, &o)| o)
            .collect(),
        succs: graph
            .succs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != v)
            .map(|(_, s)| s.iter().filter(|u| keep(u)).map(|&u| remap(u)).collect())
            .collect(),
        initial: graph
            .initial
            .iter()
            .filter(|u| keep(u))
            .map(|&u| remap(u))
            .collect(),
    }
}

/// Shrink candidates for a formula: the constants, each operand, and
/// each operand recursively shrunk in place.
fn shrinks(phi: &Ltl) -> Vec<Ltl> {
    let mut out = vec![Ltl::True, Ltl::False];
    match phi {
        Ltl::True | Ltl::False | Ltl::Atom(_) => {}
        Ltl::Not(x) => {
            out.push((**x).clone());
            out.extend(shrinks(x).into_iter().map(Ltl::not));
        }
        Ltl::Next(x) => {
            out.push((**x).clone());
            out.extend(shrinks(x).into_iter().map(Ltl::next));
        }
        Ltl::And(l, r) => binary_shrinks(&mut out, l, r, Ltl::and),
        Ltl::Or(l, r) => binary_shrinks(&mut out, l, r, Ltl::or),
        Ltl::Until(l, r) => binary_shrinks(&mut out, l, r, Ltl::until),
        Ltl::Release(l, r) => binary_shrinks(&mut out, l, r, Ltl::release),
    }
    out
}

fn binary_shrinks(out: &mut Vec<Ltl>, l: &Ltl, r: &Ltl, rebuild: impl Fn(Ltl, Ltl) -> Ltl) {
    out.push(l.clone());
    out.push(r.clone());
    out.extend(shrinks(l).into_iter().map(|s| rebuild(s, r.clone())));
    out.extend(shrinks(r).into_iter().map(|s| rebuild(l.clone(), s)));
}

/// Serializes a disagreement as pretty-printed JSON, ready to be dumped
/// to a repro file.
///
/// # Errors
///
/// Returns the underlying serialization error, which for this plain data
/// type indicates a serializer bug.
pub fn repro_json(dis: &Disagreement) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(dis)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // ALLOW: test-only panics are the assertion mechanism.
    use super::*;
    use autokit::{ActSet, ProductState, PropSet, Vocab};
    use ltlcheck::parse;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    fn two_state_graph(v: &Vocab) -> LabelGraph {
        let a = v.prop("a").unwrap();
        LabelGraph {
            labels: vec![
                (PropSet::singleton(a), ActSet::empty()),
                (PropSet::empty(), ActSet::empty()),
            ],
            origin: vec![ProductState { model: 0, ctrl: 0 }; 2],
            succs: vec![vec![0, 1], vec![0, 1]],
            initial: vec![0],
        }
    }

    #[test]
    fn agreeing_backends_yield_none() {
        let v = vocab();
        let graph = two_state_graph(&v);
        for spec in ["G a", "F !a", "G F a", "a U b"] {
            let phi = parse(spec, &v).unwrap();
            assert!(differential(&graph, &phi, &[]).is_none(), "{spec}");
        }
    }

    /// Minimization shrinks a fabricated disagreement down to a tiny
    /// reproducer while preserving the property "backends disagree" —
    /// exercised here with a fake disagreement observed on an agreeing
    /// pair, where minimize must simply return a consistent record.
    #[test]
    fn minimize_is_stable_on_agreement() {
        let v = vocab();
        let graph = two_state_graph(&v);
        let phi = parse("G F a", &v).unwrap();
        let dis = Disagreement {
            graph: graph.clone(),
            phi: phi.clone(),
            justice_names: Vec::new(),
            explicit_holds: true,
            symbolic_holds: false,
        };
        // No shrink reproduces (there is no real disagreement), so the
        // record keeps its shape and the verdict fields are refreshed to
        // the true (agreeing) values.
        let min = minimize(&dis, &[]);
        assert_eq!(min.explicit_holds, min.symbolic_holds);
        assert_eq!(min.graph.num_nodes(), graph.num_nodes());
    }

    #[test]
    fn repro_round_trips_through_json() {
        let v = vocab();
        let dis = Disagreement {
            graph: two_state_graph(&v),
            phi: parse("G F a", &v).unwrap(),
            justice_names: vec!["a io".to_owned()],
            explicit_holds: true,
            symbolic_holds: false,
        };
        let json = repro_json(&dis).unwrap();
        let back: Disagreement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.graph, dis.graph);
        assert_eq!(back.phi, dis.phi);
        assert_eq!(back.justice_names, dis.justice_names);
    }
}
