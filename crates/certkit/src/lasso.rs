//! An independent LTL-on-lasso evaluator.
//!
//! This is certkit's own ground-truth oracle for ultimately periodic
//! words `prefix · cycleᵚ`. It deliberately shares **no code** with
//! `ltlcheck`: atoms are evaluated by a local match, and `Until`/
//! `Release` are decided by bounded forward scans along the (eventually
//! periodic) successor chain instead of the vector fixpoints
//! `ltlcheck::holds_on_lasso` uses. Agreement between the two
//! implementations is itself checked by property tests.

use autokit::{ActSet, PropSet};
use ltlcheck::{Atom, Ltl};

/// One step label of a word: observed propositions and emitted actions.
pub type Label = (PropSet, ActSet);

/// Evaluates an atom against one step label, without calling
/// [`Atom::holds`].
pub fn atom_holds(atom: Atom, props: PropSet, acts: ActSet) -> bool {
    match atom {
        Atom::Prop(p) => props.contains(p),
        Atom::Act(a) => acts.contains(a),
    }
}

/// Evaluates a **propositional** formula on one step label.
///
/// Returns `None` if the formula contains a temporal operator.
pub fn eval_prop(phi: &Ltl, props: PropSet, acts: ActSet) -> Option<bool> {
    match phi {
        Ltl::True => Some(true),
        Ltl::False => Some(false),
        Ltl::Atom(a) => Some(atom_holds(*a, props, acts)),
        Ltl::Not(inner) => eval_prop(inner, props, acts).map(|b| !b),
        Ltl::And(l, r) => Some(eval_prop(l, props, acts)? && eval_prop(r, props, acts)?),
        Ltl::Or(l, r) => Some(eval_prop(l, props, acts)? || eval_prop(r, props, acts)?),
        Ltl::Next(_) | Ltl::Until(_, _) | Ltl::Release(_, _) => None,
    }
}

/// Evaluates an LTL formula on the ultimately periodic word
/// `prefix · cycleᵚ` with exact infinite-word semantics.
///
/// Independent reimplementation of `ltlcheck::holds_on_lasso`; see the
/// module docs for how the algorithms differ.
///
/// # Panics
///
/// Panics if `cycle` is empty.
pub fn holds_on_lasso(phi: &Ltl, prefix: &[Label], cycle: &[Label]) -> bool {
    assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
    let p = prefix.len();
    let n = p + cycle.len();
    let succ = |i: usize| if i + 1 < n { i + 1 } else { p };
    let label = |i: usize| if i < p { prefix[i] } else { cycle[i - p] };
    eval(phi, n, &succ, &label)[0]
}

/// Per-position truth values of `phi` over the `n` positions of the
/// lasso, computed bottom-up.
fn eval(
    phi: &Ltl,
    n: usize,
    succ: &dyn Fn(usize) -> usize,
    label: &dyn Fn(usize) -> Label,
) -> Vec<bool> {
    match phi {
        Ltl::True => vec![true; n],
        Ltl::False => vec![false; n],
        Ltl::Atom(a) => (0..n)
            .map(|i| {
                let (props, acts) = label(i);
                atom_holds(*a, props, acts)
            })
            .collect(),
        Ltl::Not(inner) => eval(inner, n, succ, label).iter().map(|b| !b).collect(),
        Ltl::And(l, r) => {
            let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
            (0..n).map(|i| lv[i] && rv[i]).collect()
        }
        Ltl::Or(l, r) => {
            let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
            (0..n).map(|i| lv[i] || rv[i]).collect()
        }
        Ltl::Next(inner) => {
            let iv = eval(inner, n, succ, label);
            (0..n).map(|i| iv[succ(i)]).collect()
        }
        Ltl::Until(l, r) => {
            let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
            // Forward scan: `l U r` holds at `i` iff, walking the chain
            // from `i`, `r` is reached before `l` first fails. The chain
            // visits at most `n` distinct positions, so if `n + 1` steps
            // discharge nothing the obligation repeats forever.
            (0..n)
                .map(|i| {
                    let mut j = i;
                    for _ in 0..=n {
                        if rv[j] {
                            return true;
                        }
                        if !lv[j] {
                            return false;
                        }
                        j = succ(j);
                    }
                    false
                })
                .collect()
        }
        Ltl::Release(l, r) => {
            let (lv, rv) = (eval(l, n, succ, label), eval(r, n, succ, label));
            // Forward scan: `l R r` holds at `i` iff `r` holds along the
            // chain up to and including the first position where `l`
            // holds — or forever. Visiting `n + 1` positions without a
            // failure of `r` means `r` holds on every reachable position.
            (0..n)
                .map(|i| {
                    let mut j = i;
                    for _ in 0..=n {
                        if !rv[j] {
                            return false;
                        }
                        if lv[j] {
                            return true;
                        }
                        j = succ(j);
                    }
                    true
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // ALLOW: test-only panics are the assertion mechanism.
    use super::*;
    use autokit::Vocab;
    use ltlcheck::parse;
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    fn decode(word: &[u8], v: &Vocab) -> Vec<Label> {
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        word.iter()
            .map(|&bits| {
                let mut props = PropSet::empty();
                if bits & 1 != 0 {
                    props.insert(a);
                }
                if bits & 2 != 0 {
                    props.insert(b);
                }
                let mut acts = ActSet::empty();
                if bits & 4 != 0 {
                    acts.insert(s);
                }
                (props, acts)
            })
            .collect()
    }

    #[test]
    fn eval_prop_rejects_temporal() {
        let v = vocab();
        let phi = parse("F a", &v).unwrap();
        assert_eq!(eval_prop(&phi, PropSet::empty(), ActSet::empty()), None);
        let phi = parse("a & !b", &v).unwrap();
        let a = v.prop("a").unwrap();
        assert_eq!(
            eval_prop(&phi, PropSet::singleton(a), ActSet::empty()),
            Some(true)
        );
        assert_eq!(
            eval_prop(&phi, PropSet::empty(), ActSet::empty()),
            Some(false)
        );
    }

    #[test]
    fn scan_semantics_basics() {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let la = (PropSet::singleton(a), ActSet::empty());
        let l0 = (PropSet::empty(), ActSet::empty());
        let gfa = parse("G F a", &v).unwrap();
        assert!(holds_on_lasso(&gfa, &[], &[l0, la]));
        assert!(!holds_on_lasso(&gfa, &[la, la], &[l0]));
        let until = parse("a U b", &v).unwrap();
        assert!(!holds_on_lasso(&until, &[], &[la]));
        let release = parse("b R a", &v).unwrap();
        assert!(holds_on_lasso(&release, &[], &[la]));
    }

    fn arb_ltl() -> impl Strategy<Value = Ltl> {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
            Just(Ltl::act(s)),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The scan-based evaluator agrees with ltlcheck's fixpoint-based
        /// oracle on random formulas and random lasso words.
        #[test]
        fn agrees_with_ltlcheck_oracle(
            prefix_raw in proptest::collection::vec(0u8..8, 0..4),
            cycle_raw in proptest::collection::vec(0u8..8, 1..4),
            phi in arb_ltl(),
        ) {
            let v = vocab();
            let prefix = decode(&prefix_raw, &v);
            let cycle = decode(&cycle_raw, &v);
            let ours = holds_on_lasso(&phi, &prefix, &cycle);
            let theirs = ltlcheck::holds_on_lasso(&phi, &prefix, &cycle);
            prop_assert_eq!(ours, theirs, "phi = {:?}", phi);
        }
    }
}
