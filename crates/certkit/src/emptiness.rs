//! Linear-time validation of emptiness certificates.
//!
//! A [`HoldsCertificate`] claims: *no fair accepting cycle is reachable
//! in the product of the graph with the Büchi automaton of `¬φ`*. The
//! checker re-derives every part of that claim from the graph and the
//! certificate data — it never re-runs the search, never rebuilds the
//! automaton, and evaluates all label constraints with certkit's own
//! atom evaluator. The one thing it trusts is that the embedded
//! automaton is a faithful translation of `¬φ` (see DESIGN.md's trust
//! argument for how that residual assumption is discharged).

use crate::lasso::{atom_holds, eval_prop};
use crate::CertError;
use autokit::LabelGraph;
use ltlcheck::{HoldsCertificate, Justice};
use std::collections::HashMap;

/// Validates a [`ltlcheck::Verdict::Holds`] emptiness certificate.
///
/// Checks, in time linear in the certificate and the product edges:
/// 1. `states` and `comp` have equal length, all entries are in range,
///    and no product pair is listed twice;
/// 2. every label-consistent initial pair is listed;
/// 3. the listed set is closed under label-consistent successors;
/// 4. edges never increase the component id, so any cycle is confined to
///    one component;
/// 5. no component simultaneously has an internal edge, an accepting
///    state, and a witness for every justice condition.
///
/// Together, 2–5 imply the product contains no reachable fair accepting
/// cycle: a violating run would consist entirely of listed pairs (by 2
/// and 3), eventually stay inside one component (by 4), and that
/// component would be fair and accepting with a real cycle —
/// contradicting 5.
///
/// # Errors
///
/// Returns the first failed check as a [`CertError`].
pub fn check_holds(
    graph: &LabelGraph,
    justice: &[Justice],
    cert: &HoldsCertificate,
) -> Result<(), CertError> {
    let HoldsCertificate {
        buchi,
        states,
        comp,
    } = cert;
    let bs = buchi.states();
    let nb = bs.len();
    // An empty automaton accepts nothing: the negated specification is
    // unsatisfiable, so the specification holds on every graph.
    if nb == 0 {
        return Ok(());
    }
    if states.len() != comp.len() {
        return Err(CertError::LengthMismatch {
            states: states.len(),
            comps: comp.len(),
        });
    }

    let ng = graph.num_nodes();
    // Label consistency, evaluated with certkit's own atom semantics.
    let matches = |g: usize, b: usize| -> bool {
        let (props, acts) = graph.labels[g];
        bs[b].pos.iter().all(|&a| atom_holds(a, props, acts))
            && bs[b].neg.iter().all(|&a| !atom_holds(a, props, acts))
    };

    // --- check 1: well-formedness ---------------------------------------
    let mut index: HashMap<(u32, u32), usize> = HashMap::with_capacity(states.len());
    for (i, &s) in states.iter().enumerate() {
        if s.0 as usize >= ng || s.1 as usize >= nb {
            return Err(CertError::StateOutOfRange { state: s });
        }
        if index.insert(s, i).is_some() {
            return Err(CertError::DuplicateState { state: s });
        }
    }
    for st in bs {
        if st.succs.iter().any(|&b2| b2 >= nb) {
            return Err(CertError::MalformedAutomaton);
        }
    }
    if buchi.initial().iter().any(|&b| b >= nb) {
        return Err(CertError::MalformedAutomaton);
    }

    // --- check 2: initial coverage --------------------------------------
    for &g in &graph.initial {
        for &b in buchi.initial() {
            if matches(g, b) && !index.contains_key(&(g as u32, b as u32)) {
                return Err(CertError::MissingInitial {
                    state: (g as u32, b as u32),
                });
            }
        }
    }

    // --- checks 3–5: closure, ranking, per-component fairness -----------
    let num_comps = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let nf = justice.len();
    let mut has_edge = vec![false; num_comps];
    let mut accept = vec![false; num_comps];
    let mut fair = vec![vec![false; nf]; num_comps];
    for (i, &(g, b)) in states.iter().enumerate() {
        let c = comp[i] as usize;
        if bs[b as usize].accepting {
            accept[c] = true;
        }
        let (props, acts) = graph.labels[g as usize];
        for (j, cond) in justice.iter().enumerate() {
            match eval_prop(cond.condition(), props, acts) {
                Some(true) => fair[c][j] = true,
                Some(false) => {}
                None => {
                    return Err(CertError::NonPropositionalJustice {
                        name: cond.name().to_owned(),
                    })
                }
            }
        }
        for &g2 in &graph.succs[g as usize] {
            for &b2 in &bs[b as usize].succs {
                if !matches(g2, b2) {
                    continue;
                }
                let t = (g2 as u32, b2 as u32);
                let Some(&i2) = index.get(&t) else {
                    return Err(CertError::MissingSuccessor {
                        from: (g, b),
                        to: t,
                    });
                };
                let c2 = comp[i2] as usize;
                if c2 > c {
                    return Err(CertError::RankIncrease {
                        from: (g, b),
                        to: t,
                    });
                }
                if c2 == c {
                    has_edge[c] = true;
                }
            }
        }
    }
    for c in 0..num_comps {
        if has_edge[c] && accept[c] && (0..nf).all(|j| fair[c][j]) {
            return Err(CertError::FairComponent { comp: c as u32 });
        }
    }
    Ok(())
}
