//! Independent re-validation of lasso counterexamples.
//!
//! A [`Counterexample`] returned by the model checker is an existential
//! claim: *this* infinite behaviour exists in the product graph, is fair,
//! and violates the specification. All three parts are re-derived here
//! from the graph and the formula alone — nothing about how the lasso
//! was found is trusted.

use crate::lasso::{self, eval_prop};
use crate::CertError;
use autokit::LabelGraph;
use ltlcheck::{CexStep, Counterexample, Justice, Ltl};
use std::collections::BTreeSet;

/// Graph nodes that could have produced `step`: same product origin and
/// the exact same step label.
fn candidates(graph: &LabelGraph, step: &CexStep) -> Vec<usize> {
    (0..graph.num_nodes())
        .filter(|&i| graph.origin[i] == step.state && graph.labels[i] == (step.props, step.acts))
        .collect()
}

/// Validates a [`ltlcheck::Verdict::Fails`] witness against the graph,
/// the justice assumptions and the specification.
///
/// Checks, in order:
/// 1. the cycle is non-empty and each step corresponds to at least one
///    graph node (matching origin **and** label);
/// 2. some assignment of steps to nodes closes the cycle along real
///    graph edges;
/// 3. the stem starts at an initial node, follows real edges, and
///    connects to a viable cycle entry (or, with an empty stem, a viable
///    cycle entry is itself initial);
/// 4. every justice condition holds at some cycle step (re-evaluated by
///    certkit's own propositional evaluator);
/// 5. the lasso word satisfies `¬φ` per certkit's independent
///    [`lasso::holds_on_lasso`] oracle.
///
/// # Errors
///
/// Returns the first failed check as a [`CertError`].
pub fn check_fails(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
    cex: &Counterexample,
) -> Result<(), CertError> {
    if cex.cycle.is_empty() {
        return Err(CertError::EmptyCycle);
    }

    // --- step 1: per-step candidate nodes -------------------------------
    let cyc: Vec<Vec<usize>> = cex.cycle.iter().map(|s| candidates(graph, s)).collect();
    for (k, c) in cyc.iter().enumerate() {
        if c.is_empty() {
            return Err(CertError::CycleStepNotInGraph { step: k });
        }
    }

    // --- step 2: close the cycle along real edges -----------------------
    // A cycle entry `v` is viable if a path v → cyc[1] → … → cyc[last]
    // exists with an edge back to `v`. Forward set-filtering per entry.
    let viable: Vec<usize> = cyc[0]
        .iter()
        .copied()
        .filter(|&v| {
            let mut cur: BTreeSet<usize> = BTreeSet::from([v]);
            for next in cyc.iter().skip(1) {
                cur = cur
                    .iter()
                    .flat_map(|&u| graph.succs[u].iter().copied())
                    .filter(|x| next.contains(x))
                    .collect();
                if cur.is_empty() {
                    return false;
                }
            }
            cur.iter().any(|&u| graph.succs[u].contains(&v))
        })
        .collect();
    if viable.is_empty() {
        return Err(CertError::CycleNotClosed);
    }

    // --- step 3: stem from an initial node into the cycle ---------------
    if cex.stem.is_empty() {
        if !viable.iter().any(|v| graph.initial.contains(v)) {
            return Err(CertError::StemNotInitial);
        }
    } else {
        let stems: Vec<Vec<usize>> = cex.stem.iter().map(|s| candidates(graph, s)).collect();
        for (k, c) in stems.iter().enumerate() {
            if c.is_empty() {
                return Err(CertError::StemStepNotInGraph { step: k });
            }
        }
        let mut cur: BTreeSet<usize> = stems[0]
            .iter()
            .copied()
            .filter(|v| graph.initial.contains(v))
            .collect();
        if cur.is_empty() {
            return Err(CertError::StemNotInitial);
        }
        for (k, next) in stems.iter().enumerate().skip(1) {
            cur = cur
                .iter()
                .flat_map(|&u| graph.succs[u].iter().copied())
                .filter(|x| next.contains(x))
                .collect();
            if cur.is_empty() {
                return Err(CertError::StemStepNotInGraph { step: k });
            }
        }
        let connects = cur
            .iter()
            .any(|&u| viable.iter().any(|&v| graph.succs[u].contains(&v)));
        if !connects {
            return Err(CertError::StemDisconnected);
        }
    }

    // --- step 4: justice recurrence on the cycle ------------------------
    for j in justice {
        let mut witnessed = false;
        for s in &cex.cycle {
            match eval_prop(j.condition(), s.props, s.acts) {
                Some(true) => {
                    witnessed = true;
                    break;
                }
                Some(false) => {}
                None => {
                    return Err(CertError::NonPropositionalJustice {
                        name: j.name().to_owned(),
                    })
                }
            }
        }
        if !witnessed {
            return Err(CertError::JusticeUnwitnessed {
                name: j.name().to_owned(),
            });
        }
    }

    // --- step 5: the word violates the specification --------------------
    let neg = Ltl::not(phi.clone());
    if !lasso::holds_on_lasso(&neg, &cex.stem_labels(), &cex.cycle_labels()) {
        return Err(CertError::FormulaNotViolated);
    }
    Ok(())
}
