//! The preset certification matrix: every shipped scenario × rule-book
//! pair, with the controllers the repo actually ships (the paper's
//! demonstration step lists plus a maximally permissive free
//! controller), ready to be certified case by case.
//!
//! Reuses `speclint::presets` for the canonical step lists and
//! `drivesim::formal` for the scenario models and justice assumptions,
//! so certification runs against exactly the artifacts the pipeline
//! verifies.

// ALLOW: preset construction mirrors speclint::presets: everything is built
// from compile-time constants, so a failure is a bug in this crate.
#![allow(clippy::expect_used)]

use autokit::presets::DrivingDomain;
use autokit::{ActSet, DeadlockPolicy, LabelGraph, Product};
use drivesim::formal::{scenario_justice, scenario_model};
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action, FsaOptions, Lexicon};
use ltlcheck::specs::{driving_specs, Spec};
use ltlcheck::Justice;
use speclint::presets::{
    free_controller, LEFT_TURN_AFTER, LEFT_TURN_BEFORE, RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE,
    WAREHOUSE_STEPS,
};
use warehouse::{warehouse_justice, warehouse_specs, WarehouseDomain};

/// One certification case: a controller implemented in a scenario,
/// checked against a rule book under justice assumptions.
#[derive(Debug, Clone)]
pub struct PresetCase {
    /// `"driving"` or `"warehouse"`.
    pub domain: &'static str,
    /// Scenario name, e.g. `"TrafficLight"`.
    pub scenario: String,
    /// Controller name, e.g. `"turn right (after fine-tuning)"`.
    pub controller: String,
    /// The product label graph `M ⊗ C`.
    pub graph: LabelGraph,
    /// The rule book to certify against.
    pub specs: Vec<Spec>,
    /// The scenario's justice assumptions.
    pub justice: Vec<Justice>,
}

/// Builds every preset scenario × rule-book case.
///
/// Driving: the four paper demonstration controllers (each in its own
/// scenario) and the free controller in all five scenarios, against the
/// 15-rule book. Warehouse: the four canonical task controllers and the
/// free controller on the floor model, against the 8-rule book. The
/// matrix deliberately mixes controllers that satisfy most rules with
/// ones that violate many, so both `Holds` and `Fails` certification
/// paths are exercised.
pub fn preset_cases() -> Vec<PresetCase> {
    let mut cases = Vec::new();

    // --- driving --------------------------------------------------------
    let d = DrivingDomain::new();
    let lexicon = Lexicon::driving(&d);
    let specs = driving_specs(&d);
    let options = || FsaOptions {
        non_blocking: ActSet::singleton(d.stop),
        ..FsaOptions::default()
    };
    let demos: [(&str, &[&str], ScenarioKind); 4] = [
        (
            "turn right (before fine-tuning)",
            &RIGHT_TURN_BEFORE,
            ScenarioKind::TrafficLight,
        ),
        (
            "turn right (after fine-tuning)",
            &RIGHT_TURN_AFTER,
            ScenarioKind::TrafficLight,
        ),
        (
            "turn left (before fine-tuning)",
            &LEFT_TURN_BEFORE,
            ScenarioKind::LeftTurnSignal,
        ),
        (
            "turn left (after fine-tuning)",
            &LEFT_TURN_AFTER,
            ScenarioKind::LeftTurnSignal,
        ),
    ];
    for (name, steps, kind) in demos {
        let ctrl = synthesize(name, steps, &lexicon, options()).expect("paper demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        let model = scenario_model(&d, kind);
        cases.push(PresetCase {
            domain: "driving",
            scenario: format!("{kind:?}"),
            controller: name.to_owned(),
            graph: Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter),
            specs: specs.clone(),
            justice: scenario_justice(&d, kind),
        });
    }
    let free = free_controller(
        "free (driving)",
        &[d.stop, d.turn_left, d.turn_right, d.go_straight].map(ActSet::singleton),
    );
    for kind in ScenarioKind::all() {
        let model = scenario_model(&d, kind);
        cases.push(PresetCase {
            domain: "driving",
            scenario: format!("{kind:?}"),
            controller: "free (driving)".to_owned(),
            graph: Product::build(&model, &free).label_graph(DeadlockPolicy::Stutter),
            specs: specs.clone(),
            justice: scenario_justice(&d, kind),
        });
    }

    // --- warehouse ------------------------------------------------------
    let w = WarehouseDomain::new();
    let wspecs = warehouse_specs(&w);
    let wjustice = warehouse_justice(&w);
    let floor = w.floor_model();
    for (name, steps) in WAREHOUSE_STEPS {
        let options = FsaOptions {
            non_blocking: ActSet::singleton(w.wait),
            ..FsaOptions::default()
        };
        let ctrl =
            synthesize(name, steps, &w.lexicon, options).expect("canonical warehouse steps align");
        let ctrl = with_default_action(&ctrl, w.wait);
        cases.push(PresetCase {
            domain: "warehouse",
            scenario: "WarehouseFloor".to_owned(),
            controller: name.to_owned(),
            graph: Product::build(&floor, &ctrl).label_graph(DeadlockPolicy::Stutter),
            specs: wspecs.clone(),
            justice: wjustice.clone(),
        });
    }
    let wfree = free_controller(
        "free (warehouse)",
        &[w.move_forward, w.pick, w.place, w.wait, w.dock].map(ActSet::singleton),
    );
    cases.push(PresetCase {
        domain: "warehouse",
        scenario: "WarehouseFloor".to_owned(),
        controller: "free (warehouse)".to_owned(),
        graph: Product::build(&floor, &wfree).label_graph(DeadlockPolicy::Stutter),
        specs: wspecs,
        justice: wjustice,
    });

    cases
}
