//! # certkit — certifying model checking for `ltlcheck`
//!
//! Every preference pair the DPO-AF training loop ranks is labeled by an
//! `ltlcheck` verdict, so a single model-checker bug silently poisons
//! the entire training signal. certkit turns every [`Verdict`] into a
//! **machine-checkable claim** and validates it with an independent
//! checker that trusts nothing about how the verdict was produced:
//!
//! * [`Verdict::Fails`] — the attached lasso counterexample is
//!   re-validated from scratch: its stem and cycle are matched against
//!   real edges of the product [`LabelGraph`], justice conditions are
//!   re-evaluated on the cycle, and the negated specification is checked
//!   on the lasso word by certkit's own tableau-free evaluator
//!   ([`lasso::holds_on_lasso`]), independent of the Büchi construction.
//! * [`Verdict::Holds`] — the search emits an emptiness certificate
//!   ([`ltlcheck::HoldsCertificate`]): the explored product state set
//!   plus a component ranking. [`emptiness::check_holds`] validates it
//!   in linear time — initial coverage, successor closure, monotone
//!   ranking, and no fair accepting component — without re-running the
//!   search or reconstructing the automaton.
//!
//! On top sits the [`differential`] harness: the explicit-state and
//! symbolic (BDD) backends are run against each other on every preset
//! scenario × rule-book pair and on randomized graphs/formulas, with any
//! disagreement minimized and dumped as a JSON reproducer.
//!
//! The trust argument (what is assumed vs. re-derived) is laid out in
//! the repository's DESIGN.md.
//!
//! ## Example
//!
//! ```
//! use autokit::{ActSet, ControllerBuilder, Guard, Product, PropSet, Vocab, WorldModel};
//! use autokit::DeadlockPolicy;
//! use ltlcheck::{check_graph_fair_certified, parse};
//!
//! let mut v = Vocab::new();
//! let green = v.add_prop("green")?;
//! let go = v.add_act("go")?;
//! let mut model = WorldModel::new("light");
//! let g = model.add_state(PropSet::singleton(green));
//! let r = model.add_state(PropSet::empty());
//! model.add_transition(g, r);
//! model.add_transition(r, g);
//! model.add_transition(g, g);
//! model.add_transition(r, r);
//! let ctrl = ControllerBuilder::new("go on green", 1)
//!     .initial(0)
//!     .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
//!     .transition(0, Guard::always().forbids(green), ActSet::empty(), 0)
//!     .build()?;
//! let graph = Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter);
//!
//! let phi = parse("G(!green -> !go)", &v)?;
//! let certified = check_graph_fair_certified(&graph, &phi, &[]);
//! assert!(certified.holds());
//! // The verdict is accepted only because its certificate survives the
//! // independent checker:
//! certkit::check_certified(&graph, &phi, &[], &certified)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counterexample;
pub mod differential;
pub mod emptiness;
pub mod lasso;
pub mod presets;

use autokit::LabelGraph;
use ltlcheck::{CertifiedVerdict, Justice, Ltl, Verdict};
use std::fmt;

/// Why a certificate (or counterexample) was rejected.
///
/// Any of these firing against a verdict produced by `ltlcheck` means a
/// bug in the model checker (or a corrupted certificate) — the verdict
/// must not be used as a training label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// A lasso counterexample with an empty cycle.
    EmptyCycle,
    /// A cycle step matches no graph node (origin + label).
    CycleStepNotInGraph {
        /// Index into the cycle.
        step: usize,
    },
    /// The cycle cannot be closed along real graph edges.
    CycleNotClosed,
    /// A stem step matches no graph node or is unreachable from its
    /// predecessor.
    StemStepNotInGraph {
        /// Index into the stem.
        step: usize,
    },
    /// The first lasso state is not an initial node.
    StemNotInitial,
    /// The stem never connects to a viable cycle entry.
    StemDisconnected,
    /// A justice condition is never witnessed on the cycle.
    JusticeUnwitnessed {
        /// The justice assumption's name.
        name: String,
    },
    /// A justice condition contains temporal operators.
    NonPropositionalJustice {
        /// The justice assumption's name.
        name: String,
    },
    /// The lasso word does not satisfy the negated specification.
    FormulaNotViolated,
    /// `states` and `comp` disagree in length.
    LengthMismatch {
        /// Number of listed product states.
        states: usize,
        /// Number of component entries.
        comps: usize,
    },
    /// A listed product pair is out of range for the graph or automaton.
    StateOutOfRange {
        /// The offending `(graph node, Büchi state)` pair.
        state: (u32, u32),
    },
    /// A product pair is listed twice.
    DuplicateState {
        /// The duplicated pair.
        state: (u32, u32),
    },
    /// The embedded automaton has out-of-range successor or initial ids.
    MalformedAutomaton,
    /// A label-consistent initial pair is missing from the certificate.
    MissingInitial {
        /// The missing pair.
        state: (u32, u32),
    },
    /// A label-consistent successor of a listed pair is missing.
    MissingSuccessor {
        /// The listed pair.
        from: (u32, u32),
        /// Its unlisted successor.
        to: (u32, u32),
    },
    /// An edge increases the component id, breaking the acyclicity
    /// argument of the ranking.
    RankIncrease {
        /// Edge source.
        from: (u32, u32),
        /// Edge target.
        to: (u32, u32),
    },
    /// A component has an internal edge, an accepting state and all
    /// justice witnesses — i.e. the certificate itself exhibits a fair
    /// accepting cycle.
    FairComponent {
        /// The offending component id.
        comp: u32,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::EmptyCycle => write!(f, "counterexample cycle is empty"),
            CertError::CycleStepNotInGraph { step } => {
                write!(f, "cycle step {step} matches no graph node")
            }
            CertError::CycleNotClosed => {
                write!(f, "cycle cannot be closed along graph edges")
            }
            CertError::StemStepNotInGraph { step } => {
                write!(f, "stem step {step} matches no reachable graph node")
            }
            CertError::StemNotInitial => {
                write!(f, "lasso does not start at an initial node")
            }
            CertError::StemDisconnected => {
                write!(f, "stem does not connect to a viable cycle entry")
            }
            CertError::JusticeUnwitnessed { name } => {
                write!(f, "justice condition `{name}` never holds on the cycle")
            }
            CertError::NonPropositionalJustice { name } => {
                write!(f, "justice condition `{name}` is not propositional")
            }
            CertError::FormulaNotViolated => {
                write!(f, "lasso word does not violate the specification")
            }
            CertError::LengthMismatch { states, comps } => {
                write!(
                    f,
                    "certificate lists {states} states but {comps} components"
                )
            }
            CertError::StateOutOfRange { state } => {
                write!(f, "certificate state {state:?} is out of range")
            }
            CertError::DuplicateState { state } => {
                write!(f, "certificate state {state:?} is listed twice")
            }
            CertError::MalformedAutomaton => {
                write!(f, "embedded automaton has out-of-range ids")
            }
            CertError::MissingInitial { state } => {
                write!(
                    f,
                    "initial product state {state:?} missing from certificate"
                )
            }
            CertError::MissingSuccessor { from, to } => {
                write!(f, "successor {to:?} of listed state {from:?} missing")
            }
            CertError::RankIncrease { from, to } => {
                write!(f, "edge {from:?} -> {to:?} increases the component rank")
            }
            CertError::FairComponent { comp } => {
                write!(f, "component {comp} is a reachable fair accepting cycle")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Validates a certified verdict against the graph, formula and justice
/// assumptions it claims to decide.
///
/// Dispatches to [`counterexample::check_fails`] for `Fails` and
/// [`emptiness::check_holds`] for `Holds`.
///
/// # Errors
///
/// Returns the first failed validation step as a [`CertError`].
pub fn check_certified(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
    certified: &CertifiedVerdict,
) -> Result<(), CertError> {
    match certified {
        CertifiedVerdict::Holds(cert) => emptiness::check_holds(graph, justice, cert),
        CertifiedVerdict::Fails(cex) => counterexample::check_fails(graph, phi, justice, cex),
    }
}

/// Convenience wrapper: model-check with certificates and validate the
/// evidence in one call.
///
/// # Errors
///
/// Returns a [`CertError`] when the produced evidence fails validation —
/// which indicates a model-checker bug, never a property of the input.
pub fn check_graph_fair_validated(
    graph: &LabelGraph,
    phi: &Ltl,
    justice: &[Justice],
) -> Result<Verdict, CertError> {
    let certified = ltlcheck::check_graph_fair_certified(graph, phi, justice);
    check_certified(graph, phi, justice, &certified)?;
    Ok(certified.verdict())
}

/// Outcome counters from a certification sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateReport {
    /// Scenario × controller cases certified.
    pub cases: usize,
    /// Individual specification checks certified.
    pub checks: usize,
    /// `Holds` verdicts validated.
    pub holds: usize,
    /// `Fails` verdicts validated.
    pub fails: usize,
}

/// Certifies every preset scenario × rule-book case: each specification
/// is model-checked with certificates, and each verdict's evidence is
/// validated independently.
///
/// # Errors
///
/// Returns the human-readable case name and the validation error for the
/// first rejected verdict.
pub fn certify_presets() -> Result<GateReport, (String, CertError)> {
    let mut report = GateReport::default();
    for case in presets::preset_cases() {
        report.cases += 1;
        for spec in &case.specs {
            let certified =
                ltlcheck::check_graph_fair_certified(&case.graph, &spec.formula, &case.justice);
            if let Err(e) = check_certified(&case.graph, &spec.formula, &case.justice, &certified) {
                let name = format!(
                    "{}/{}/{} × {}",
                    case.domain, case.scenario, case.controller, spec.name
                );
                return Err((name, e));
            }
            report.checks += 1;
            if certified.holds() {
                report.holds += 1;
            } else {
                report.fails += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // ALLOW: test-only panics are the assertion mechanism.
    use super::*;
    use autokit::{ActSet, ControllerBuilder, Guard, ProductState, PropSet, Vocab};
    use ltlcheck::{check_graph_fair_certified, parse, Counterexample};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").unwrap();
        v.add_prop("b").unwrap();
        v.add_act("s").unwrap();
        v
    }

    fn decode(word: &[u8], v: &Vocab) -> Vec<(PropSet, ActSet)> {
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        word.iter()
            .map(|&bits| {
                let mut props = PropSet::empty();
                if bits & 1 != 0 {
                    props.insert(a);
                }
                if bits & 2 != 0 {
                    props.insert(b);
                }
                let mut acts = ActSet::empty();
                if bits & 4 != 0 {
                    acts.insert(s);
                }
                (props, acts)
            })
            .collect()
    }

    fn light_setup() -> (Vocab, LabelGraph, LabelGraph) {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        v.add_prop("ped").unwrap();
        let go = v.add_act("go").unwrap();
        let stop = v.add_act("stop").unwrap();
        let mut model = autokit::WorldModel::new("light");
        let g = model.add_state(PropSet::singleton(green));
        let r = model.add_state(PropSet::empty());
        model.add_transition(g, r);
        model.add_transition(r, g);
        model.add_transition(g, g);
        model.add_transition(r, r);
        let good = ControllerBuilder::new("good", 1)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
            .transition(
                0,
                Guard::always().forbids(green),
                ActSet::singleton(stop),
                0,
            )
            .build()
            .unwrap();
        let reckless = ControllerBuilder::new("reckless", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 0)
            .build()
            .unwrap();
        let gg =
            autokit::Product::build(&model, &good).label_graph(autokit::DeadlockPolicy::Stutter);
        let gr = autokit::Product::build(&model, &reckless)
            .label_graph(autokit::DeadlockPolicy::Stutter);
        (v, gg, gr)
    }

    #[test]
    fn validates_holds_and_fails_on_the_light() {
        let (v, good, reckless) = light_setup();
        let phi = parse("G(!green -> !go)", &v).unwrap();
        let cv = check_graph_fair_certified(&good, &phi, &[]);
        assert!(cv.holds());
        check_certified(&good, &phi, &[], &cv).unwrap();
        let cv = check_graph_fair_certified(&reckless, &phi, &[]);
        assert!(!cv.holds());
        check_certified(&reckless, &phi, &[], &cv).unwrap();
    }

    #[test]
    fn rejects_tampered_counterexample() {
        let (v, _, reckless) = light_setup();
        let phi = parse("G(!green -> !go)", &v).unwrap();
        let cv = check_graph_fair_certified(&reckless, &phi, &[]);
        let CertifiedVerdict::Fails(cex) = cv else {
            panic!("expected violation");
        };

        // Empty cycle.
        let tampered = Counterexample {
            stem: cex.stem.clone(),
            cycle: Vec::new(),
        };
        assert_eq!(
            counterexample::check_fails(&reckless, &phi, &[], &tampered),
            Err(CertError::EmptyCycle)
        );

        // A cycle step whose label exists nowhere in the graph.
        let mut tampered = cex.clone();
        tampered.cycle[0].state = ProductState {
            model: 99,
            ctrl: 99,
        };
        assert!(matches!(
            counterexample::check_fails(&reckless, &phi, &[], &tampered),
            Err(CertError::CycleStepNotInGraph { .. })
        ));

        // A lasso that exists but does not violate the specification:
        // fabricate it from a formula the graph satisfies.
        let sat = parse("F go", &v).unwrap();
        assert!(ltlcheck::check_graph_fair(&reckless, &sat, &[]).holds());
        assert_eq!(
            counterexample::check_fails(&reckless, &sat, &[], &cex),
            Err(CertError::FormulaNotViolated)
        );
    }

    #[test]
    fn rejects_tampered_certificate() {
        let (v, good, _) = light_setup();
        let phi = parse("G(!green -> !go)", &v).unwrap();
        let cv = check_graph_fair_certified(&good, &phi, &[]);
        let CertifiedVerdict::Holds(cert) = cv else {
            panic!("expected holds");
        };

        // Dropping any state breaks initial coverage or closure.
        let mut tampered = cert.clone();
        tampered.states.pop();
        tampered.comp.pop();
        assert!(emptiness::check_holds(&good, &[], &tampered).is_err());

        // Raising one state's rank creates an edge into a higher
        // component, breaking the acyclicity argument.
        let mut tampered = cert.clone();
        tampered.comp[0] += 1;
        assert!(matches!(
            emptiness::check_holds(&good, &[], &tampered),
            Err(CertError::RankIncrease { .. })
        ));

        // An out-of-range product pair is rejected outright.
        let mut tampered = cert.clone();
        tampered.states[0] = (u32::MAX, u32::MAX);
        assert!(matches!(
            emptiness::check_holds(&good, &[], &tampered),
            Err(CertError::StateOutOfRange { .. })
        ));

        // Length mismatch is rejected outright.
        let mut tampered = cert.clone();
        tampered.comp.pop();
        assert_eq!(
            emptiness::check_holds(&good, &[], &tampered),
            Err(CertError::LengthMismatch {
                states: tampered.states.len(),
                comps: tampered.comp.len(),
            })
        );

        // Duplicating a state is rejected.
        let mut tampered = cert.clone();
        let s0 = tampered.states[0];
        let c0 = tampered.comp[0];
        tampered.states.push(s0);
        tampered.comp.push(c0);
        assert_eq!(
            emptiness::check_holds(&good, &[], &tampered),
            Err(CertError::DuplicateState { state: s0 })
        );
    }

    #[test]
    fn preset_gate_passes_and_covers_both_verdicts() {
        let report = certify_presets().unwrap_or_else(|(name, e)| {
            panic!("preset certification failed on {name}: {e}");
        });
        assert!(report.cases >= 14, "{report:?}");
        assert!(report.checks >= 170, "{report:?}");
        assert!(report.holds > 0, "{report:?}");
        assert!(report.fails > 0, "{report:?}");
    }

    fn arb_ltl() -> impl Strategy<Value = ltlcheck::Ltl> {
        let v = vocab();
        let a = v.prop("a").unwrap();
        let b = v.prop("b").unwrap();
        let s = v.act("s").unwrap();
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            Just(Ltl::prop(a)),
            Just(Ltl::prop(b)),
            Just(Ltl::act(s)),
        ];
        leaf.prop_recursive(3, 20, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                inner.clone().prop_map(Ltl::next),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
            ]
        })
    }

    fn arb_graph() -> impl Strategy<Value = LabelGraph> {
        (
            proptest::collection::vec(0u8..8, 1..6),
            proptest::collection::vec((0usize..6, 0usize..6), 1..12),
        )
            .prop_map(|(labels_raw, edges)| {
                let v = vocab();
                let labels = decode(&labels_raw, &v);
                let n = labels.len();
                let mut succs = vec![Vec::new(); n];
                for (a, b) in edges {
                    let (a, b) = (a % n, b % n);
                    if !succs[a].contains(&b) {
                        succs[a].push(b);
                    }
                }
                for (i, s) in succs.iter_mut().enumerate() {
                    if s.is_empty() {
                        s.push(i);
                    }
                }
                LabelGraph {
                    origin: (0..n).map(|i| ProductState { model: i, ctrl: 0 }).collect(),
                    labels,
                    succs,
                    initial: vec![0],
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every certified verdict on random graphs and formulas —
        /// `Holds` and `Fails` alike — survives independent validation,
        /// with and without a justice assumption.
        #[test]
        fn certified_verdicts_validate(graph in arb_graph(), phi in arb_ltl()) {
            let v = vocab();
            let cv = check_graph_fair_certified(&graph, &phi, &[]);
            prop_assert_eq!(
                check_certified(&graph, &phi, &[], &cv),
                Ok(()),
                "no justice: {:?}",
                phi
            );
            let justice = [
                ltlcheck::Justice::new("a io", parse("a", &v).unwrap()).unwrap()
            ];
            let cv = check_graph_fair_certified(&graph, &phi, &justice);
            prop_assert_eq!(
                check_certified(&graph, &phi, &justice, &cv),
                Ok(()),
                "with justice: {:?}",
                phi
            );
        }

        /// The differential harness finds no explicit-vs-symbolic
        /// disagreement on random inputs.
        #[test]
        fn differential_finds_no_disagreement(graph in arb_graph(), phi in arb_ltl()) {
            prop_assert!(differential::differential(&graph, &phi, &[]).is_none());
        }
    }
}
