//! # bdd — reduced ordered binary decision diagrams
//!
//! A compact BDD kernel in the style of Bryant (1986) with the classic
//! implementation techniques: a hash-consed unique table (canonicity ⇒
//! equality is pointer equality), a memoized `ite` (if-then-else) core
//! from which all Boolean connectives derive, existential/universal
//! quantification over variable sets, and variable renaming for
//! relational image computation.
//!
//! This crate is the symbolic kernel behind `ltlcheck`'s NuSMV-style
//! backend: transition relations of product automata are encoded over
//! current/next state bits and fair cycles are found with symbolic
//! fixpoints instead of explicit graph search.
//!
//! ## Example
//!
//! ```
//! use bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let f = m.and(a, b);
//! let g = m.or(f, c);
//!
//! // Canonicity: structurally equal functions are the same node.
//! let g2 = {
//!     let ca = m.or(a, c);
//!     let cb = m.or(b, c);
//!     m.and(ca, cb) // (a∨c)∧(b∨c) ≡ (a∧b)∨c
//! };
//! assert_eq!(g, g2);
//!
//! // Quantification: ∃c. g ≡ true (pick c = 1).
//! let ex = m.exists(g, &[2]);
//! assert_eq!(ex, m.constant(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// A BDD node reference. `Ref`s are only meaningful with the manager that
/// produced them; canonicity makes equality of `Ref`s equality of
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

const FALSE: Ref = Ref(0);
const TRUE: Ref = Ref(1);
/// Sentinel variable index for terminal nodes (orders after every real
/// variable).
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A BDD manager: owns the node store and all caches.
///
/// Variables are indexed `0..num_vars` and ordered by index (lower index
/// = closer to the root).
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    quant_cache: HashMap<(Ref, u64), Ref>,
    rename_cache: HashMap<(Ref, i64), Ref>,
    num_vars: u32,
}

impl BddManager {
    /// Creates a manager for `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds `2^31` (ample for any realistic use).
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < (1 << 31), "too many variables");
        let mut manager = BddManager {
            nodes: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            quant_cache: HashMap::new(),
            rename_cache: HashMap::new(),
            num_vars,
        };
        // Index 0 = false terminal, 1 = true terminal.
        manager.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: FALSE,
            hi: FALSE,
        });
        manager.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: TRUE,
            hi: TRUE,
        });
        manager
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of live nodes (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant function.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    /// The literal `xᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var(&mut self, i: u32) -> Ref {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i, FALSE, TRUE)
    }

    /// The literal `¬xᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn nvar(&mut self, i: u32) -> Ref {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i, TRUE, FALSE)
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    fn var_of(&self, r: Ref) -> u32 {
        self.node(r).var
    }

    /// Shannon cofactors of `f` with respect to variable `v` (which must
    /// be ≤ the root variable of `f`).
    fn cofactors(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = self.node(f);
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`. The core
    /// operation every connective reduces to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal shortcuts.
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// `¬f`.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, FALSE, TRUE)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, FALSE)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, TRUE, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, TRUE)
    }

    /// `f ↔ g`.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Conjunction over an iterator (`true` when empty).
    pub fn and_all(&mut self, parts: impl IntoIterator<Item = Ref>) -> Ref {
        let mut acc = TRUE;
        for p in parts {
            acc = self.and(acc, p);
        }
        acc
    }

    /// Disjunction over an iterator (`false` when empty).
    pub fn or_all(&mut self, parts: impl IntoIterator<Item = Ref>) -> Ref {
        let mut acc = FALSE;
        for p in parts {
            acc = self.or(acc, p);
        }
        acc
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range.
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        for &v in vars {
            assert!(v < self.num_vars, "variable {v} out of range");
        }
        let mask = Self::var_mask(vars);
        self.exists_inner(f, vars, mask)
    }

    fn var_mask(vars: &[u32]) -> u64 {
        // Hash key for the quantified set; exact for ≤64 variables, a
        // partitioned fold otherwise (cache key only, never semantics).
        vars.iter().fold(0u64, |m, &v| {
            m ^ (1u64.rotate_left(v % 63) ^ (u64::from(v) << 32))
        })
    }

    fn exists_inner(&mut self, f: Ref, vars: &[u32], mask: u64) -> Ref {
        if f == TRUE || f == FALSE {
            return f;
        }
        if let Some(&r) = self.quant_cache.get(&(f, mask)) {
            return r;
        }
        let n = self.node(f);
        // Variables are ordered: skip quantified variables above the root.
        let r = if vars.contains(&n.var) {
            let lo = self.exists_inner(n.lo, vars, mask);
            let hi = self.exists_inner(n.hi, vars, mask);
            self.or(lo, hi)
        } else {
            let lo = self.exists_inner(n.lo, vars, mask);
            let hi = self.exists_inner(n.hi, vars, mask);
            self.mk(n.var, lo, hi)
        };
        self.quant_cache.insert((f, mask), r);
        r
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let nf = self.not(f);
        let ex = self.exists(nf, vars);
        self.not(ex)
    }

    /// Renames every variable `v` to `v + offset` (negative offsets shift
    /// down). Used to move between current-state and next-state variable
    /// blocks in transition relations.
    ///
    /// # Panics
    ///
    /// Panics if any renamed variable falls outside the manager's range.
    pub fn rename_shift(&mut self, f: Ref, offset: i64) -> Ref {
        if f == TRUE || f == FALSE {
            return f;
        }
        if let Some(&r) = self.rename_cache.get(&(f, offset)) {
            return r;
        }
        let n = self.node(f);
        let new_var = i64::from(n.var) + offset;
        assert!(
            (0..i64::from(self.num_vars)).contains(&new_var),
            "renamed variable out of range"
        );
        let lo = self.rename_shift(n.lo, offset);
        let hi = self.rename_shift(n.hi, offset);
        let r = self.mk(new_var as u32, lo, hi);
        self.rename_cache.insert((f, offset), r);
        r
    }

    /// Evaluates `f` under a full assignment (`assignment[i]` = value of
    /// variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than a variable the function
    /// depends on.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == TRUE {
                return true;
            }
            if cur == FALSE {
                return false;
            }
            let n = self.node(cur);
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// `true` iff `f` is satisfiable.
    pub fn satisfiable(&self, f: Ref) -> bool {
        f != FALSE
    }

    /// Picks one satisfying assignment of `f`, if any. Variables the
    /// function does not depend on are reported as `false`.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<bool>> {
        if f == FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        while cur != TRUE {
            let n = self.node(cur);
            if n.hi != FALSE {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: Ref) -> u64 {
        fn count(m: &BddManager, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
            if f == FALSE {
                return 0.0;
            }
            if f == TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = m.node(f);
            let lo_var = m.var_of(n.lo);
            let hi_var = m.var_of(n.hi);
            let lo_gap = f64::from(lo_var.min(m.num_vars)) - f64::from(n.var) - 1.0;
            let hi_gap = f64::from(hi_var.min(m.num_vars)) - f64::from(n.var) - 1.0;
            let c = count(m, n.lo, memo) * lo_gap.exp2() + count(m, n.hi, memo) * hi_gap.exp2();
            memo.insert(f, c);
            c
        }
        let mut memo = HashMap::new();
        let root_gap = f64::from(self.var_of(f).min(self.num_vars));
        (count(self, f, &mut memo) * root_gap.exp2()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new(2);
        let t = m.constant(true);
        let f = m.constant(false);
        assert_ne!(t, f);
        let a = m.var(0);
        let na = m.nvar(0);
        let not_a = m.not(a);
        assert_eq!(na, not_a);
        assert!(m.eval(a, &[true, false]));
        assert!(!m.eval(a, &[false, false]));
    }

    #[test]
    fn canonicity_of_equivalent_formulas() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        // De Morgan.
        let ab = m.and(a, b);
        let lhs = m.not(ab);
        let (na, nb) = (m.not(a), m.not(b));
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs);
        // Distribution.
        let bc = m.or(b, c);
        let lhs = m.and(a, bc);
        let (ab, ac) = (m.and(a, b), m.and(a, c));
        let rhs = m.or(ab, ac);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        // ∃b. a∧b = a ; ∀b. a∧b = false.
        assert_eq!(m.exists(f, &[1]), a);
        assert_eq!(m.forall(f, &[1]), m.constant(false));
        // ∃a,b. a∧b = true.
        assert_eq!(m.exists(f, &[0, 1]), m.constant(true));
    }

    #[test]
    fn rename_shift_moves_blocks() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let shifted = m.rename_shift(f, 2);
        // x0⊕x1 over [t,f,·,·] vs x2⊕x3 over [·,·,t,f].
        assert!(m.eval(f, &[true, false, false, false]));
        assert!(m.eval(shifted, &[false, false, true, false]));
        assert!(!m.eval(shifted, &[true, false, true, true]));
        // Shifting back recovers the original (canonicity!).
        assert_eq!(m.rename_shift(shifted, -2), f);
    }

    #[test]
    fn any_sat_finds_witness() {
        let mut m = BddManager::new(3);
        let (a, c) = (m.var(0), m.var(2));
        let na = m.not(a);
        let f = m.and(na, c);
        let w = m.any_sat(f).expect("satisfiable");
        assert!(m.eval(f, &w));
        let fals = m.constant(false);
        assert!(m.any_sat(fals).is_none());
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        assert_eq!(m.sat_count(a), 4); // a=1, b,c free
        let b = m.var(1);
        let f = m.or(a, b);
        assert_eq!(m.sat_count(f), 6);
        assert_eq!(m.sat_count(m.constant(true)), 8);
        assert_eq!(m.sat_count(m.constant(false)), 0);
    }

    /// A tiny propositional formula AST for differential testing.
    #[derive(Debug, Clone)]
    enum Form {
        Var(u32),
        Not(Box<Form>),
        And(Box<Form>, Box<Form>),
        Or(Box<Form>, Box<Form>),
        Xor(Box<Form>, Box<Form>),
    }

    fn arb_form(vars: u32) -> impl Strategy<Value = Form> {
        let leaf = (0..vars).prop_map(Form::Var);
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| Form::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Form::Xor(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn build(m: &mut BddManager, f: &Form) -> Ref {
        match f {
            Form::Var(i) => m.var(*i),
            Form::Not(a) => {
                let a = build(m, a);
                m.not(a)
            }
            Form::And(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.and(a, b)
            }
            Form::Or(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.or(a, b)
            }
            Form::Xor(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.xor(a, b)
            }
        }
    }

    fn truth(f: &Form, env: &[bool]) -> bool {
        match f {
            Form::Var(i) => env[*i as usize],
            Form::Not(a) => !truth(a, env),
            Form::And(a, b) => truth(a, env) && truth(b, env),
            Form::Or(a, b) => truth(a, env) || truth(b, env),
            Form::Xor(a, b) => truth(a, env) ^ truth(b, env),
        }
    }

    proptest! {
        /// The BDD agrees with direct truth-table evaluation on every
        /// assignment of up to 4 variables.
        #[test]
        fn matches_truth_table(form in arb_form(4)) {
            let mut m = BddManager::new(4);
            let f = build(&mut m, &form);
            for bits in 0..16u32 {
                let env: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
                prop_assert_eq!(m.eval(f, &env), truth(&form, &env));
            }
        }

        /// ∃x.f is satisfied exactly where some cofactor is.
        #[test]
        fn exists_is_disjunction_of_cofactors(form in arb_form(3)) {
            let mut m = BddManager::new(3);
            let f = build(&mut m, &form);
            let ex = m.exists(f, &[0]);
            for bits in 0..8u32 {
                let mut env: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
                env[0] = false;
                let lo = m.eval(f, &env);
                env[0] = true;
                let hi = m.eval(f, &env);
                prop_assert_eq!(m.eval(ex, &env), lo || hi);
            }
        }

        /// sat_count matches brute-force enumeration.
        #[test]
        fn sat_count_matches_enumeration(form in arb_form(4)) {
            let mut m = BddManager::new(4);
            let f = build(&mut m, &form);
            let expected = (0..16u32)
                .filter(|bits| {
                    let env: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
                    truth(&form, &env)
                })
                .count() as u64;
            prop_assert_eq!(m.sat_count(f), expected);
        }
    }
}
