//! # bdd — reduced ordered binary decision diagrams
//!
//! A compact BDD kernel in the style of Bryant (1986) with the classic
//! implementation techniques: a hash-consed unique table (canonicity ⇒
//! equality is pointer equality), a memoized `ite` (if-then-else) core
//! from which all Boolean connectives derive, a fused
//! [`and_exists`](BddManager::and_exists) relational product,
//! existential/universal quantification over variable sets, and variable
//! renaming for relational image computation.
//!
//! The table layout follows the high-performance packages (CUDD, BuDDy):
//! the unique table is open-addressed with a deterministic multiplicative
//! hash and a capacity-doubling rehash path, and the hot operation caches
//! (`ite`, `and_exists`) are direct-mapped arrays rather than chained
//! maps — a lossy computed table is still sound (a miss only recomputes)
//! and probes in a couple of cache lines. Cache effectiveness is
//! observable through [`BddManager::cache_hits`] /
//! [`BddManager::cache_lookups`]; [`BddManager::peak_nodes`] tracks the
//! high-water mark of the node store.
//!
//! This crate is the symbolic kernel behind `ltlcheck`'s NuSMV-style
//! backend: transition relations of product automata are encoded over
//! current/next state bits and fair cycles are found with symbolic
//! fixpoints instead of explicit graph search.
//!
//! ## Example
//!
//! ```
//! use bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let f = m.and(a, b);
//! let g = m.or(f, c);
//!
//! // Canonicity: structurally equal functions are the same node.
//! let g2 = {
//!     let ca = m.or(a, c);
//!     let cb = m.or(b, c);
//!     m.and(ca, cb) // (a∨c)∧(b∨c) ≡ (a∧b)∨c
//! };
//! assert_eq!(g, g2);
//!
//! // Quantification: ∃c. g ≡ true (pick c = 1).
//! let ex = m.exists(g, &[2]);
//! assert_eq!(ex, m.constant(true));
//!
//! // The fused relational product does both steps in one recursion.
//! let fused = m.and_exists(f, g, &[1]);
//! let conj = m.and(f, g);
//! assert_eq!(fused, m.exists(conj, &[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// A BDD node reference. `Ref`s are only meaningful with the manager that
/// produced them; canonicity makes equality of `Ref`s equality of
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

const FALSE: Ref = Ref(0);
const TRUE: Ref = Ref(1);
/// Sentinel variable index for terminal nodes (orders after every real
/// variable).
const TERMINAL_VAR: u32 = u32::MAX;
/// Empty slot marker in the open-addressed unique table.
const EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Deterministic multiplicative mix (fibonacci hashing over a 3-word
/// key). All hashing in the manager goes through this, so node counts
/// and cache statistics are identical run to run — the differential and
/// perf gates compare them exactly.
#[inline]
fn mix3(a: u32, b: u32, c: u32) -> u64 {
    let mut h = (u64::from(a) << 32 | u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_add(u64::from(c).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
    h ^= h >> 32;
    h
}

/// A direct-mapped operation cache (CUDD's "computed table"): one slot
/// per hash bucket, collisions overwrite. Lossy but sound — the result
/// of a miss is recomputed, never wrong.
#[derive(Debug)]
struct OpCache {
    /// `(a, b, c, result)`; `a == EMPTY` marks a free slot.
    slots: Vec<(u32, u32, u32, Ref)>,
    mask: usize,
}

impl OpCache {
    fn new(capacity_pow2: usize) -> Self {
        OpCache {
            slots: vec![(EMPTY, 0, 0, FALSE); capacity_pow2],
            mask: capacity_pow2 - 1,
        }
    }

    #[inline]
    fn get(&self, a: u32, b: u32, c: u32) -> Option<Ref> {
        let slot = self.slots[(mix3(a, b, c) as usize) & self.mask];
        if slot.0 == a && slot.1 == b && slot.2 == c {
            Some(slot.3)
        } else {
            None
        }
    }

    #[inline]
    fn put(&mut self, a: u32, b: u32, c: u32, r: Ref) {
        let idx = (mix3(a, b, c) as usize) & self.mask;
        self.slots[idx] = (a, b, c, r);
    }

    /// Doubles the cache, rehashing the surviving entries into their new
    /// buckets (entries are worth keeping — they are a pure speedup).
    fn grow(&mut self) {
        let old = std::mem::replace(
            &mut self.slots,
            vec![(EMPTY, 0, 0, FALSE); (self.mask + 1) * 2],
        );
        self.mask = self.slots.len() - 1;
        for (a, b, c, r) in old {
            if a != EMPTY {
                let idx = (mix3(a, b, c) as usize) & self.mask;
                self.slots[idx] = (a, b, c, r);
            }
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Initial size of the direct-mapped operation caches.
const OP_CACHE_INIT: usize = 1 << 12;
/// Initial size of the open-addressed unique table.
const UNIQUE_INIT: usize = 1 << 12;

/// A BDD manager: owns the node store and all caches.
///
/// Variables are indexed `0..num_vars` and ordered by index (lower index
/// = closer to the root).
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    /// Open-addressed unique table over `nodes`: slots hold node indices,
    /// `EMPTY` marks a free slot. Linear probing; doubled and rehashed
    /// when 3/4 full.
    unique: Vec<u32>,
    unique_mask: usize,
    ite_cache: OpCache,
    and_exists_cache: OpCache,
    quant_cache: HashMap<(Ref, u32), Ref>,
    rename_cache: HashMap<(Ref, i64), Ref>,
    /// Interned quantification variable sets: `var_sets[id]` is a sorted,
    /// deduplicated set. Set identity (not a hash of it) keys the
    /// quantification caches, so distinct sets can never collide.
    var_sets: Vec<Vec<u32>>,
    var_set_ids: HashMap<Vec<u32>, u32>,
    num_vars: u32,
    cache_lookups: u64,
    cache_hits: u64,
    rehashes: u64,
}

impl BddManager {
    /// Creates a manager for `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds `2^31` (ample for any realistic use).
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < (1 << 31), "too many variables");
        let mut manager = BddManager {
            nodes: Vec::with_capacity(UNIQUE_INIT / 2),
            unique: vec![EMPTY; UNIQUE_INIT],
            unique_mask: UNIQUE_INIT - 1,
            ite_cache: OpCache::new(OP_CACHE_INIT),
            and_exists_cache: OpCache::new(OP_CACHE_INIT),
            quant_cache: HashMap::new(),
            rename_cache: HashMap::new(),
            var_sets: Vec::new(),
            var_set_ids: HashMap::new(),
            num_vars,
            cache_lookups: 0,
            cache_hits: 0,
            rehashes: 0,
        };
        // Index 0 = false terminal, 1 = true terminal. Terminals are not
        // hashed into the unique table; `mk` never constructs them.
        manager.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: FALSE,
            hi: FALSE,
        });
        manager.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: TRUE,
            hi: TRUE,
        });
        manager
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of live nodes (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// High-water mark of the node store. The manager never reclaims
    /// nodes, so this currently equals [`num_nodes`](Self::num_nodes);
    /// it is exposed separately so callers report peak memory pressure
    /// rather than an end-of-run residue if garbage collection is ever
    /// added.
    pub fn peak_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total probes of the hot operation caches (`ite`, `and_exists`).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_lookups
    }

    /// Probes of the hot operation caches that found their result.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Times the unique table doubled its capacity and rehashed.
    pub fn unique_rehashes(&self) -> u64 {
        self.rehashes
    }

    /// The constant function.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    /// The literal `xᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var(&mut self, i: u32) -> Ref {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i, FALSE, TRUE)
    }

    /// The literal `¬xᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn nvar(&mut self, i: u32) -> Ref {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i, TRUE, FALSE)
    }

    /// The conjunction of literals `lits`, given in strictly increasing
    /// variable order (`true` = positive literal). Builds the cube
    /// bottom-up with `len` direct node constructions — no `ite` calls,
    /// no intermediate conjunctions — which is what makes per-state
    /// encodings of transition relations cheap.
    ///
    /// # Panics
    ///
    /// Panics if variables are out of range or not strictly increasing.
    pub fn cube(&mut self, lits: &[(u32, bool)]) -> Ref {
        let mut acc = TRUE;
        let mut prev = u32::MAX;
        for &(v, polarity) in lits.iter().rev() {
            assert!(v < self.num_vars, "variable {v} out of range");
            assert!(v < prev, "cube literals must be strictly increasing");
            prev = v;
            acc = if polarity {
                self.mk(v, FALSE, acc)
            } else {
                self.mk(v, acc, FALSE)
            };
        }
        acc
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let mut idx = (mix3(var, lo.0, hi.0) as usize) & self.unique_mask;
        loop {
            let slot = self.unique[idx];
            if slot == EMPTY {
                break;
            }
            let n = self.nodes[slot as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                return Ref(slot);
            }
            idx = (idx + 1) & self.unique_mask;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique[idx] = r.0;
        // Keep the load factor under 3/4; count the two unhashed
        // terminals out.
        if (self.nodes.len() - 2) * 4 > (self.unique_mask + 1) * 3 {
            self.rehash();
        }
        // Keep the direct-mapped caches proportioned to the node store so
        // big relations don't thrash a tiny computed table.
        if self.nodes.len() > self.ite_cache.len() {
            self.ite_cache.grow();
            self.and_exists_cache.grow();
        }
        r
    }

    /// Doubles the unique table and re-inserts every node — the
    /// capacity-doubling rehash path.
    fn rehash(&mut self) {
        let new_cap = (self.unique_mask + 1) * 2;
        self.unique = vec![EMPTY; new_cap];
        self.unique_mask = new_cap - 1;
        self.rehashes += 1;
        for (i, n) in self.nodes.iter().enumerate().skip(2) {
            let mut idx = (mix3(n.var, n.lo.0, n.hi.0) as usize) & self.unique_mask;
            while self.unique[idx] != EMPTY {
                idx = (idx + 1) & self.unique_mask;
            }
            self.unique[idx] = i as u32;
        }
    }

    fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    fn var_of(&self, r: Ref) -> u32 {
        self.node(r).var
    }

    /// Shannon cofactors of `f` with respect to variable `v` (which must
    /// be ≤ the root variable of `f`).
    fn cofactors(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = self.node(f);
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`. The core
    /// operation every connective reduces to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal shortcuts.
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        self.cache_lookups += 1;
        if let Some(r) = self.ite_cache.get(f.0, g.0, h.0) {
            self.cache_hits += 1;
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.put(f.0, g.0, h.0, r);
        r
    }

    /// `¬f`.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, FALSE, TRUE)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, FALSE)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, TRUE, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, TRUE)
    }

    /// `f ↔ g`.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Conjunction over an iterator (`true` when empty). Combines
    /// pairwise in a balanced tree, which keeps intermediate BDDs small
    /// when many similarly-sized operands are folded (a left fold makes
    /// one operand grow monotonically).
    pub fn and_all(&mut self, parts: impl IntoIterator<Item = Ref>) -> Ref {
        let layer: Vec<Ref> = parts.into_iter().collect();
        self.balanced(layer, TRUE, Self::and)
    }

    /// Disjunction over an iterator (`false` when empty), combined as a
    /// balanced tree like [`and_all`](Self::and_all).
    pub fn or_all(&mut self, parts: impl IntoIterator<Item = Ref>) -> Ref {
        let layer: Vec<Ref> = parts.into_iter().collect();
        self.balanced(layer, FALSE, Self::or)
    }

    fn balanced(
        &mut self,
        mut layer: Vec<Ref>,
        empty: Ref,
        op: impl Fn(&mut Self, Ref, Ref) -> Ref,
    ) -> Ref {
        if layer.is_empty() {
            return empty;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                next.push(if chunk.len() == 2 {
                    op(self, chunk[0], chunk[1])
                } else {
                    chunk[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Interns a quantification variable set, returning its stable id.
    /// Ids key the quantification caches exactly (no hash collisions
    /// between distinct sets) and stay valid for the manager's lifetime.
    fn intern_vars(&mut self, vars: &[u32]) -> u32 {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&id) = self.var_set_ids.get(&sorted) {
            return id;
        }
        let id = self.var_sets.len() as u32;
        self.var_sets.push(sorted.clone());
        self.var_set_ids.insert(sorted, id);
        id
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range.
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        for &v in vars {
            assert!(v < self.num_vars, "variable {v} out of range");
        }
        let set_id = self.intern_vars(vars);
        let set = std::mem::take(&mut self.var_sets[set_id as usize]);
        let r = self.exists_inner(f, &set, set_id);
        self.var_sets[set_id as usize] = set;
        r
    }

    fn exists_inner(&mut self, f: Ref, vars: &[u32], set_id: u32) -> Ref {
        if f == TRUE || f == FALSE {
            return f;
        }
        let n = self.node(f);
        // Variables are ordered; once the root is past the whole set the
        // function cannot depend on any quantified variable.
        if vars.last().is_none_or(|&max| n.var > max) {
            return f;
        }
        if let Some(&r) = self.quant_cache.get(&(f, set_id)) {
            return r;
        }
        let r = if vars.binary_search(&n.var).is_ok() {
            let lo = self.exists_inner(n.lo, vars, set_id);
            if lo == TRUE {
                TRUE
            } else {
                let hi = self.exists_inner(n.hi, vars, set_id);
                self.or(lo, hi)
            }
        } else {
            let lo = self.exists_inner(n.lo, vars, set_id);
            let hi = self.exists_inner(n.hi, vars, set_id);
            self.mk(n.var, lo, hi)
        };
        self.quant_cache.insert((f, set_id), r);
        r
    }

    /// The fused relational product `∃ vars. f ∧ g` in a single
    /// recursion with its own memo cache — the workhorse of symbolic
    /// image/pre-image computation. Equivalent to
    /// `exists(and(f, g), vars)` but never materializes the conjunction,
    /// whose BDD is typically far larger than either operand or the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range.
    pub fn and_exists(&mut self, f: Ref, g: Ref, vars: &[u32]) -> Ref {
        for &v in vars {
            assert!(v < self.num_vars, "variable {v} out of range");
        }
        let set_id = self.intern_vars(vars);
        let set = std::mem::take(&mut self.var_sets[set_id as usize]);
        let r = self.and_exists_inner(f, g, &set, set_id);
        self.var_sets[set_id as usize] = set;
        r
    }

    fn and_exists_inner(&mut self, f: Ref, g: Ref, vars: &[u32], set_id: u32) -> Ref {
        if f == FALSE || g == FALSE {
            return FALSE;
        }
        if f == TRUE {
            return self.exists_inner(g, vars, set_id);
        }
        if g == TRUE || f == g {
            return self.exists_inner(f, vars, set_id);
        }
        // ∧ is commutative: normalize the operand order for the cache.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        self.cache_lookups += 1;
        if let Some(r) = self.and_exists_cache.get(f.0, g.0, set_id) {
            self.cache_hits += 1;
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let r = if vars.binary_search(&v).is_ok() {
            let lo = self.and_exists_inner(f0, g0, vars, set_id);
            if lo == TRUE {
                TRUE
            } else {
                let hi = self.and_exists_inner(f1, g1, vars, set_id);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_inner(f0, g0, vars, set_id);
            let hi = self.and_exists_inner(f1, g1, vars, set_id);
            self.mk(v, lo, hi)
        };
        self.and_exists_cache.put(f.0, g.0, set_id, r);
        r
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let nf = self.not(f);
        let ex = self.exists(nf, vars);
        self.not(ex)
    }

    /// Renames every variable `v` to `v + offset` (negative offsets shift
    /// down). Used to move between current-state and next-state variable
    /// blocks in transition relations — offset `1` for interleaved
    /// current/next pairs, the block width for blocked layouts.
    ///
    /// # Panics
    ///
    /// Panics if any renamed variable falls outside the manager's range.
    pub fn rename_shift(&mut self, f: Ref, offset: i64) -> Ref {
        if f == TRUE || f == FALSE {
            return f;
        }
        if let Some(&r) = self.rename_cache.get(&(f, offset)) {
            return r;
        }
        let n = self.node(f);
        let new_var = i64::from(n.var) + offset;
        assert!(
            (0..i64::from(self.num_vars)).contains(&new_var),
            "renamed variable out of range"
        );
        let lo = self.rename_shift(n.lo, offset);
        let hi = self.rename_shift(n.hi, offset);
        let r = self.mk(new_var as u32, lo, hi);
        self.rename_cache.insert((f, offset), r);
        r
    }

    /// Evaluates `f` under a full assignment (`assignment[i]` = value of
    /// variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than a variable the function
    /// depends on.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == TRUE {
                return true;
            }
            if cur == FALSE {
                return false;
            }
            let n = self.node(cur);
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// `true` iff `f` is satisfiable.
    pub fn satisfiable(&self, f: Ref) -> bool {
        f != FALSE
    }

    /// Picks one satisfying assignment of `f`, if any. Variables the
    /// function does not depend on are reported as `false`.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<bool>> {
        if f == FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        while cur != TRUE {
            let n = self.node(cur);
            if n.hi != FALSE {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }

    /// Number of satisfying assignments over all `num_vars` variables,
    /// **saturating at `u64::MAX`**.
    ///
    /// Counts are accumulated in `f64`, so they are exact below `2^53`
    /// assignments; beyond that the mantissa rounds, and at `2^64` and
    /// above the result clamps to `u64::MAX`. A saturated return value
    /// therefore means "at least `u64::MAX`", never a silent wrap — wide
    /// state spaces (≥ 64 variables) routinely exceed the range.
    pub fn sat_count(&self, f: Ref) -> u64 {
        fn count(m: &BddManager, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
            if f == FALSE {
                return 0.0;
            }
            if f == TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = m.node(f);
            let lo_var = m.var_of(n.lo);
            let hi_var = m.var_of(n.hi);
            let lo_gap = f64::from(lo_var.min(m.num_vars)) - f64::from(n.var) - 1.0;
            let hi_gap = f64::from(hi_var.min(m.num_vars)) - f64::from(n.var) - 1.0;
            let c = count(m, n.lo, memo) * lo_gap.exp2() + count(m, n.hi, memo) * hi_gap.exp2();
            memo.insert(f, c);
            c
        }
        let mut memo = HashMap::new();
        let root_gap = f64::from(self.var_of(f).min(self.num_vars));
        let total = count(self, f, &mut memo) * root_gap.exp2();
        // Explicit saturation: 2^64 (the first unrepresentable count) and
        // everything above clamp to u64::MAX.
        if total >= u64::MAX as f64 {
            u64::MAX
        } else {
            total as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new(2);
        let t = m.constant(true);
        let f = m.constant(false);
        assert_ne!(t, f);
        let a = m.var(0);
        let na = m.nvar(0);
        let not_a = m.not(a);
        assert_eq!(na, not_a);
        assert!(m.eval(a, &[true, false]));
        assert!(!m.eval(a, &[false, false]));
    }

    #[test]
    fn canonicity_of_equivalent_formulas() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        // De Morgan.
        let ab = m.and(a, b);
        let lhs = m.not(ab);
        let (na, nb) = (m.not(a), m.not(b));
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs);
        // Distribution.
        let bc = m.or(b, c);
        let lhs = m.and(a, bc);
        let (ab, ac) = (m.and(a, b), m.and(a, c));
        let rhs = m.or(ab, ac);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        // ∃b. a∧b = a ; ∀b. a∧b = false.
        assert_eq!(m.exists(f, &[1]), a);
        assert_eq!(m.forall(f, &[1]), m.constant(false));
        // ∃a,b. a∧b = true.
        assert_eq!(m.exists(f, &[0, 1]), m.constant(true));
    }

    #[test]
    fn rename_shift_moves_blocks() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let shifted = m.rename_shift(f, 2);
        // x0⊕x1 over [t,f,·,·] vs x2⊕x3 over [·,·,t,f].
        assert!(m.eval(f, &[true, false, false, false]));
        assert!(m.eval(shifted, &[false, false, true, false]));
        assert!(!m.eval(shifted, &[true, false, true, true]));
        // Shifting back recovers the original (canonicity!).
        assert_eq!(m.rename_shift(shifted, -2), f);
    }

    #[test]
    fn any_sat_finds_witness() {
        let mut m = BddManager::new(3);
        let (a, c) = (m.var(0), m.var(2));
        let na = m.not(a);
        let f = m.and(na, c);
        let Some(w) = m.any_sat(f) else {
            panic!("expected a witness")
        };
        assert!(m.eval(f, &w));
        let fals = m.constant(false);
        assert!(m.any_sat(fals).is_none());
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        assert_eq!(m.sat_count(a), 4); // a=1, b,c free
        let b = m.var(1);
        let f = m.or(a, b);
        assert_eq!(m.sat_count(f), 6);
        assert_eq!(m.sat_count(m.constant(true)), 8);
        assert_eq!(m.sat_count(m.constant(false)), 0);
    }

    /// The saturation boundary: 63 variables still count exactly
    /// (`2^63` is a representable power of two), 64 and 65 saturate to
    /// `u64::MAX` instead of wrapping or rounding arbitrarily.
    #[test]
    fn sat_count_saturates_at_the_boundary() {
        let m63 = BddManager::new(63);
        assert_eq!(m63.sat_count(m63.constant(true)), 1u64 << 63);
        let m64 = BddManager::new(64);
        assert_eq!(m64.sat_count(m64.constant(true)), u64::MAX);
        let m65 = BddManager::new(65);
        assert_eq!(m65.sat_count(m65.constant(true)), u64::MAX);
        // Just below the clamp: half the 64-var space is exactly 2^63,
        // which is representable and must NOT be clamped.
        let mut m = BddManager::new(64);
        let a = m.var(0);
        assert_eq!(m.sat_count(a), 1u64 << 63);
    }

    #[test]
    fn cube_is_the_literal_conjunction() {
        let mut m = BddManager::new(5);
        let c = m.cube(&[(0, true), (2, false), (4, true)]);
        let a = m.var(0);
        let nb = m.nvar(2);
        let e = m.var(4);
        let ab = m.and(a, nb);
        let expected = m.and(ab, e);
        assert_eq!(c, expected);
        assert_eq!(m.cube(&[]), m.constant(true));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn cube_rejects_unsorted_literals() {
        let mut m = BddManager::new(3);
        let _ = m.cube(&[(2, true), (0, false)]);
    }

    #[test]
    fn balanced_folds_match_semantics() {
        let mut m = BddManager::new(6);
        let vars: Vec<Ref> = (0..6).map(|i| m.var(i)).collect();
        let all = m.and_all(vars.iter().copied());
        let any = m.or_all(vars.iter().copied());
        // Equal to the sequential folds by canonicity.
        let mut acc = m.constant(true);
        for &v in &vars {
            acc = m.and(acc, v);
        }
        assert_eq!(all, acc);
        let mut acc = m.constant(false);
        for &v in &vars {
            acc = m.or(acc, v);
        }
        assert_eq!(any, acc);
        assert_eq!(m.and_all([]), m.constant(true));
        assert_eq!(m.or_all([]), m.constant(false));
    }

    #[test]
    fn cache_and_table_statistics_populate() {
        let mut m = BddManager::new(16);
        // Force enough distinct nodes to trigger at least one rehash of
        // the initial table.
        let mut funcs = Vec::new();
        for i in 0..16u32 {
            for j in 0..16u32 {
                if i != j {
                    let a = m.var(i);
                    let b = m.var(j);
                    let x = m.xor(a, b);
                    funcs.push(x);
                }
            }
        }
        let _ = m.or_all(funcs);
        assert!(m.cache_lookups() > 0);
        assert!(m.cache_hits() > 0);
        assert!(m.cache_hits() <= m.cache_lookups());
        assert_eq!(m.peak_nodes(), m.num_nodes());
        assert!(m.num_nodes() > 2);
    }

    #[test]
    fn unique_table_rehash_preserves_canonicity() {
        let mut m = BddManager::new(20);
        let mut seen = HashMap::new();
        // Build well past the initial capacity, recording refs.
        for round in 0..2 {
            for i in 0..20u32 {
                for j in 0..20u32 {
                    let a = m.var(i);
                    let b = m.var(j);
                    let f = m.and(a, b);
                    let x = m.xor(f, a);
                    if round == 0 {
                        seen.insert((i, j), x);
                    } else {
                        // Same structure ⇒ same node, across rehashes.
                        assert_eq!(seen[&(i, j)], x);
                    }
                }
            }
        }
        assert!(m.unique_rehashes() > 0 || m.num_nodes() < UNIQUE_INIT);
    }

    /// A tiny propositional formula AST for differential testing.
    #[derive(Debug, Clone)]
    enum Form {
        Var(u32),
        Not(Box<Form>),
        And(Box<Form>, Box<Form>),
        Or(Box<Form>, Box<Form>),
        Xor(Box<Form>, Box<Form>),
    }

    fn arb_form(vars: u32) -> impl Strategy<Value = Form> {
        let leaf = (0..vars).prop_map(Form::Var);
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| Form::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Form::Xor(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn build(m: &mut BddManager, f: &Form) -> Ref {
        match f {
            Form::Var(i) => m.var(*i),
            Form::Not(a) => {
                let a = build(m, a);
                m.not(a)
            }
            Form::And(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.and(a, b)
            }
            Form::Or(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.or(a, b)
            }
            Form::Xor(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.xor(a, b)
            }
        }
    }

    fn truth(f: &Form, env: &[bool]) -> bool {
        match f {
            Form::Var(i) => env[*i as usize],
            Form::Not(a) => !truth(a, env),
            Form::And(a, b) => truth(a, env) && truth(b, env),
            Form::Or(a, b) => truth(a, env) || truth(b, env),
            Form::Xor(a, b) => truth(a, env) ^ truth(b, env),
        }
    }

    proptest! {
        /// The BDD agrees with direct truth-table evaluation on every
        /// assignment of up to 4 variables.
        #[test]
        fn matches_truth_table(form in arb_form(4)) {
            let mut m = BddManager::new(4);
            let f = build(&mut m, &form);
            for bits in 0..16u32 {
                let env: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
                prop_assert_eq!(m.eval(f, &env), truth(&form, &env));
            }
        }

        /// ∃x.f is satisfied exactly where some cofactor is.
        #[test]
        fn exists_is_disjunction_of_cofactors(form in arb_form(3)) {
            let mut m = BddManager::new(3);
            let f = build(&mut m, &form);
            let ex = m.exists(f, &[0]);
            for bits in 0..8u32 {
                let mut env: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
                env[0] = false;
                let lo = m.eval(f, &env);
                env[0] = true;
                let hi = m.eval(f, &env);
                prop_assert_eq!(m.eval(ex, &env), lo || hi);
            }
        }

        /// sat_count matches brute-force enumeration.
        #[test]
        fn sat_count_matches_enumeration(form in arb_form(4)) {
            let mut m = BddManager::new(4);
            let f = build(&mut m, &form);
            let expected = (0..16u32)
                .filter(|bits| {
                    let env: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
                    truth(&form, &env)
                })
                .count() as u64;
            prop_assert_eq!(m.sat_count(f), expected);
        }

        /// The fused relational product equals the two-step composition
        /// `∃V. f∧g  ≡  exists(and(f, g), V)` for every quantified
        /// subset of the variables (canonicity makes this `Ref`
        /// equality).
        #[test]
        fn and_exists_matches_two_step(
            f in arb_form(5),
            g in arb_form(5),
            mask in 0u32..32,
        ) {
            let mut m = BddManager::new(5);
            let f = build(&mut m, &f);
            let g = build(&mut m, &g);
            let vars: Vec<u32> = (0..5).filter(|i| mask & (1 << i) != 0).collect();
            let fused = m.and_exists(f, g, &vars);
            let conj = m.and(f, g);
            let two_step = m.exists(conj, &vars);
            prop_assert_eq!(fused, two_step);
        }
    }
}
