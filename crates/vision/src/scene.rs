use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which imaging domain a frame comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Rendered simulator frames (the paper's Carla dataset).
    Sim,
    /// Real-world driving footage (the paper's NuImages dataset).
    Real,
}

/// Object classes the detector is queried for — the categories of the
/// paper's Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Vehicles.
    Car,
    /// Pedestrians.
    Pedestrian,
    /// Traffic lights.
    TrafficLight,
    /// Stop signs.
    StopSign,
}

impl ObjectClass {
    /// All classes.
    pub fn all() -> [ObjectClass; 4] {
        [
            ObjectClass::Car,
            ObjectClass::Pedestrian,
            ObjectClass::TrafficLight,
            ObjectClass::StopSign,
        ]
    }
}

/// Weather / lighting condition of a frame — the qualitative axis of the
/// paper's Figure 13 ("different weather or light conditions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// Clear daylight.
    ClearDay,
    /// Overcast sky.
    Overcast,
    /// Rain on the lens, wet roads.
    Rain,
    /// Night driving.
    Night,
}

impl Condition {
    /// All conditions.
    pub fn all() -> [Condition; 4] {
        [
            Condition::ClearDay,
            Condition::Overcast,
            Condition::Rain,
            Condition::Night,
        ]
    }

    /// Contrast range objects are drawn from under this condition.
    fn contrast_range(self) -> (f32, f32) {
        match self {
            Condition::ClearDay => (0.6, 1.0),
            Condition::Overcast => (0.4, 0.9),
            Condition::Rain => (0.25, 0.75),
            Condition::Night => (0.1, 0.55),
        }
    }
}

/// One annotated object in a frame, described by the latent factors that
/// drive detectability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Class label (ground truth).
    pub class: ObjectClass,
    /// Apparent size in `[0, 1]` (fraction of frame height).
    pub size: f32,
    /// Occlusion in `[0, 1]` (0 = fully visible).
    pub occlusion: f32,
    /// Local contrast in `[0, 1]` (lighting/weather dependent).
    pub contrast: f32,
}

impl SceneObject {
    /// Scalar detectability in `[0, 1]`: how easy this object is for any
    /// reasonable detector.
    pub fn detectability(&self) -> f32 {
        (0.45 * self.size + 0.3 * (1.0 - self.occlusion) + 0.25 * self.contrast).clamp(0.0, 1.0)
    }
}

/// One frame: a bag of annotated objects from one domain under one
/// weather/light condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The imaging domain.
    pub domain: Domain,
    /// Weather / lighting condition.
    pub condition: Condition,
    /// The frame's objects.
    pub objects: Vec<SceneObject>,
}

/// Generates a dataset of annotated frames with a domain-typical mixture
/// of weather/light conditions.
///
/// The domains differ in their latent-factor distributions — the real
/// domain has more occlusion and a harsher condition mixture (rain,
/// night) while the simulator renders cleaner, more uniform scenes. This
/// mirrors the qualitative gap between Carla and NuImages the paper
/// illustrates in its Figure 13.
pub fn generate_dataset(domain: Domain, frames: usize, rng: &mut impl Rng) -> Vec<Frame> {
    let conditions: &[(Condition, f64)] = match domain {
        Domain::Sim => &[
            (Condition::ClearDay, 0.55),
            (Condition::Overcast, 0.25),
            (Condition::Rain, 0.10),
            (Condition::Night, 0.10),
        ],
        Domain::Real => &[
            (Condition::ClearDay, 0.35),
            (Condition::Overcast, 0.25),
            (Condition::Rain, 0.20),
            (Condition::Night, 0.20),
        ],
    };
    (0..frames)
        .map(|_| {
            let mut draw: f64 = rng.gen();
            let mut condition = Condition::ClearDay;
            for &(c, w) in conditions {
                if draw < w {
                    condition = c;
                    break;
                }
                draw -= w;
            }
            generate_frame(domain, condition, rng)
        })
        .collect()
}

/// Generates one frame under an explicit condition.
pub fn generate_frame(domain: Domain, condition: Condition, rng: &mut impl Rng) -> Frame {
    let (occl_max, objects_per_frame) = match domain {
        Domain::Sim => (0.5, 3..7),
        Domain::Real => (0.8, 2..9),
    };
    let (c_min, c_max) = condition.contrast_range();
    let count = rng.gen_range(objects_per_frame);
    let objects = (0..count)
        .map(|_| {
            let class = match rng.gen_range(0..4) {
                0 => ObjectClass::Car,
                1 => ObjectClass::Pedestrian,
                2 => ObjectClass::TrafficLight,
                _ => ObjectClass::StopSign,
            };
            SceneObject {
                class,
                size: rng.gen_range(0.05f32..1.0),
                occlusion: rng.gen_range(0.0f32..occl_max),
                contrast: rng.gen_range(c_min..c_max),
            }
        })
        .collect();
    Frame {
        domain,
        condition,
        objects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_has_requested_size_and_domain() {
        let mut rng = StdRng::seed_from_u64(0);
        let frames = generate_dataset(Domain::Sim, 25, &mut rng);
        assert_eq!(frames.len(), 25);
        assert!(frames.iter().all(|f| f.domain == Domain::Sim));
        assert!(frames.iter().all(|f| !f.objects.is_empty()));
    }

    #[test]
    fn real_domain_is_harder_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let sim = generate_dataset(Domain::Sim, 300, &mut rng);
        let real = generate_dataset(Domain::Real, 300, &mut rng);
        let mean_detect = |frames: &[Frame]| -> f32 {
            let objs: Vec<f32> = frames
                .iter()
                .flat_map(|f| f.objects.iter().map(SceneObject::detectability))
                .collect();
            objs.iter().sum::<f32>() / objs.len() as f32
        };
        assert!(mean_detect(&sim) > mean_detect(&real) + 0.02);
    }

    #[test]
    fn conditions_order_contrast() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean_contrast = |condition: Condition, rng: &mut StdRng| -> f32 {
            let objs: Vec<f32> = (0..200)
                .flat_map(|_| {
                    generate_frame(Domain::Real, condition, rng)
                        .objects
                        .into_iter()
                        .map(|o| o.contrast)
                        .collect::<Vec<_>>()
                })
                .collect();
            objs.iter().sum::<f32>() / objs.len() as f32
        };
        let day = mean_contrast(Condition::ClearDay, &mut rng);
        let rain = mean_contrast(Condition::Rain, &mut rng);
        let night = mean_contrast(Condition::Night, &mut rng);
        assert!(day > rain && rain > night, "{day} {rain} {night}");
    }

    #[test]
    fn real_mixture_is_harsher() {
        let mut rng = StdRng::seed_from_u64(6);
        let frac_harsh = |domain: Domain, rng: &mut StdRng| -> f64 {
            let frames = generate_dataset(domain, 600, rng);
            frames
                .iter()
                .filter(|f| matches!(f.condition, Condition::Rain | Condition::Night))
                .count() as f64
                / 600.0
        };
        assert!(frac_harsh(Domain::Real, &mut rng) > frac_harsh(Domain::Sim, &mut rng) + 0.05);
    }

    #[test]
    fn detectability_bounded_and_monotone() {
        let base = SceneObject {
            class: ObjectClass::Car,
            size: 0.5,
            occlusion: 0.5,
            contrast: 0.5,
        };
        let easy = SceneObject {
            size: 0.9,
            occlusion: 0.1,
            contrast: 0.9,
            ..base
        };
        assert!(easy.detectability() > base.detectability());
        assert!((0.0..=1.0).contains(&base.detectability()));
        assert!((0.0..=1.0).contains(&easy.detectability()));
    }
}
