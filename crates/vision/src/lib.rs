//! # vision — synthetic sim-to-real detection consistency study
//!
//! Section 5.3 of the paper argues that verified controllers transfer to
//! the real world *if the perception stack behaves consistently across
//! simulation and reality*: it runs Grounded SAM on Carla frames and on
//! NuImages, bins detections by confidence (the calibration method of
//! Yang et al. 2023), and shows the confidence→accuracy mappings
//! coincide (its Figure 12).
//!
//! Neither Carla frames nor NuImages are available here, so this crate
//! simulates the relevant mechanism end to end:
//!
//! * [`generate_dataset`] draws frames of objects whose *detectability*
//!   (size, occlusion, contrast) follows domain-specific distributions —
//!   the "real" domain is noisier and more cluttered than the "sim" one.
//! * [`Detector`] scores each object with a confidence that is a noisy
//!   monotone function of detectability, and is correct with a
//!   probability driven by the same detectability. Crucially the
//!   confidence→correctness relation is a property of the *detector*,
//!   shared across domains — which is precisely the hypothesis the
//!   paper's experiment validates.
//! * [`calibrate`] bins detections by confidence and reports per-bin
//!   accuracy; [`consistency_gap`] quantifies how far two curves diverge.
//!
//! The reproduction of Figure 12 checks that the sim and real calibration
//! curves agree within sampling noise for every object class, and a
//! deliberately domain-biased detector ([`Detector::domain_biased`])
//! demonstrates what an *inconsistent* perception stack would look like —
//! the failure case in which the paper's transfer argument would not
//! apply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod detector;
mod scene;

pub use calibrate::{calibrate, consistency_gap, CalBin, CalibrationCurve};
pub use detector::{Detection, Detector};
pub use scene::{
    generate_dataset, generate_frame, Condition, Domain, Frame, ObjectClass, SceneObject,
};
